//! Peer persistence: "launch their customized peers on their machines with
//! their own personal data" (§1) — customize a peer, snapshot it to disk,
//! "reboot", restore, and keep working with the same rules, data, trust
//! settings and grants.
//!
//! ```sh
//! cargo run --example persistence
//! ```

use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::Peer;
use webdamlog::net::snapshot;
use webdamlog::parser::load_program;

fn main() {
    let dir = std::env::temp_dir().join("webdamlog-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("joe.snap");

    // Joe (the paper's intro user) customizes his peer.
    let mut joe = Peer::new("joe");
    load_program(
        &mut joe,
        r#"
        // Joe's personal data and a review-publishing rule (the blog/
        // Facebook/Dropbox story of the paper's introduction).
        extensional movies@joe/2;
        extensional reviews@joe/2;
        intensional toPublish@joe/2;

        movies@joe(1, "La Haine");
        movies@joe(2, "Amelie");
        reviews@joe(1, "a masterpiece");

        toPublish@joe($title, $text) :-
            movies@joe($id, $title), reviews@joe($id, $text);
        "#,
    )
    .expect("program loads");
    joe.acl_mut().trust("blogHost");
    joe.grants_mut().restrict_read("reviews");
    joe.grants_mut().declassify("toPublish");

    println!(
        "before snapshot: {} rules, {} relations",
        joe.rules().len(),
        joe.schema().len()
    );
    snapshot::save_to_file(&joe, &path).expect("snapshot saves");
    println!("snapshot written to {}", path.display());
    drop(joe); // the machine "shuts down"

    // ...reboot...
    let restored = snapshot::load_from_file(&path).expect("snapshot loads");
    println!(
        "restored: {} rules, {} movie(s), trusts blogHost: {}",
        restored.rules().len(),
        restored.relation_facts("movies").len(),
        restored
            .acl()
            .is_trusted(webdamlog::datalog::Symbol::intern("blogHost")),
    );

    // The restored peer computes exactly as before.
    let mut rt = LocalRuntime::new();
    rt.add_peer(restored).unwrap();
    rt.run_to_quiescence(8).expect("runs");
    let joe = rt.peer("joe").unwrap();
    println!("toPublish@joe after restore:");
    for f in joe.facts_of("toPublish") {
        println!("  {f}");
    }
    assert_eq!(joe.relation_facts("toPublish").len(), 1);

    std::fs::remove_file(&path).ok();
    println!("ok.");
}
