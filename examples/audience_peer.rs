//! "Interaction via the Web": audience members launch their own autonomous
//! Wepic peers — here over real TCP sockets, each peer free-running on its
//! own thread (the deployment model of Figure 2, loopback standing in for
//! the LAN + Webdam cloud).
//!
//! ```sh
//! cargo run --example audience_peer
//! ```

use std::time::Duration;
use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::net::node::{NodeHandle, PeerNode};
use webdamlog::net::tcp::TcpEndpoint;
use webdamlog::parser::parse_rule;
use webdamlog::wepic::{ops, rules, schema, Picture};

fn main() {
    // The sigmod peer binds first (the "cloud").
    let sigmod_ep = TcpEndpoint::bind("sigmod", "127.0.0.1:0").unwrap();
    let sigmod_addr = sigmod_ep.local_addr();
    println!("sigmod peer listening on {sigmod_addr}");

    let mut sigmod = Peer::new("sigmod");
    schema::declare_sigmod(&mut sigmod).unwrap();
    sigmod
        .acl_mut()
        .set_untrusted_policy(UntrustedPolicy::Accept);
    // The registry view every attendee can query.
    sigmod
        .declare("registry", 1, RelationKind::Intensional)
        .unwrap();
    sigmod
        .add_rule(parse_rule("registry@sigmod($a) :- attendees@sigmod($a);").unwrap())
        .unwrap();

    let sigmod_node = PeerNode::new(sigmod, sigmod_ep);
    let sigmod_handle = NodeHandle::spawn(sigmod_node, Duration::from_millis(2));

    // Three audience members launch their own peers, each on its own port
    // and thread.
    let names = ["alice", "bob", "carol"];
    let mut handles = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let ep = TcpEndpoint::bind(*name, "127.0.0.1:0").unwrap();
        ep.register("sigmod", sigmod_addr);
        println!("{name} peer listening on {}", ep.local_addr());

        let mut p = Peer::new(*name);
        schema::declare_attendee(&mut p).unwrap();
        p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
        p.add_rule(rules::publish_to_sigmod(name, "sigmod").unwrap())
            .unwrap();
        // Register with the conference and upload a photo.
        p.insert_remote("sigmod", "attendees", vec![Value::from(*name)]);
        ops::upload_picture(
            &mut p,
            &Picture {
                id: (i as i64) + 1,
                name: format!("{name}_badge.jpg"),
                owner: (*name).into(),
                data: vec![i as u8; 128],
            },
        )
        .unwrap();

        handles.push(NodeHandle::spawn(
            PeerNode::new(p, ep),
            Duration::from_millis(2),
        ));
    }

    // Let the free-running peers converge.
    std::thread::sleep(Duration::from_millis(500));

    for h in handles {
        h.stop().unwrap();
    }
    let sigmod_node = sigmod_handle.stop().unwrap();
    let sigmod = sigmod_node.peer();

    println!("\nattendees@sigmod:");
    for f in sigmod.facts_of("attendees") {
        println!("  {f}");
    }
    println!("pictures@sigmod:");
    for f in sigmod.facts_of("pictures") {
        println!("  {f}");
    }
    assert_eq!(sigmod.relation_facts("attendees").len(), 3);
    assert_eq!(sigmod.relation_facts("pictures").len(), 3);
    println!(
        "\nall {} audience peers registered and published over TCP. ok.",
        names.len()
    );
}
