//! Quickstart: two peers, one delegation — the paper's `attendeePictures`
//! rule end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::parser::{parse_rule, pretty};

fn main() {
    let mut rt = LocalRuntime::new();
    for name in ["jules", "emilien"] {
        let mut p = Peer::new(name);
        p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
        rt.add_peer(p).unwrap();
    }

    // Jules wants to see the pictures of whoever he selects. The rule uses
    // a *peer variable* ($attendee) — the paper's headline feature.
    let rule = parse_rule(
        "attendeePictures@jules($id, $name, $owner, $data) :- \
         selectedAttendee@jules($attendee), \
         pictures@$attendee($id, $name, $owner, $data);",
    )
    .expect("rule parses");
    println!("Jules' rule:\n  {}", pretty::rule(&rule));

    let jules = rt.peer_mut("jules").unwrap();
    jules
        .declare("attendeePictures", 4, RelationKind::Intensional)
        .unwrap();
    jules.add_rule(rule).unwrap();
    jules
        .insert_local("selectedAttendee", vec![Value::from("emilien")])
        .unwrap();

    // Émilien has a picture (the paper's example fact).
    let emilien = rt.peer_mut("emilien").unwrap();
    emilien
        .insert_local(
            "pictures",
            vec![
                Value::from(32),
                Value::from("sea.jpg"),
                Value::from("emilien"),
                Value::bytes(&[0b0110_0100, 0, 0]), // "100..." in the paper
            ],
        )
        .unwrap();

    let report = rt.run_to_quiescence(32).expect("engine runs");
    println!(
        "\nquiescent after {} rounds, {} messages routed",
        report.rounds, report.messages
    );

    // Evaluating the rule at jules delegated its remainder to emilien:
    let emilien = rt.peer("emilien").unwrap();
    for d in emilien.installed_delegations() {
        println!(
            "\nrule installed at emilien on jules' behalf:\n  {}",
            d.rule
        );
    }

    let jules = rt.peer("jules").unwrap();
    println!("\nattendeePictures@jules:");
    for f in jules.facts_of("attendeePictures") {
        println!("  {f}");
    }
    assert_eq!(jules.relation_facts("attendeePictures").len(), 1);
    println!("\nok.");
}
