//! Delegation under the microscope: installation, cascading, revocation,
//! and the approval queue — §2's novel feature, step by step.
//!
//! ```sh
//! cargo run --example delegation
//! ```

use webdamlog::core::acl::UntrustedPolicy;
use webdamlog::core::runtime::LocalRuntime;
use webdamlog::core::{Peer, RelationKind};
use webdamlog::datalog::Value;
use webdamlog::parser::parse_rule;

fn open_peer(name: &str) -> Peer {
    let mut p = Peer::new(name);
    p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
    p
}

fn main() {
    // ------------------------------------------------------------------
    // 1. Cascading delegation: the paper's transfer rule bounces through
    //    THREE peers (jules -> emilien -> jules -> emilien).
    // ------------------------------------------------------------------
    println!("1. cascading delegation (the transfer rule)");
    let mut rt = LocalRuntime::new();
    rt.add_peer(open_peer("jules")).unwrap();
    rt.add_peer(open_peer("emilien")).unwrap();

    let jules = rt.peer_mut("jules").unwrap();
    jules
        .add_rule(
            parse_rule(
                "$protocol@$attendee($name) :- \
                 selectedAttendee@jules($attendee), \
                 communicate@$attendee($protocol), \
                 selectedPictures@jules($name);",
            )
            .unwrap(),
        )
        .unwrap();
    jules
        .insert_local("selectedAttendee", vec![Value::from("emilien")])
        .unwrap();
    jules
        .insert_local("selectedPictures", vec![Value::from("sea.jpg")])
        .unwrap();

    let emilien = rt.peer_mut("emilien").unwrap();
    emilien
        .insert_local("communicate", vec![Value::from("inbox")])
        .unwrap();
    emilien
        .declare("inbox", 1, RelationKind::Intensional)
        .unwrap();

    rt.run_to_quiescence(32).unwrap();

    println!("  rules running at emilien on jules' behalf:");
    for d in rt.peer("emilien").unwrap().installed_delegations() {
        println!("    {}", d.rule);
    }
    println!("  rules running at jules on emilien's behalf (the bounce):");
    for d in rt.peer("jules").unwrap().installed_delegations() {
        println!("    {}", d.rule);
    }
    let inbox = rt.peer("emilien").unwrap().relation_facts("inbox");
    println!("  inbox@emilien = {inbox:?}");
    assert_eq!(inbox.len(), 1);

    // ------------------------------------------------------------------
    // 2. Revocation: deselect -> the whole delegation chain unwinds.
    // ------------------------------------------------------------------
    println!("\n2. revocation when support disappears");
    rt.peer_mut("jules")
        .unwrap()
        .delete_local("selectedAttendee", vec![Value::from("emilien")])
        .unwrap();
    rt.run_to_quiescence(32).unwrap();
    println!(
        "  delegations at emilien: {}, at jules: {}, inbox@emilien: {:?}",
        rt.peer("emilien").unwrap().installed_delegations().len(),
        rt.peer("jules").unwrap().installed_delegations().len(),
        rt.peer("emilien").unwrap().relation_facts("inbox"),
    );
    assert!(rt
        .peer("emilien")
        .unwrap()
        .installed_delegations()
        .is_empty());
    assert!(rt
        .peer("emilien")
        .unwrap()
        .relation_facts("inbox")
        .is_empty());

    // ------------------------------------------------------------------
    // 3. The approval queue (control of delegation, §3).
    // ------------------------------------------------------------------
    println!("\n3. control of delegation: untrusted peers queue");
    let mut rt = LocalRuntime::new();
    rt.add_peer(open_peer("julia")).unwrap(); // julia sends
    rt.add_peer(Peer::new("jules")).unwrap(); // jules has the default (queue) policy

    let julia = rt.peer_mut("julia").unwrap();
    julia.declare("view", 1, RelationKind::Intensional).unwrap();
    julia
        .add_rule(parse_rule("view@julia($x) :- pictures@jules($x);").unwrap())
        .unwrap();

    let jules = rt.peer_mut("jules").unwrap();
    jules
        .insert_local("pictures", vec![Value::from(7)])
        .unwrap();

    rt.run_to_quiescence(32).unwrap();
    let jules = rt.peer("jules").unwrap();
    println!("  pending at jules: {}", jules.pending_delegations().len());
    assert_eq!(jules.pending_delegations().len(), 1);
    assert!(rt.peer("julia").unwrap().relation_facts("view").is_empty());

    let id = rt.peer("jules").unwrap().pending_delegations()[0]
        .delegation
        .id;
    rt.peer_mut("jules")
        .unwrap()
        .approve_delegation(id)
        .unwrap();
    rt.run_to_quiescence(32).unwrap();
    let view = rt.peer("julia").unwrap().relation_facts("view");
    println!("  after approval, view@julia = {view:?}");
    assert_eq!(view.len(), 1);

    println!("\nok.");
}
