// The Wepic conference album (Figure 1): the sigmod peer aggregates
// pictures from attendees and from its Facebook wrapper peer.

extensional attendee@sigmod/1;
extensional pictures@sigmodFB/4;
extensional pictures@alice/4;
extensional pictures@bob/4;
intensional album@sigmod/4;

// Pull from every registered attendee (variable peer position).
album@sigmod($id, $name, $owner, $data) :-
    attendee@sigmod($who),
    pictures@$who($id, $name, $owner, $data);

// The wrapper peer's pictures are always in scope.
album@sigmod($id, $name, $owner, $data) :-
    pictures@sigmodFB($id, $name, $owner, $data);

attendee@sigmod("alice");
attendee@sigmod("bob");
pictures@alice(1, "talk.jpg", "alice", 0x01);
pictures@bob(2, "hall.jpg", "bob", 0x02);
pictures@sigmodFB(3, "booth.jpg", "sigmodFB", 0x03);
