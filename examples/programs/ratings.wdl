// Customization from the paper's demo: only keep pictures whose owner
// rated them 5, and tag each album entry with a display label.

extensional pictures@emilien/4;
extensional rate@emilien/2;
extensional selectedAttendee@jules/1;
intensional bestPictures@jules/4;
intensional labelled@jules/2;

bestPictures@jules($id, $name, $owner, $data) :-
    selectedAttendee@jules($attendee),
    pictures@$attendee($id, $name, $owner, $data),
    rate@$owner($id, $r),
    $r == 5;

labelled@jules($id, $label) :-
    bestPictures@jules($id, $name, $owner, $data),
    $label := $owner + "/" + $name;

selectedAttendee@jules("emilien");
pictures@emilien(7, "sunset.jpg", "emilien", 0x0a);
rate@emilien(7, 5);
