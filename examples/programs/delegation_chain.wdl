// A three-peer delegation chain (§3): a rule whose body walks
// p -> q -> r installs remainders down the chain; wdl-check reports the
// bounded delegation depth it proves.

extensional start@p/1;
extensional hop@q/1;
extensional stop@r/1;
intensional reach@p/1;

reach@p($x) :-
    start@p($x),
    hop@q($x),
    stop@r($x);

start@p(1);
hop@q(1);
stop@r(1);
