// The paper's opening example (§2): Jules collects pictures of the
// attendees he selected, wherever those pictures live.

extensional pictures@emilien/4;
extensional selectedAttendee@jules/1;
intensional attendeePictures@jules/4;

attendeePictures@jules($id, $name, $owner, $data) :-
    selectedAttendee@jules($attendee),
    pictures@$attendee($id, $name, $owner, $data);

pictures@emilien(32, "sea.jpg", "emilien", 0x640000);
pictures@emilien(33, "dunes.jpg", "emilien", 0x640001);
selectedAttendee@jules("emilien");
