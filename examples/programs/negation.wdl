// Stratified negation: unseen pictures are those in the album that the
// user has not yet viewed. Safe (negated variables bound positively
// first) and stratification-clean (no recursion through `not`).

extensional album@jules/2;
extensional viewed@jules/1;
intensional unseen@jules/2;

unseen@jules($id, $name) :-
    album@jules($id, $name),
    not viewed@jules($id);

album@jules(1, "talk.jpg");
album@jules(2, "hall.jpg");
viewed@jules(1);
