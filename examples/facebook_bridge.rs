//! The Facebook wrapper in both directions (§4, "Interaction via
//! Facebook"): WebdamLog rules publish into the simulated group, and
//! external group activity flows back as facts — including for users with
//! no Facebook account, exactly the point the paper makes.
//!
//! ```sh
//! cargo run --example facebook_bridge
//! ```

use webdamlog::wepic::{ops, Conference, ConferenceConfig, Picture};
use webdamlog::wrappers::facebook::{Comment, Post, UserWrapper};
use webdamlog::wrappers::Wrapper;

fn main() {
    let mut cfg = ConferenceConfig::demo();
    cfg.open_trust = true;
    let mut conf = Conference::new(&cfg).unwrap();

    // --- outbound: Émilien's upload, authorized, reaches the group feed.
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::upload_picture(
        emilien,
        &Picture {
            id: 1,
            name: "sea.jpg".into(),
            owner: "Emilien".into(),
            data: vec![0x64, 0, 0],
        },
    )
    .unwrap();
    ops::authorize(emilien, "Facebook", 1, "Emilien").unwrap();
    conf.settle(64).unwrap();
    println!("group feed after Émilien's authorized upload:");
    for p in conf.fb.group_feed("Sigmod") {
        println!("  {} {:?} by {}", p.id, p.name, p.owner);
    }
    assert_eq!(conf.fb.group_feed("Sigmod").len(), 1);

    // --- inbound: an external Facebook member posts; Jules — who in this
    // story has NO Facebook account — still sees it through pictures@sigmod.
    conf.fb.post_to_group(
        "Sigmod",
        Post {
            id: 200,
            name: "banquet.jpg".into(),
            owner: "externalMember".into(),
            data: vec![7; 16],
        },
    );
    conf.fb.comment(
        "Sigmod",
        Comment {
            pic_id: 200,
            author: "externalMember".into(),
            text: "great conference!".into(),
        },
    );
    conf.settle(64).unwrap();
    let sigmod_pics = conf.peer("sigmod").unwrap().relation_facts("pictures");
    println!("\npictures@sigmod now holds {} facts:", sigmod_pics.len());
    for f in conf.peer("sigmod").unwrap().facts_of("pictures") {
        println!("  {f}");
    }
    assert!(sigmod_pics.len() >= 2);

    // --- the personal-account wrapper of §2: friends@ÉmilienFB,
    // pictures@ÉmilienFB.
    conf.fb.add_friend("Emilien", 42, "Jules");
    conf.fb
        .add_user_picture("Emilien", 900, "Emilien", "http://fb.example/900.jpg");
    let (mut user_wrapper, mut emilien_fb) = UserWrapper::new(conf.fb.clone(), "Emilien").unwrap();
    user_wrapper.sync(&mut emilien_fb).unwrap();
    println!("\n{} exports:", emilien_fb.name());
    for f in emilien_fb.facts_of("friends") {
        println!("  {f}");
    }
    for f in emilien_fb.facts_of("pictures") {
        println!("  {f}");
    }
    assert_eq!(emilien_fb.relation_facts("friends").len(), 1);
    assert_eq!(emilien_fb.relation_facts("pictures").len(), 1);

    println!("\nok.");
}
