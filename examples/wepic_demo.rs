//! The full demonstration of the paper's §4, scripted: the Figure 2
//! topology (Émilien, Jules, the sigmod cloud peer, the SigmodFB group),
//! every scenario in order.
//!
//! ```sh
//! cargo run --example wepic_demo
//! ```

use webdamlog::wepic::{ops, rules, Conference, ConferenceConfig, Picture};

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    banner("Setup (Figure 2)");
    let mut conf = Conference::new(&ConferenceConfig::demo()).expect("conference builds");
    println!(
        "peers: {:?}, facebook group peer: {}",
        conf.runtime.peer_names(),
        conf.fb_peer_name()
    );

    // Both attendees install their photo collections locally.
    for (owner, ids) in [("Emilien", [1, 2]), ("Jules", [3, 4])] {
        for id in ids {
            let p = conf.peer_mut(owner).unwrap();
            ops::upload_picture(
                p,
                &Picture {
                    id,
                    name: format!("{owner}_{id}.jpg"),
                    owner: owner.into(),
                    data: vec![id as u8; 64],
                },
            )
            .unwrap();
        }
    }
    conf.settle(64).unwrap();
    println!(
        "pictures@sigmod after uploads: {} facts",
        conf.peer("sigmod")
            .unwrap()
            .relation_facts("pictures")
            .len()
    );

    banner("Interaction via Facebook");
    // Émilien authorizes Facebook publication for picture 1 only.
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::authorize(emilien, "Facebook", 1, "Emilien").unwrap();
    conf.settle(64).unwrap();
    let feed = conf.fb.group_feed("Sigmod");
    println!("SigmodFB group feed: {} post(s)", feed.len());
    for p in &feed {
        println!("  post {} {:?} by {}", p.id, p.name, p.owner);
    }
    assert_eq!(feed.len(), 1);

    banner("Customizing rules");
    // Jules looks at Émilien's pictures, then customizes the view rule to
    // rating-5 pictures only.
    let emilien = conf.peer_mut("Emilien").unwrap();
    ops::rate(emilien, 1, 5).unwrap();
    ops::rate(emilien, 2, 3).unwrap();
    conf.peer_mut("Emilien")
        .unwrap()
        .acl_mut()
        .set_untrusted_policy(webdamlog::core::acl::UntrustedPolicy::Accept);
    let jules = conf.peer_mut("Jules").unwrap();
    ops::select_attendee(jules, "Emilien").unwrap();
    conf.settle(64).unwrap();
    println!(
        "attendeePictures@Jules (default rule): {} pictures",
        conf.peer("Jules")
            .unwrap()
            .relation_facts("attendeePictures")
            .len()
    );

    let jules = conf.peer_mut("Jules").unwrap();
    let view_rule = jules.rules()[0].id;
    jules
        .replace_rule(view_rule, rules::rating_filter("Jules", 5).unwrap())
        .unwrap();
    conf.settle(64).unwrap();
    let filtered = conf
        .peer("Jules")
        .unwrap()
        .relation_facts("attendeePictures");
    println!(
        "attendeePictures@Jules (rating >= 5): {} picture(s)",
        filtered.len()
    );
    assert_eq!(filtered.len(), 1);

    banner("Illustration of the control of delegation");
    // Julia (an untrusted peer) joins and tries to install a rule at Jules.
    conf.add_attendee("Julia", false).unwrap();
    let julia = conf.peer_mut("Julia").unwrap();
    ops::select_attendee(julia, "Jules").unwrap();
    conf.settle(64).unwrap();
    let jules = conf.peer("Jules").unwrap();
    println!(
        "pending delegations at Jules: {}",
        jules.pending_delegations().len()
    );
    for p in jules.pending_delegations() {
        println!("  from {}: {}", p.delegation.origin, p.delegation.rule);
    }
    assert!(!jules.pending_delegations().is_empty());

    // Jules approves; his running program changes.
    let ids: Vec<_> = jules
        .pending_delegations()
        .iter()
        .map(|p| p.delegation.id)
        .collect();
    let jules = conf.peer_mut("Jules").unwrap();
    for id in ids {
        jules.approve_delegation(id).unwrap();
    }
    conf.settle(64).unwrap();
    println!(
        "after approval, Julia's view has {} picture(s)",
        conf.peer("Julia")
            .unwrap()
            .relation_facts("attendeePictures")
            .len()
    );

    banner("Interaction via the Web (audience peers)");
    conf.add_attendee("audience1", true).unwrap();
    let p = conf.peer_mut("audience1").unwrap();
    ops::upload_picture(
        p,
        &Picture {
            id: 99,
            name: "selfie.jpg".into(),
            owner: "audience1".into(),
            data: vec![9; 32],
        },
    )
    .unwrap();
    conf.settle(64).unwrap();
    println!(
        "sigmod registry now lists {} attendees; pictures@sigmod holds {} facts",
        conf.peer("sigmod")
            .unwrap()
            .relation_facts("attendees")
            .len(),
        conf.peer("sigmod")
            .unwrap()
            .relation_facts("pictures")
            .len()
    );

    println!("\ndemo complete.");
}
