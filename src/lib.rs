//! # WebdamLog in Rust
//!
//! A from-scratch reproduction of the system demonstrated in *Rule-Based
//! Application Development using Webdamlog* (Abiteboul, Antoine, Miklau,
//! Stoyanovich, Testard — SIGMOD 2013): a datalog-style language for
//! managing distributed data on the Web in a peer-to-peer manner, in which
//! peers exchange **both facts and rules** (delegation).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`datalog`] — the datalog kernel (the Bud-substitute substrate):
//!   indexed relations, naive & seminaive fixpoint, stratified negation.
//! * [`core`] — the WebdamLog language and peer engine: peer-qualified
//!   atoms with relation/peer variables, the three-step stage loop,
//!   delegation with per-stage revocation, and the demo's
//!   delegation-approval access control.
//! * [`obs`] — the structured trace pipeline: per-rule/per-stage
//!   profiling events, the online aggregator, and the message-graph
//!   critical-path extractor.
//! * [`parser`] — the surface syntax (`m@p(...)`, `$vars`, `:-`).
//! * [`analyze`] — the whole-program static analyzer: cross-peer
//!   dependency graph, diagnostics `WDL001..WDL009`, the `wdl-check`
//!   binary, and the [`core::ProgramCheck`] hook used by
//!   `Peer::install`.
//! * [`net`] — transports: deterministic in-memory network and framed TCP.
//! * [`store`] — the durable storage engine: per-relation segment
//!   checkpoints, a delta write-ahead log, and crash recovery.
//! * [`wrappers`] — simulated Facebook and email wrappers.
//! * [`wepic`] — the Wepic conference picture-sharing application.
//!
//! ## Quickstart
//!
//! ```
//! use webdamlog::core::{Peer, RelationKind, runtime::LocalRuntime};
//! use webdamlog::core::acl::UntrustedPolicy;
//! use webdamlog::parser::parse_rule;
//! use webdamlog::datalog::Value;
//!
//! let mut rt = LocalRuntime::new();
//! for name in ["jules", "emilien"] {
//!     let mut p = Peer::new(name);
//!     p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
//!     rt.add_peer(p).unwrap();
//! }
//!
//! // The paper's delegation rule, straight from its surface syntax.
//! let jules = rt.peer_mut("jules").unwrap();
//! jules.declare("attendeePictures", 4, RelationKind::Intensional).unwrap();
//! jules.add_rule(parse_rule(
//!     "attendeePictures@jules($id, $name, $owner, $data) :- \
//!      selectedAttendee@jules($attendee), \
//!      pictures@$attendee($id, $name, $owner, $data);",
//! ).unwrap()).unwrap();
//! jules.insert_local("selectedAttendee", vec![Value::from("emilien")]).unwrap();
//!
//! let emilien = rt.peer_mut("emilien").unwrap();
//! emilien.insert_local("pictures", vec![
//!     Value::from(32), Value::from("sea.jpg"),
//!     Value::from("emilien"), Value::bytes(&[1, 0, 0]),
//! ]).unwrap();
//!
//! rt.run_to_quiescence(32).unwrap();
//! assert_eq!(rt.peer("jules").unwrap().relation_facts("attendeePictures").len(), 1);
//! ```

#![forbid(unsafe_code)]

pub use wdl_analyze as analyze;
pub use wdl_core as core;
pub use wdl_datalog as datalog;
pub use wdl_net as net;
pub use wdl_obs as obs;
pub use wdl_parser as parser;
pub use wdl_store as store;
pub use wdl_wrappers as wrappers;
pub use wepic;
