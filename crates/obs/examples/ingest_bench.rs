//! Micro-benchmark for the coordinator-side cost of [`Aggregator::ingest`].
//!
//! Synthesises the event mix of one publish-burst round (500 publishers
//! fanning into one hub: stage begin/end, one rule evaluation and one
//! message send per publisher, plus the hub-side deliveries) and reports
//! the average ingest cost per round and per event. This is the serial
//! work a traced `ShardedRuntime` tick adds on the coordinator path, so
//! it bounds how much of the `tracing_overhead` ceiling the aggregation
//! layer itself consumes.
//!
//! Run with `cargo run --release -p wdl-obs --example ingest_bench`.

use std::time::Instant;

use wdl_datalog::Symbol;
use wdl_obs::{Aggregator, TraceEvent};

fn main() {
    const ROUNDS: u64 = 20;
    let hub = Symbol::intern("burstHub");
    let peers: Vec<Symbol> = (0..500)
        .map(|i| Symbol::intern(&format!("burstAtt{i}")))
        .collect();
    let rules: Vec<Symbol> = (0..500)
        .map(|i| Symbol::intern(&format!("burstAtt{i}#0")))
        .collect();
    let mut agg = Aggregator::new();
    let mut total = 0u128;
    let mut events_per_round = 0;
    for round in 1..=ROUNDS {
        let mut events = Vec::new();
        for (i, &p) in peers.iter().enumerate() {
            events.push(TraceEvent::StageBegin {
                peer: p,
                stage: round,
            });
            events.push(TraceEvent::RuleEval {
                peer: p,
                stage: round,
                rule: rules[i],
                dur_ns: 1000,
                delta_in: 1,
                derived: 7,
            });
            events.push(TraceEvent::MsgSend {
                from: p,
                from_stage: round,
                to: hub,
                items: 1,
            });
            events.push(TraceEvent::StageEnd {
                peer: p,
                stage: round,
                dur_ns: 10_000,
                derivations: 7,
                rounds: 2,
                msgs_in: 0,
            });
        }
        for &p in &peers {
            events.push(TraceEvent::MsgDeliver {
                from: p,
                to: hub,
                to_stage: round,
                items: 1,
            });
        }
        events_per_round = events.len();
        let t0 = Instant::now();
        agg.ingest(&events);
        agg.end_round();
        total += t0.elapsed().as_nanos();
    }
    let per_round = total / u128::from(ROUNDS);
    println!(
        "ingest: {per_round} ns/round avg ({events_per_round} events/round, {} ns/event)",
        per_round / events_per_round as u128
    );
    assert_eq!(agg.rounds().len(), ROUNDS as usize);
}
