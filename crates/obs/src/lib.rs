//! # wdl-obs — structured tracing for the WebdamLog runtimes
//!
//! A first-class observability layer, in three pieces:
//!
//! 1. **Events** ([`TraceEvent`], [`TraceSink`]): small `Copy` records
//!    emitted by the execution layers — stage begin/end with measured
//!    durations, per-rule evaluation timings and delta sizes, message
//!    send/deliver with `(peer, stage)` causal tags, delegation
//!    install/revoke, blocked reads, and shard-round routing counters.
//!    Peers record through a sink trait; with no sink installed the
//!    hot path pays one branch and **zero allocations**.
//! 2. **Aggregation** ([`Aggregator`], [`Histogram`]): an online
//!    aggregator the runtimes drain once per round — per-peer and
//!    per-rule duration histograms, top-k hottest rules, an
//!    active-set/fan-out time series, and JSONL export.
//! 3. **Critical paths** ([`ActivityGraph`], [`CriticalPath`]): a
//!    program-activity-graph over `(peer, stage)` executions whose
//!    edges are intra-peer sequencing and delivered messages, with
//!    k-longest path extraction over measured durations — answering
//!    "which peer/rule chain bounds convergence latency".
//!
//! The crate deliberately depends only on `wdl-datalog` (for
//! [`Symbol`](wdl_datalog::Symbol)); `wdl-core` hooks its runtimes into
//! these types, never the other way around.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod event;
mod fx;
mod graph;

pub use aggregate::{Aggregator, Histogram, PeerStat, RoundSample, RuleStat};
pub use event::{BufferSink, NullSink, TraceEvent, TraceSink};
pub use fx::{FxHashMap, FxHasher};
pub use graph::{ActivityGraph, CriticalPath, PathNode};
