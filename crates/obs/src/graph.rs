//! The program-activity-graph: stage executions as nodes, causality as
//! edges, and k-longest critical-path extraction over measured
//! durations (the snailtrail shape, specialised to the WebdamLog stage
//! loop).
//!
//! Nodes are `(peer, stage)` executions weighted by their measured
//! duration. Edges are
//!
//! * **intra-peer sequencing**: each peer's stage executions form a
//!   chain in execution order (soft state and the store carry over), and
//! * **delivered messages**: an edge from the sending stage to the
//!   stage that ingested the message.
//!
//! Both runtimes deliver a message strictly after the sending round and
//! run each peer at most one stage per round, so events arrive at the
//! aggregator in a valid topological order. That makes the longest-path
//! computation *online*: when a node is created (at `StageEnd`), every
//! predecessor already carries its own best-path cost, and one max over
//! the incoming edges finishes the DP for the new node.

use crate::fx::FxHashMap;

use wdl_datalog::Symbol;

/// Safety valve: beyond this many stage executions the graph stops
/// growing and counts drops instead (a 10⁵-peer run traced for hours
/// should degrade, not OOM).
const NODE_CAP: usize = 1 << 21;

#[derive(Clone, Copy, Debug)]
struct Node {
    peer: Symbol,
    stage: u64,
    dur_ns: u64,
    /// Cost of the heaviest path ending at (and including) this node.
    best_ns: u64,
    /// Predecessor on that heaviest path.
    pred: Option<u32>,
}

/// One node on an extracted critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathNode {
    /// The peer that ran.
    pub peer: Symbol,
    /// Its stage number.
    pub stage: u64,
    /// Measured duration of that stage.
    pub dur_ns: u64,
}

/// A critical path: a chain of stage executions linked by sequencing
/// and message-delivery edges, heaviest first in
/// [`ActivityGraph::critical_paths`]' answer.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Total measured duration along the chain.
    pub total_ns: u64,
    /// The chain, in execution order (earliest stage first).
    pub nodes: Vec<PathNode>,
}

/// The online program-activity-graph.
#[derive(Default)]
pub struct ActivityGraph {
    nodes: Vec<Node>,
    /// `(peer, stage)` → node index.
    index: FxHashMap<(Symbol, u64), u32>,
    /// Message edges whose receiving stage has not ended yet:
    /// `(to, to_stage)` → sender node indices.
    pending_in: FxHashMap<(Symbol, u64), Vec<u32>>,
    /// Each peer's most recent execution, for the sequencing edge.
    last_exec: FxHashMap<Symbol, u32>,
    dropped: u64,
}

impl ActivityGraph {
    /// An empty graph.
    pub fn new() -> ActivityGraph {
        ActivityGraph::default()
    }

    /// Number of stage executions recorded.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Stage executions discarded after [`NODE_CAP`] was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records a delivered message as a causal edge. Called before the
    /// receiving stage's `StageEnd` arrives; the edge is parked until
    /// then. Senders missing from the graph (e.g. tracing was enabled
    /// mid-run) are ignored.
    pub fn on_deliver(&mut self, from: Symbol, from_stage: u64, to: Symbol, to_stage: u64) {
        if let Some(&src) = self.index.get(&(from, from_stage)) {
            self.pending_in.entry((to, to_stage)).or_default().push(src);
        }
    }

    /// Records a finished stage execution and finishes its longest-path
    /// entry (all predecessors are already present — see module docs).
    pub fn on_stage_end(&mut self, peer: Symbol, stage: u64, dur_ns: u64) {
        if self.nodes.len() >= NODE_CAP {
            self.dropped += 1;
            self.pending_in.remove(&(peer, stage));
            return;
        }
        let mut best_pred: Option<u32> = None;
        let mut best_in = 0u64;
        if let Some(&prev) = self.last_exec.get(&peer) {
            best_pred = Some(prev);
            best_in = self.nodes[prev as usize].best_ns;
        }
        if let Some(senders) = self.pending_in.remove(&(peer, stage)) {
            for src in senders {
                let cand = self.nodes[src as usize].best_ns;
                if cand > best_in || best_pred.is_none() {
                    best_in = cand;
                    best_pred = Some(src);
                }
            }
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            peer,
            stage,
            dur_ns,
            best_ns: best_in + dur_ns,
            pred: best_pred,
        });
        self.index.insert((peer, stage), id);
        self.last_exec.insert(peer, id);
    }

    /// The `k` heaviest critical paths, heaviest first. Paths are
    /// node-disjoint at their endpoints: an endpoint already covered by
    /// a heavier path is skipped, so the answer names `k` *distinct*
    /// chains instead of one chain and its suffixes.
    pub fn critical_paths(&self, k: usize) -> Vec<CriticalPath> {
        let mut order: Vec<u32> = (0..self.nodes.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.nodes[b as usize]
                .best_ns
                .cmp(&self.nodes[a as usize].best_ns)
        });
        let mut covered = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        for end in order {
            if out.len() >= k {
                break;
            }
            if covered[end as usize] {
                continue;
            }
            let mut chain = Vec::new();
            let mut cur = Some(end);
            while let Some(i) = cur {
                covered[i as usize] = true;
                let n = self.nodes[i as usize];
                chain.push(PathNode {
                    peer: n.peer,
                    stage: n.stage,
                    dur_ns: n.dur_ns,
                });
                cur = n.pred;
            }
            chain.reverse();
            out.push(CriticalPath {
                total_ns: self.nodes[end as usize].best_ns,
                nodes: chain,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn message_edge_beats_light_local_chain() {
        let mut g = ActivityGraph::new();
        // Heavy sender a@1, light receiver history b@1, message a@1 -> b@2.
        g.on_stage_end(sym("a"), 1, 100);
        g.on_stage_end(sym("b"), 1, 1);
        g.on_deliver(sym("a"), 1, sym("b"), 2);
        g.on_stage_end(sym("b"), 2, 5);
        let paths = g.critical_paths(1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].total_ns, 105);
        let peers: Vec<_> = paths[0].nodes.iter().map(|n| n.peer).collect();
        assert_eq!(peers, vec![sym("a"), sym("b")]);
    }

    #[test]
    fn intra_peer_chain_accumulates() {
        let mut g = ActivityGraph::new();
        g.on_stage_end(sym("p"), 1, 10);
        g.on_stage_end(sym("p"), 2, 20);
        g.on_stage_end(sym("p"), 5, 30); // gap: stages 3-4 never ran
        let paths = g.critical_paths(1);
        assert_eq!(paths[0].total_ns, 60);
        assert_eq!(paths[0].nodes.len(), 3);
        assert_eq!(paths[0].nodes[0].stage, 1);
        assert_eq!(paths[0].nodes[2].stage, 5);
    }

    #[test]
    fn k_paths_are_distinct_chains() {
        let mut g = ActivityGraph::new();
        g.on_stage_end(sym("a"), 1, 100);
        g.on_stage_end(sym("a"), 2, 1);
        g.on_stage_end(sym("b"), 1, 50);
        g.on_stage_end(sym("c"), 1, 10);
        let paths = g.critical_paths(3);
        assert_eq!(paths.len(), 3);
        // The a-chain is one path; b and c are separate chains, not
        // suffixes of a.
        assert_eq!(paths[0].total_ns, 101);
        assert_eq!(paths[1].total_ns, 50);
        assert_eq!(paths[2].total_ns, 10);
    }

    #[test]
    fn deliver_from_unknown_sender_is_ignored() {
        let mut g = ActivityGraph::new();
        g.on_deliver(sym("ghost"), 7, sym("b"), 1);
        g.on_stage_end(sym("b"), 1, 5);
        assert_eq!(g.critical_paths(1)[0].total_ns, 5);
    }
}
