//! The trace-event taxonomy and the sink trait peers record through.
//!
//! Events are small `Copy` structs (interned [`Symbol`]s and integers
//! only) so that recording one is a plain memcpy into a buffer — no
//! boxing, no string formatting on the hot path. Everything that needs
//! prose (labels, JSONL export) happens later, in the aggregator.

use wdl_datalog::Symbol;

/// One observation from the execution layers.
///
/// Causality is carried by `(peer, stage)` pairs: a peer's stage counter
/// increases by exactly one per [`run_stage`] call, so `(peer, stage)`
/// names one stage execution uniquely for the lifetime of the peer.
/// Message events tag the *sending* stage on [`TraceEvent::MsgSend`];
/// the matching [`TraceEvent::MsgDeliver`] carries the receiving stage,
/// and the aggregator re-joins the two through per-channel FIFO order
/// (the runtimes preserve per-(from, to) delivery order), keeping the
/// wire `Message` format untouched.
///
/// [`run_stage`]: https://docs.rs/wdl-core
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A peer entered its stage loop.
    StageBegin {
        /// The peer running the stage.
        peer: Symbol,
        /// The stage number (monotone per peer).
        stage: u64,
    },
    /// A peer finished its stage loop.
    StageEnd {
        /// The peer that ran.
        peer: Symbol,
        /// The stage number (matches the preceding `StageBegin`).
        stage: u64,
        /// Wall-clock duration of the whole stage.
        dur_ns: u64,
        /// Head instantiations attempted during the fixpoint.
        derivations: u64,
        /// Fixpoint rounds executed.
        rounds: u64,
        /// Messages ingested at the top of the stage.
        msgs_in: u64,
    },
    /// One rule's evaluation work within a stage (summed over fixpoint
    /// rounds for the stage-layer paths; per maintenance pass for the
    /// differential engine).
    RuleEval {
        /// The peer evaluating the rule.
        peer: Symbol,
        /// The stage during which it ran.
        stage: u64,
        /// Aggregation label for the rule (see `wdl-core`'s tracer for
        /// the labelling scheme).
        rule: Symbol,
        /// Wall-clock time spent in the rule's plans.
        dur_ns: u64,
        /// Size of the input delta the rule saw (0 on full evaluation).
        delta_in: u64,
        /// Head tuples the rule produced (pre-dedup).
        derived: u64,
    },
    /// A message left a peer's outbox.
    MsgSend {
        /// Sending peer.
        from: Symbol,
        /// The sender's stage when the message was emitted (causal tag).
        from_stage: u64,
        /// Destination peer.
        to: Symbol,
        /// Facts/delegations/revocations carried.
        items: u64,
    },
    /// A message was ingested by its destination.
    MsgDeliver {
        /// Sending peer.
        from: Symbol,
        /// Receiving peer.
        to: Symbol,
        /// The receiver's stage that ingested it (causal tag).
        to_stage: u64,
        /// Facts/delegations/revocations carried.
        items: u64,
    },
    /// A peer emitted delegation installs toward a target peer.
    DelegationInstall {
        /// Delegating peer.
        origin: Symbol,
        /// Peer asked to run the delegated rules.
        target: Symbol,
        /// The origin's stage that produced the delta.
        from_stage: u64,
        /// Number of delegations installed.
        count: u64,
    },
    /// A peer revoked previously installed delegations.
    DelegationRevoke {
        /// Delegating peer.
        origin: Symbol,
        /// Peer whose delegated rules are withdrawn.
        target: Symbol,
        /// The origin's stage that produced the delta.
        from_stage: u64,
        /// Number of delegations revoked.
        count: u64,
    },
    /// Rule evaluations hit unreadable remote relations this stage.
    BlockedReads {
        /// The peer whose reads were blocked.
        peer: Symbol,
        /// The stage during which they were blocked.
        stage: u64,
        /// Number of blocked read attempts.
        count: u64,
    },
    /// The session layer retransmitted unacknowledged data frames.
    SessionRetransmit {
        /// The retransmitting peer.
        from: Symbol,
        /// The destination whose acknowledgements are missing.
        to: Symbol,
        /// Frames re-sent in this batch.
        count: u64,
    },
    /// A session liveness transition for a remote peer.
    SessionHealth {
        /// The peer making the judgement.
        observer: Symbol,
        /// The remote being judged.
        remote: Symbol,
        /// Health state: 0 = Up, 1 = Suspect, 2 = Down.
        state: u8,
    },
    /// A static-analyzer diagnostic surfaced during a program install
    /// (only non-blocking ones reach the trace stream: error-bearing
    /// batches are rejected before installation).
    AnalyzerDiagnostic {
        /// The peer the program was installed on.
        peer: Symbol,
        /// Numeric part of the `WDLnnn` diagnostic code.
        code: u16,
        /// Severity: 0 = warning, 1 = error.
        severity: u8,
    },
    /// Coordinator-side summary of one sharded round.
    ShardRound {
        /// The coordinator's round counter.
        round: u64,
        /// Messages routed between peers this round.
        routed: u64,
        /// Deliveries deferred by admission budgets.
        deferred: u64,
        /// Peers that ran a stage this round.
        peers_run: u64,
        /// Peers registered in the runtime.
        peers_total: u64,
    },
}

/// Destination for trace events.
///
/// Implementations must be cheap: `record` runs inside the stage loop.
/// The runtime only *calls* a sink when one is installed — a peer with
/// no sink pays a single branch and zero allocations (pinned by the
/// workspace's `trace_alloc` test).
pub trait TraceSink: Send {
    /// Records one event. Called synchronously from the stage loop.
    fn record(&mut self, ev: &TraceEvent);

    /// Takes the buffered events, if this sink buffers any. Runtimes
    /// call this once per round to feed the aggregator; sinks that
    /// forward events elsewhere can keep the default empty answer.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Moves the buffered events onto the end of `out`. Equivalent to
    /// appending [`TraceSink::drain`], but buffering sinks can override
    /// it to keep their allocation, so a runtime draining hundreds of
    /// peers per round pays a memcpy per peer instead of a `Vec`
    /// round-trip per peer.
    fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        let mut drained = self.drain();
        out.append(&mut drained);
    }
}

/// A sink that drops every event — useful to measure pure recording
/// overhead and as a placeholder in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// The standard in-memory sink: events accumulate in a `Vec` until the
/// owning runtime drains them into its [`crate::Aggregator`] at the end
/// of the round.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Vec<TraceEvent>,
}

impl BufferSink {
    /// An empty buffer (no allocation until the first event).
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        // `append` empties the buffer while keeping its capacity, so the
        // steady state records into already-sized storage every round.
        out.append(&mut self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_sink_records_and_drains() {
        let mut sink = BufferSink::new();
        let peer = Symbol::intern("p");
        sink.record(&TraceEvent::StageBegin { peer, stage: 1 });
        sink.record(&TraceEvent::StageEnd {
            peer,
            stage: 1,
            dur_ns: 10,
            derivations: 0,
            rounds: 1,
            msgs_in: 0,
        });
        assert_eq!(sink.len(), 2);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn null_sink_buffers_nothing() {
        let mut sink = NullSink;
        sink.record(&TraceEvent::StageBegin {
            peer: Symbol::intern("p"),
            stage: 1,
        });
        assert!(sink.drain().is_empty());
    }
}
