//! Online aggregation over the trace stream: duration histograms,
//! per-rule hot lists, round time series, the activity graph, and JSONL
//! export.

use std::collections::VecDeque;

use crate::fx::FxHashMap;
use std::io::{self, Write};

use wdl_datalog::Symbol;

use crate::event::TraceEvent;
use crate::graph::{ActivityGraph, CriticalPath};

/// Log₂-bucketed duration histogram (64 buckets cover the full `u64`
/// nanosecond range). Quantiles answer with a bucket's upper bound, so
/// they are ≤ one octave above the true value — plenty for "where does
/// the time go" profiling without storing samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Records one duration sample.
    pub fn record(&mut self, ns: u64) {
        let b = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`; 0 when empty).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b >= 63 { u64::MAX } else { (2u64 << b) - 1 };
            }
        }
        self.max_ns
    }
}

/// Aggregated cost of one rule label across the run.
#[derive(Clone, Debug, Default)]
pub struct RuleStat {
    /// Per-evaluation duration distribution.
    pub hist: Histogram,
    /// Total input-delta tuples seen.
    pub delta_in: u64,
    /// Total head tuples produced (pre-dedup).
    pub derived: u64,
}

/// Aggregated cost of one peer's stage executions.
#[derive(Clone, Debug, Default)]
pub struct PeerStat {
    /// Per-stage duration distribution.
    pub hist: Histogram,
    /// Total head instantiations attempted.
    pub derivations: u64,
    /// Total messages ingested.
    pub msgs_in: u64,
    /// Total blocked read attempts.
    pub blocked_reads: u64,
    /// Total session frames this peer retransmitted.
    pub retransmits: u64,
    /// Static-analyzer diagnostics surfaced on installs at this peer.
    pub analyzer_diags: u64,
}

/// One round of the active-set / fan-out time series.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundSample {
    /// Round number (the coordinator's counter when sharded, a local
    /// tick counter otherwise).
    pub round: u64,
    /// Peers that ran a stage.
    pub active: u64,
    /// Peers registered (0 when the runtime does not report it).
    pub peers_total: u64,
    /// Messages sent.
    pub sent_msgs: u64,
    /// Items (facts/delegations/revocations) across those messages.
    pub sent_items: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Deliveries deferred by admission budgets.
    pub deferred: u64,
    /// Total stage wall-clock across active peers.
    pub stage_ns: u64,
    /// Delegations installed.
    pub delegations: u64,
    /// Delegations revoked.
    pub revocations: u64,
    /// Session frames retransmitted.
    pub retransmits: u64,
    /// Session health degradations observed (Suspect or Down
    /// transitions).
    pub suspects: u64,
}

/// The online aggregator. Runtimes feed it one batch of events per
/// round ([`Aggregator::ingest`]) and close the round with
/// [`Aggregator::end_round`]; queries ([`Aggregator::top_rules`],
/// [`Aggregator::critical_paths`], [`Aggregator::export_jsonl`]) are
/// valid at any point.
#[derive(Default)]
pub struct Aggregator {
    rules: FxHashMap<Symbol, RuleStat>,
    peers: FxHashMap<Symbol, PeerStat>,
    rounds: Vec<RoundSample>,
    cur: RoundSample,
    cur_dirty: bool,
    graph: ActivityGraph,
    /// Unmatched send stages per `(from, to)` channel, in send order.
    /// Delivery order per channel matches send order in both runtimes,
    /// so popping the front recovers each delivery's sending stage.
    send_fifo: FxHashMap<(Symbol, Symbol), VecDeque<u64>>,
    events: u64,
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Aggregator {
        Aggregator::default()
    }

    /// Total events ingested.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Per-rule aggregates keyed by rule label.
    pub fn rules(&self) -> &FxHashMap<Symbol, RuleStat> {
        &self.rules
    }

    /// Per-peer stage aggregates.
    pub fn peers(&self) -> &FxHashMap<Symbol, PeerStat> {
        &self.peers
    }

    /// The closed rounds of the time series.
    pub fn rounds(&self) -> &[RoundSample] {
        &self.rounds
    }

    /// The activity graph built so far.
    pub fn graph(&self) -> &ActivityGraph {
        &self.graph
    }

    /// Ingests one batch of events (typically one round's worth).
    pub fn ingest(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.events += 1;
            self.cur_dirty = true;
            match *ev {
                TraceEvent::StageBegin { .. } => {}
                TraceEvent::StageEnd {
                    peer,
                    stage,
                    dur_ns,
                    derivations,
                    msgs_in,
                    ..
                } => {
                    let ps = self.peers.entry(peer).or_default();
                    ps.hist.record(dur_ns);
                    ps.derivations += derivations;
                    ps.msgs_in += msgs_in;
                    self.cur.active += 1;
                    self.cur.stage_ns += dur_ns;
                    self.graph.on_stage_end(peer, stage, dur_ns);
                }
                TraceEvent::RuleEval {
                    rule,
                    dur_ns,
                    delta_in,
                    derived,
                    ..
                } => {
                    let rs = self.rules.entry(rule).or_default();
                    rs.hist.record(dur_ns);
                    rs.delta_in += delta_in;
                    rs.derived += derived;
                }
                TraceEvent::MsgSend {
                    from,
                    from_stage,
                    to,
                    items,
                } => {
                    self.cur.sent_msgs += 1;
                    self.cur.sent_items += items;
                    self.send_fifo
                        .entry((from, to))
                        .or_default()
                        .push_back(from_stage);
                }
                TraceEvent::MsgDeliver {
                    from, to, to_stage, ..
                } => {
                    self.cur.delivered += 1;
                    if let Some(q) = self.send_fifo.get_mut(&(from, to)) {
                        if let Some(from_stage) = q.pop_front() {
                            self.graph.on_deliver(from, from_stage, to, to_stage);
                        }
                    }
                }
                TraceEvent::DelegationInstall { count, .. } => {
                    self.cur.delegations += count;
                }
                TraceEvent::DelegationRevoke { count, .. } => {
                    self.cur.revocations += count;
                }
                TraceEvent::BlockedReads { peer, count, .. } => {
                    self.peers.entry(peer).or_default().blocked_reads += count;
                }
                TraceEvent::SessionRetransmit { from, count, .. } => {
                    self.cur.retransmits += count;
                    self.peers.entry(from).or_default().retransmits += count;
                }
                TraceEvent::AnalyzerDiagnostic { peer, .. } => {
                    self.peers.entry(peer).or_default().analyzer_diags += 1;
                }
                TraceEvent::SessionHealth { state, .. } => {
                    if state > 0 {
                        self.cur.suspects += 1;
                    }
                }
                TraceEvent::ShardRound {
                    round,
                    deferred,
                    peers_total,
                    ..
                } => {
                    self.cur.round = round;
                    self.cur.deferred += deferred;
                    self.cur.peers_total = peers_total;
                }
            }
        }
    }

    /// Closes the current round of the time series. Rounds in which
    /// nothing was observed are not recorded (quiescent ticks at 10⁵
    /// peers must not grow the series).
    pub fn end_round(&mut self) {
        if !self.cur_dirty {
            return;
        }
        let mut sample = std::mem::take(&mut self.cur);
        if sample.round == 0 {
            sample.round = self.rounds.last().map_or(1, |r| r.round + 1);
        }
        self.rounds.push(sample);
        self.cur_dirty = false;
    }

    /// The `k` hottest rule labels by total measured duration,
    /// hottest first.
    pub fn top_rules(&self, k: usize) -> Vec<(Symbol, &RuleStat)> {
        let mut out: Vec<(Symbol, &RuleStat)> = self.rules.iter().map(|(s, r)| (*s, r)).collect();
        out.sort_by(|a, b| {
            b.1.hist
                .sum_ns()
                .cmp(&a.1.hist.sum_ns())
                .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
        });
        out.truncate(k);
        out
    }

    /// The `k` hottest peers by total stage duration, hottest first.
    pub fn top_peers(&self, k: usize) -> Vec<(Symbol, &PeerStat)> {
        let mut out: Vec<(Symbol, &PeerStat)> = self.peers.iter().map(|(s, p)| (*s, p)).collect();
        out.sort_by(|a, b| {
            b.1.hist
                .sum_ns()
                .cmp(&a.1.hist.sum_ns())
                .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
        });
        out.truncate(k);
        out
    }

    /// The `k` heaviest critical paths through the activity graph.
    pub fn critical_paths(&self, k: usize) -> Vec<CriticalPath> {
        self.graph.critical_paths(k)
    }

    /// Writes the aggregate state as JSON Lines: one `meta` record, one
    /// record per rule label, per peer, per round, and per extracted
    /// critical path. The format is flat and self-describing (a `kind`
    /// field per line) so downstream tooling can stream-filter it.
    pub fn export_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"kind\":\"meta\",\"events\":{},\"rounds\":{},\"graph_nodes\":{},\"graph_dropped\":{}}}",
            self.events,
            self.rounds.len(),
            self.graph.node_count(),
            self.graph.dropped()
        )?;
        let mut rules: Vec<_> = self.rules.iter().collect();
        rules.sort_by_key(|(s, _)| s.to_string());
        for (label, rs) in rules {
            writeln!(
                w,
                "{{\"kind\":\"rule\",\"label\":\"{}\",\"calls\":{},\"total_ns\":{},\"mean_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"delta_in\":{},\"derived\":{}}}",
                json_escape(&label.to_string()),
                rs.hist.count(),
                rs.hist.sum_ns(),
                rs.hist.mean_ns(),
                rs.hist.quantile_ns(0.99),
                rs.hist.max_ns(),
                rs.delta_in,
                rs.derived
            )?;
        }
        let mut peers: Vec<_> = self.peers.iter().collect();
        peers.sort_by_key(|(s, _)| s.to_string());
        for (peer, ps) in peers {
            writeln!(
                w,
                "{{\"kind\":\"peer\",\"peer\":\"{}\",\"stages\":{},\"total_ns\":{},\"mean_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"derivations\":{},\"msgs_in\":{},\"blocked_reads\":{},\"retransmits\":{}}}",
                json_escape(&peer.to_string()),
                ps.hist.count(),
                ps.hist.sum_ns(),
                ps.hist.mean_ns(),
                ps.hist.quantile_ns(0.99),
                ps.hist.max_ns(),
                ps.derivations,
                ps.msgs_in,
                ps.blocked_reads,
                ps.retransmits
            )?;
        }
        for r in &self.rounds {
            writeln!(
                w,
                "{{\"kind\":\"round\",\"round\":{},\"active\":{},\"peers_total\":{},\"sent_msgs\":{},\"sent_items\":{},\"delivered\":{},\"deferred\":{},\"stage_ns\":{},\"delegations\":{},\"revocations\":{},\"retransmits\":{},\"suspects\":{}}}",
                r.round,
                r.active,
                r.peers_total,
                r.sent_msgs,
                r.sent_items,
                r.delivered,
                r.deferred,
                r.stage_ns,
                r.delegations,
                r.revocations,
                r.retransmits,
                r.suspects
            )?;
        }
        for (i, path) in self.critical_paths(3).iter().enumerate() {
            write!(
                w,
                "{{\"kind\":\"critpath\",\"rank\":{},\"total_ns\":{},\"nodes\":[",
                i + 1,
                path.total_ns
            )?;
            for (j, n) in path.nodes.iter().enumerate() {
                if j > 0 {
                    write!(w, ",")?;
                }
                write!(
                    w,
                    "{{\"peer\":\"{}\",\"stage\":{},\"dur_ns\":{}}}",
                    json_escape(&n.peer.to_string()),
                    n.stage,
                    n.dur_ns
                )?;
            }
            writeln!(w, "]}}")?;
        }
        Ok(())
    }
}

/// Escapes a string for embedding in a JSON literal (peer and relation
/// names are interned identifiers, but the export must stay valid JSON
/// whatever they contain).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for ns in [1u64, 2, 3, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 1_001_006);
        assert_eq!(h.max_ns(), 1_000_000);
        // Median sample is 3 -> bucket [2,4) upper bound 3.
        assert_eq!(h.quantile_ns(0.5), 3);
        assert!(h.quantile_ns(1.0) >= 1_000_000);
        assert_eq!(Histogram::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn send_deliver_fifo_recovers_causal_stage() {
        let mut agg = Aggregator::new();
        let (a, b) = (sym("fifoA"), sym("fifoB"));
        // a@1 (heavy) sends, a@2 (light) sends; deliveries arrive in
        // order at b@2 and b@3.
        agg.ingest(&[
            TraceEvent::StageEnd {
                peer: a,
                stage: 1,
                dur_ns: 100,
                derivations: 0,
                rounds: 1,
                msgs_in: 0,
            },
            TraceEvent::MsgSend {
                from: a,
                from_stage: 1,
                to: b,
                items: 1,
            },
        ]);
        agg.end_round();
        agg.ingest(&[
            TraceEvent::MsgDeliver {
                from: a,
                to: b,
                to_stage: 2,
                items: 1,
            },
            TraceEvent::StageEnd {
                peer: b,
                stage: 2,
                dur_ns: 7,
                derivations: 0,
                rounds: 1,
                msgs_in: 1,
            },
        ]);
        agg.end_round();
        let paths = agg.critical_paths(1);
        assert_eq!(paths[0].total_ns, 107);
        assert_eq!(paths[0].nodes.len(), 2);
        assert_eq!(agg.rounds().len(), 2);
        assert_eq!(agg.rounds()[0].sent_msgs, 1);
        assert_eq!(agg.rounds()[1].delivered, 1);
    }

    #[test]
    fn top_rules_orders_by_total_time() {
        let mut agg = Aggregator::new();
        let p = sym("p");
        agg.ingest(&[
            TraceEvent::RuleEval {
                peer: p,
                stage: 1,
                rule: sym("cheap"),
                dur_ns: 10,
                delta_in: 1,
                derived: 1,
            },
            TraceEvent::RuleEval {
                peer: p,
                stage: 1,
                rule: sym("hot"),
                dur_ns: 500,
                delta_in: 9,
                derived: 3,
            },
        ]);
        let top = agg.top_rules(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, sym("hot"));
        assert_eq!(top[0].1.derived, 3);
    }

    #[test]
    fn quiescent_rounds_are_not_recorded() {
        let mut agg = Aggregator::new();
        agg.end_round();
        agg.end_round();
        assert!(agg.rounds().is_empty());
    }

    #[test]
    fn jsonl_export_is_line_structured() {
        let mut agg = Aggregator::new();
        agg.ingest(&[TraceEvent::StageEnd {
            peer: sym("px"),
            stage: 1,
            dur_ns: 42,
            derivations: 2,
            rounds: 1,
            msgs_in: 0,
        }]);
        agg.end_round();
        let mut buf = Vec::new();
        agg.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().any(|l| l.contains("\"kind\":\"meta\"")));
        assert!(text.lines().any(|l| l.contains("\"kind\":\"peer\"")));
        assert!(text.lines().any(|l| l.contains("\"kind\":\"round\"")));
        assert!(text.lines().any(|l| l.contains("\"kind\":\"critpath\"")));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
