//! A tiny non-cryptographic hasher for the aggregator's internal maps.
//!
//! The aggregator touches several hash maps *per event* while ingesting
//! thousands of events per round on the coordinator's serial path, and
//! every key is a [`Symbol`](wdl_datalog::Symbol) (a `u32`) or a small
//! tuple of them. The standard library's DoS-resistant SipHash costs more
//! than the rest of the map operation for such keys; this is the usual
//! multiply-rotate mix (the "Fx" scheme used by rustc) — adequate because
//! the keys come from the runtime's interner, not from untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher state. One `u64`, folded word-at-a-time.
#[derive(Default)]
pub struct FxHasher(u64);

/// The multiplier from rustc's FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n.into());
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n.into());
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` defaulting to [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_apart() {
        let mut m: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for a in 0..32u32 {
            for b in 0..32u32 {
                m.insert((a, b), (a * 32 + b) as usize);
            }
        }
        assert_eq!(m.len(), 1024);
        assert_eq!(m.get(&(3, 7)), Some(&(3 * 32 + 7)));
    }

    #[test]
    fn byte_stream_matches_word_writes_in_length() {
        // Not an equality contract — just exercise the `write` fallback.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_ne!(h.finish(), 0);
    }
}
