//! Offline stand-in for `criterion` that actually measures.
//!
//! It mirrors the API subset the bench binaries use — `benchmark_group`,
//! `bench_with_input`, `Bencher::iter*`, `BenchmarkId`, `Throughput` — and
//! performs a real warm-up + timed measurement, reporting mean/min/max
//! nanoseconds per iteration to stdout. No statistics engine, no plots;
//! enough to compare workloads in the same process reliably.
//!
//! Beyond stdout, every measurement (and any custom metric recorded with
//! [`Criterion::record_metric`]) is kept, and [`Criterion::final_summary`]
//! writes the lot as a machine-readable `BENCH_<bench>.json` next to the
//! working directory (or under `$BENCH_JSON_DIR`) — the artifact CI
//! uploads.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// One measured benchmark, as serialized into the JSON summary.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Top-level harness configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
    metrics: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (each sample is ≥1 iteration).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Target duration of the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// CLI-argument configuration: accepted and ignored in the shim.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Records a custom scalar metric (table-derived numbers like speedups)
    /// for the JSON summary.
    pub fn record_metric(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.push((key.into(), value));
    }

    /// Writes the machine-readable summary: `BENCH_<bench>.json` in
    /// `$BENCH_JSON_DIR` (default: the working directory), where `<bench>`
    /// is the bench binary's name. Results were already printed to stdout
    /// as they were measured.
    pub fn final_summary(&mut self) {
        if cfg!(test) {
            return; // the shim's own tests must not litter the workspace
        }
        let Some(bench) = bench_binary_name() else {
            return;
        };
        let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{bench}.json"));
        let json = self.to_json(&bench);
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    fn to_json(&self, bench: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench)));
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(k), json_num(*v)));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {}, \
                 \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}",
                escape(&r.group),
                escape(&r.id),
                json_num(r.mean_ns),
                json_num(r.min_ns),
                json_num(r.max_ns),
                r.samples
            ));
        }
        if !self.results.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// The bench binary's logical name: the executable file stem with cargo's
/// trailing `-<metadata hash>` stripped.
fn bench_binary_name() -> Option<String> {
    let exe = std::env::current_exe().ok()?;
    let stem = exe.file_stem()?.to_str()?;
    let name = match stem.rsplit_once('-') {
        Some((base, suffix))
            if suffix.len() >= 8 && suffix.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            base
        }
        _ => stem,
    };
    Some(name.to_string())
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// JSON has no NaN/Inf; clamp them to null-safe zero.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Declares the volume of work per iteration (reported, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Per-group sample-size override.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares per-iteration throughput (printed alongside results).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(b) => println!("  throughput: {b} bytes/iter"),
            Throughput::Elements(e) => println!("  throughput: {e} elems/iter"),
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
        );
        f(&mut b, input);
        if let Some(result) = b.report(&self.name, &id.id) {
            self.criterion.results.push(result);
        }
        self
    }

    /// Runs an unparameterized benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
        );
        f(&mut b);
        if let Some(result) = b.report(&self.name, &id.id) {
            self.criterion.results.push(result);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`] (strings or ready-made ids).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

/// Drives the measured closure; collected samples are reported by the group.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Bencher {
        Bencher {
            sample_size,
            warm_up,
            measurement,
            samples_ns: Vec::new(),
        }
    }

    /// Measures `routine`, timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            black_box(routine());
        });
    }

    /// Like [`Bencher::iter`] but drops the (possibly large) output outside
    /// the timed section. The shim times the call including the drop — the
    /// distinction only matters for criterion's statistics.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            black_box(routine());
        });
    }

    /// Batched measurement: `setup` runs untimed before each `routine` call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: a few setup+routine cycles.
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let per_sample = self.measurement / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let mut iters = 0u64;
            let mut elapsed = Duration::ZERO;
            while elapsed < per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed();
                iters += 1;
                if iters >= 1_000_000 {
                    break;
                }
            }
            if iters > 0 {
                self.samples_ns
                    .push(elapsed.as_nanos() as f64 / iters as f64);
            }
        }
    }

    fn run(&mut self, mut once: impl FnMut()) {
        // Warm-up phase, also used to size iteration batches.
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            once();
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let per_sample = self.measurement / self.sample_size as u32;
        let batch = ((per_sample.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64).max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                once();
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, group: &str, id: &str) -> Option<BenchResult> {
        if self.samples_ns.is_empty() {
            println!("  {group}/{id}: no samples");
            return None;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {group}/{id}: mean {} (min {}, max {}) over {} samples",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            self.samples_ns.len()
        );
        Some(BenchResult {
            group: group.to_string(),
            id: id.to_string(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: self.samples_ns.len(),
        })
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (shim ignores it).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(1), &1u64, |b, &x| {
            b.iter(|| {
                count = count.wrapping_add(x);
                count
            })
        });
        g.finish();
        c.final_summary();
        assert!(count > 0);
    }
}
