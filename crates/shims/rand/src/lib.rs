//! Offline stand-in for `rand` 0.8: a deterministic splitmix64/xoshiro256++
//! generator behind the `Rng`/`SeedableRng` API subset the workspace uses
//! (`seed_from_u64`, `gen`, `gen_bool`, `gen_range` over integer ranges).
//!
//! Determinism matters more than statistical quality here: every test and
//! bench seeds explicitly, so runs are reproducible.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (subset of rand's `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, 53-bit precision.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, usize, i8, i16, i32, i64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64 —
    /// stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0..=5usize);
            assert!(u <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
