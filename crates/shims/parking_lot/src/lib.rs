//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the subset of the API this workspace uses: non-poisoning
//! `Mutex`/`RwLock` whose lock methods return guards directly. Poisoned
//! locks (a panic while holding the guard) are recovered by taking the
//! inner value, which is parking_lot's behaviour (it has no poisoning).

use std::sync::{self, TryLockError};

/// Non-poisoning mutex with the `parking_lot::Mutex` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
