//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace never serializes through serde (see the `serde` shim), so
//! deriving `Serialize`/`Deserialize` expands to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
