//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace actually serializes through serde (the wire codec in `wdl-net`
//! is hand-rolled). The derives scattered through the tree only need to
//! *compile*, so this shim provides the trait surface they reference and a
//! pair of no-op derive macros.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Minimal `serde::Serializer` surface.
pub trait Serializer: Sized {
    /// Successful output type.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// Minimal `serde::Deserializer` surface.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error;
    /// Deserializes an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}
