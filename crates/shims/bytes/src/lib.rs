//! Offline stand-in for `bytes`: the little-endian put/get subset the wire
//! codec uses, over plain `Vec<u8>` storage.

use std::ops::Deref;

/// Immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side trait mirroring `bytes::BufMut` (LE subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait mirroring `bytes::Buf` (LE subset). Implemented for
/// `&[u8]`, advancing the slice as values are read. Panics when the source
/// is too short, exactly like the real crate — callers bounds-check first.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Reads raw bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-5);
        buf.put_slice(b"hi");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r, b"hi");
    }
}
