//! Offline stand-in for `crossbeam`, providing the subset this workspace
//! uses: unbounded and bounded MPMC channels with cloneable senders *and*
//! receivers (built on `Mutex<VecDeque>` + `Condvar`), and scoped threads.

/// Scoped threads (subset of `crossbeam::thread`).
///
/// Delegates to `std::thread::scope`, which provides the same guarantee the
/// crossbeam original pioneered: spawned threads may borrow from the
/// enclosing stack frame because the scope joins them all before returning.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled on every pop so bounded senders blocked on a full
        /// queue can retry.
        space: Condvar,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity; the message comes back.
        Full(T),
        /// Every receiver is gone; the message comes back.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Every sender dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with nothing received.
        Timeout,
        /// Every sender dropped and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; cloneable (messages go to whichever receiver
    /// pops first).
    pub struct Receiver<T>(Arc<Inner<T>>);

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded channel holding at most `cap` messages.
    /// [`Sender::send`] blocks while full; [`Sender::try_send`] returns
    /// [`TrySendError::Full`] instead.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errors if every receiver is gone. On a
        /// bounded channel, blocks while the queue is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.0.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self.0.space.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: [`TrySendError::Full`] on a bounded channel
        /// at capacity, [`TrySendError::Disconnected`] when every receiver
        /// is gone — either way the message comes back to the caller.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.0.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake bounded senders blocked on a full queue so they
                // observe the disconnection.
                self.0.space.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pops a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => {
                    self.0.space.notify_one();
                    Ok(v)
                }
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }
    }

    /// Iterator over immediately available messages.
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_and_try_iter() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnects_both_ways() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_recv() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = bounded::<i32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn bounded_try_send_detects_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded::<i32>(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        // The sender is blocked on the full queue until this pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }
}
