//! Offline stand-in for `crossbeam`, providing the subset this workspace
//! uses: an unbounded MPMC channel with cloneable senders *and* receivers
//! (built on `Mutex<VecDeque>` + `Condvar`), and scoped threads.

/// Scoped threads (subset of `crossbeam::thread`).
///
/// Delegates to `std::thread::scope`, which provides the same guarantee the
/// crossbeam original pioneered: spawned threads may borrow from the
/// enclosing stack frame because the scope joins them all before returning.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

/// MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Every sender dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with nothing received.
        Timeout,
        /// Every sender dropped and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half; cloneable (messages go to whichever receiver
    /// pops first).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake blocked receivers so they observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errors if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        /// Pops a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }
    }

    /// Iterator over immediately available messages.
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_and_try_iter() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnects_both_ways() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_recv() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        h.join().unwrap();
    }
}
