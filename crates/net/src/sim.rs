//! # Deterministic distributed simulation (simnet)
//!
//! A FoundationDB-style seeded discrete-event simulator for the full peer
//! stack. One virtual clock, one event queue, one seeded generator: every
//! run is a pure function of `(scenario, fault plan, u64 seed)`, so any
//! failure a thousand-seed sweep finds replays exactly from its printed
//! seed.
//!
//! The pieces:
//!
//! * [`FaultPlan`] (+ [`LinkFaults`], [`Partition`]) — composable fault
//!   plans: drop, duplicate, reorder, latency distributions, deterministic
//!   every-nth drop, bidirectional/asymmetric partitions with heal, per
//!   link or globally.
//! * [`SimNet`] / [`SimEndpoint`] — the simulated network. Implements the
//!   same [`crate::Transport`] trait as the memory and TCP transports, and
//!   routes **every message through the real wire codec**, so wire-format
//!   bugs surface in simulation.
//! * [`SimRuntime`] — the scheduler: interleaves peer stages, deliveries,
//!   scripted mutations ([`SimOp`]) and crash/restart event-by-event.
//!   Crash/restart round-trips peers through the real snapshot
//!   persistence path. With [`SimConfig::sessions`] every peer runs
//!   behind the reliable session layer ([`SimTransport`]), its timers on
//!   the virtual clock.
//! * [`oracle`] — the convergence oracle grading faulty runs against a
//!   fault-free reference (universe membership, subset of the lossless
//!   outcome, eventual equality once faults heal).
//!
//! See the README's "Simulation testing" section for the seed-replay
//! workflow, and `tests/sim_conformance.rs` for the seed-sweep suite.

mod fault;
mod hub;
pub mod oracle;
mod runtime;

pub use fault::{FaultPlan, LinkFaults, Partition};
pub use hub::{SimCounters, SimEndpoint, SimNet, SimOp};
pub use runtime::{
    CrashPersistence, SimConfig, SimReport, SimRuntime, SimTransport, SnapshotPersistence,
};
