//! Seeded chaos proxy for framed TCP connections.
//!
//! Sits between two [`crate::tcp::TcpEndpoint`]s on loopback and
//! misbehaves on purpose: it understands the `u32`-LE length-prefixed
//! frame format, so it can drop whole frames, delay them, **sever**
//! connections between frames, or **split** a frame — forward half the
//! bytes, then cut the wire mid-frame. Every decision comes from a
//! `StdRng` seeded per connection from [`ChaosConfig::seed`], so a failing
//! run replays from its printed seed.
//!
//! This is the real-socket counterpart of [`crate::sim`]'s fault plans:
//! the simulator proves the session protocol converges under an abstract
//! lossy network; the proxy proves the same stack survives actual kernel
//! sockets dying underneath it — torn frames, half-open connections, and
//! redials included.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest frame the proxy will buffer (matches the transport's limit).
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Fault probabilities and the seed they draw from. All probabilities are
/// per *frame*; `0.0` everywhere makes the proxy a transparent relay.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Root seed; each accepted connection derives its own `StdRng` from
    /// this and the connection ordinal.
    pub seed: u64,
    /// Probability a frame is silently discarded.
    pub drop_prob: f64,
    /// Probability a frame is held for a random delay before forwarding.
    pub delay_prob: f64,
    /// Upper bound (milliseconds, inclusive) for a delayed frame.
    pub max_delay_ms: u64,
    /// Probability the connection is cut cleanly *between* frames.
    pub sever_prob: f64,
    /// Probability a frame is torn: the length prefix and roughly half the
    /// body are forwarded, then the connection is cut mid-frame.
    pub split_prob: f64,
}

impl ChaosConfig {
    /// A transparent relay (no faults) for the given seed.
    pub fn lossless(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ms: 0,
            sever_prob: 0.0,
            split_prob: 0.0,
        }
    }

    /// A moderately hostile mix of every fault kind — the default profile
    /// used by the chaos conformance tests.
    pub fn hostile(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_prob: 0.10,
            delay_prob: 0.20,
            max_delay_ms: 15,
            sever_prob: 0.03,
            split_prob: 0.03,
        }
    }
}

/// Monotone fault counters, shared across every proxied connection.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Frames relayed intact.
    pub forwarded: AtomicU64,
    /// Frames silently discarded.
    pub dropped: AtomicU64,
    /// Frames held before forwarding.
    pub delayed: AtomicU64,
    /// Connections cut cleanly between frames.
    pub severed: AtomicU64,
    /// Frames torn mid-body (connection cut inside a frame).
    pub split: AtomicU64,
}

/// A loopback TCP proxy that forwards frames to a fixed upstream address,
/// injecting seeded faults. Point a sender's directory entry at
/// [`ChaosProxy::local_addr`] instead of the real peer.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback listener relaying to `target`.
    pub fn spawn(target: SocketAddr, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("wdl-chaos-accept".into())
            .spawn(move || accept_loop(listener, target, config, accept_stop, accept_stats))?;
        Ok(ChaosProxy {
            local_addr,
            stop,
            stats,
        })
    }

    /// The proxy's listening address (register this as the peer address).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Fault counters accumulated so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting and tears down pump threads. Called on drop.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    target: SocketAddr,
    config: ChaosConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
) {
    let mut ordinal: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((downstream, _)) => {
                ordinal += 1;
                // Distinct, reproducible stream per connection: severed
                // links redial and get the *next* ordinal, so a replayed
                // run makes the same decisions in the same order.
                let conn_seed = config.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let cfg = config.clone();
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let _ = std::thread::Builder::new()
                    .name("wdl-chaos-pump".into())
                    .spawn(move || pump(downstream, target, cfg, conn_seed, stop, stats));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Relays frames from one downstream connection to a fresh upstream
/// connection, rolling each fault per frame. Returning drops both sockets,
/// which is exactly how the faults that cut the wire are realized.
fn pump(
    mut downstream: TcpStream,
    target: SocketAddr,
    config: ChaosConfig,
    conn_seed: u64,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
) {
    let mut rng = StdRng::seed_from_u64(conn_seed);
    let Some(mut upstream) = connect_upstream(target, &stop) else {
        return;
    };
    if downstream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut len_buf = [0u8; 4];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match downstream.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return, // sender closed or redialed
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return;
        }
        let mut frame = vec![0u8; len as usize];
        if read_body(&mut downstream, &mut frame, &stop).is_err() {
            return;
        }

        if config.drop_prob > 0.0 && rng.gen_bool(config.drop_prob) {
            stats.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if config.sever_prob > 0.0 && rng.gen_bool(config.sever_prob) {
            stats.severed.fetch_add(1, Ordering::Relaxed);
            return; // clean cut between frames: this frame and the conn die
        }
        if config.split_prob > 0.0 && rng.gen_bool(config.split_prob) && !frame.is_empty() {
            // Tear the frame: length prefix plus half the body, then cut.
            // The receiver sees EOF mid-frame and discards the connection.
            stats.split.fetch_add(1, Ordering::Relaxed);
            let half = frame.len() / 2;
            let _ = upstream.write_all(&len_buf);
            let _ = upstream.write_all(&frame[..half]);
            let _ = upstream.flush();
            return;
        }
        if config.delay_prob > 0.0 && rng.gen_bool(config.delay_prob) {
            stats.delayed.fetch_add(1, Ordering::Relaxed);
            let ms = rng.gen_range(1..=config.max_delay_ms.max(1));
            std::thread::sleep(Duration::from_millis(ms));
        }
        if upstream.write_all(&len_buf).is_err() || upstream.write_all(&frame).is_err() {
            return; // receiver gone; sender will redial through us
        }
        stats.forwarded.fetch_add(1, Ordering::Relaxed);
    }
}

/// Dials the upstream with brief retries — the receiver may be mid-restart
/// when a redialed connection lands on the proxy.
fn connect_upstream(target: SocketAddr, stop: &AtomicBool) -> Option<TcpStream> {
    for _ in 0..100 {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        match TcpStream::connect(target) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Some(s);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    None
}

fn read_body(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> std::io::Result<()> {
    let mut read = 0;
    while read < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "shutdown",
            ));
        }
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "torn frame from downstream",
                ))
            }
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpEndpoint;
    use crate::Transport;
    use wdl_core::{FactKind, Message, Payload, WFact};
    use wdl_datalog::{Symbol, Value};

    fn fact_msg(from: &str, to: &str, v: i64) -> Message {
        Message::new(
            Symbol::intern(from),
            Symbol::intern(to),
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![WFact::new("r", to, vec![Value::from(v)])],
                retractions: vec![],
            },
        )
    }

    fn drain_until(ep: &mut TcpEndpoint, want: usize, ms: u64) -> Vec<Message> {
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_millis(ms);
        while got.len() < want && std::time::Instant::now() < deadline {
            got.extend(ep.drain());
            std::thread::sleep(Duration::from_millis(2));
        }
        got
    }

    #[test]
    fn lossless_proxy_is_transparent() {
        let mut a = TcpEndpoint::bind("ca", "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind("cb", "127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(b.local_addr(), ChaosConfig::lossless(7)).unwrap();
        a.register("cb", proxy.local_addr());
        for v in 0..5 {
            a.send(fact_msg("ca", "cb", v)).unwrap();
        }
        let got = drain_until(&mut b, 5, 3000);
        assert_eq!(got.len(), 5);
        assert_eq!(proxy.stats().forwarded.load(Ordering::Relaxed), 5);
        assert_eq!(proxy.stats().dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dropping_proxy_loses_frames_but_not_the_link() {
        let mut a = TcpEndpoint::bind("da", "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind("db", "127.0.0.1:0").unwrap();
        let config = ChaosConfig {
            drop_prob: 0.5,
            ..ChaosConfig::lossless(42)
        };
        let proxy = ChaosProxy::spawn(b.local_addr(), config).unwrap();
        a.register("db", proxy.local_addr());
        for v in 0..40 {
            a.send(fact_msg("da", "db", v)).unwrap();
        }
        // Half the frames vanish (seeded), the rest arrive in order.
        let got = drain_until(&mut b, 1, 3000);
        assert!(!got.is_empty());
        let stats = proxy.stats();
        assert!(stats.dropped.load(Ordering::Relaxed) > 0);
        assert_eq!(
            stats.forwarded.load(Ordering::Relaxed) + stats.dropped.load(Ordering::Relaxed),
            40
        );
    }

    #[test]
    fn severed_connection_recovers_on_redial() {
        let mut a = TcpEndpoint::bind("sa", "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind("sb", "127.0.0.1:0").unwrap();
        let config = ChaosConfig {
            sever_prob: 1.0, // every frame severs the connection
            ..ChaosConfig::lossless(3)
        };
        let proxy = ChaosProxy::spawn(b.local_addr(), config).unwrap();
        a.register("sb", proxy.local_addr());
        // Each send loses its frame and kills the conn; the endpoint's
        // staleness probe redials through the proxy every time, so sends
        // keep succeeding even though nothing gets through.
        for round in 0..5 {
            std::thread::sleep(Duration::from_millis(60));
            a.send(fact_msg("sa", "sb", round)).unwrap();
        }
        // Every round severed a fresh proxied connection, yet every send
        // succeeded — the endpoint kept redialing through the proxy.
        assert!(proxy.stats().severed.load(Ordering::Relaxed) >= 2);
        let _ = b.drain();
    }
}
