//! # Reliable delivery sessions
//!
//! WebdamLog's convergence argument assumes every delta eventually
//! arrives. Raw transports do not promise that: the simulator drops and
//! reorders on purpose, TCP connections die, peers crash mid-flight. This
//! module wraps any [`crate::Transport`] in a per-link *session* that
//! upgrades best-effort links to exactly-once, in-order application
//! delivery:
//!
//! * **Incarnation-tagged frames** — every frame carries the sender's
//!   incarnation (a number that grows across restarts). There is no
//!   blocking handshake: the first frame from an unknown
//!   `(peer, incarnation)` establishes the inbound session, and a jump in
//!   incarnation is the restart signal
//!   ([`crate::TransportEvent::PeerRestarted`]).
//! * **Sequencing + acks** — data frames carry monotone sequence numbers;
//!   receivers acknowledge with a cumulative watermark plus a selective
//!   list of out-of-order frames already buffered.
//! * **Retransmission** — unacked frames retransmit under exponential
//!   backoff with jitter, capped so a down peer is probed indefinitely
//!   rather than forgotten.
//! * **Exactly-once delivery** — receivers deduplicate at or below the
//!   cumulative watermark and buffer above it, releasing frames to the
//!   application strictly in order.
//! * **Durability choreography** — acks advertise the *committed*
//!   watermark, advanced only at [`crate::Transport::commit_delivered`]
//!   after the application's group commit; watermark advances stream into
//!   the peer's durability sink (via [`crate::Transport::watermarks`] and
//!   [`wdl_core::Peer::note_session_watermark`]) so a crashed peer
//!   restores its dedup floor instead of re-applying — or silently
//!   losing — in-flight frames.
//! * **Liveness** — per-peer health ([`PeerHealth`]: `Up → Suspect →
//!   Down`) driven by silence while traffic is outstanding, surfaced as
//!   [`crate::TransportEvent`]s. Suspicion triggers a `Hello` probe;
//!   `Down` keeps probing at the capped backoff (recovery is detected by
//!   any frame coming back).
//! * **Backpressure** — a bounded per-link outbox; overflow surfaces as
//!   the recoverable [`crate::NetError::PeerUnreachable`] so the caller
//!   defers and retries instead of blocking or aborting.
//!
//! A restart invalidates *derived-facts* diffs queued toward the
//! restarted peer (their base state is gone — replaying an old diff could
//! resurrect retracted derivations). Those frames are blanked in place
//! (payload replaced with an empty derived diff, sequence number kept, so
//! the cumulative ack can still advance) and the application re-sends the
//! full derived state after [`wdl_core::Peer::resync_target`]. Persistent
//! facts, delegations and revocations are idempotent set operations over
//! durable state, so their queued frames replay as-is.
//!
//! See the README's "Reliable delivery" section for the protocol
//! walkthrough and parameter table.

mod endpoint;
mod frame;
mod link;

pub use endpoint::{SessionEndpoint, SessionStats};
pub use link::PeerHealth;

/// A monotone microsecond clock driving retransmission and liveness.
///
/// Real deployments use [`WallClock`]; the simulator injects its virtual
/// clock so timer behavior is deterministic and seed-replayable.
pub trait Clock: Send {
    /// Microseconds since an arbitrary fixed origin.
    fn now_micros(&self) -> u64;
}

/// Wall time measured from construction.
pub struct WallClock {
    start: std::time::Instant,
}

impl WallClock {
    /// A clock starting at zero now.
    pub fn new() -> WallClock {
        WallClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// Tuning knobs for the session layer.
///
/// The defaults are sized for the simulator's virtual microsecond
/// timescale and for loopback TCP; wide-area deployments would scale the
/// four time fields up together.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// First retransmission delay; doubles per attempt (capped).
    pub backoff_base_micros: u64,
    /// Retransmission delay ceiling — also the probing interval for a
    /// [`PeerHealth::Down`] peer.
    pub backoff_cap_micros: u64,
    /// Silence (with traffic outstanding) before a peer turns
    /// [`PeerHealth::Suspect`] and gets probed.
    pub suspect_after_micros: u64,
    /// Silence (with traffic outstanding) before a peer turns
    /// [`PeerHealth::Down`].
    pub down_after_micros: u64,
    /// Per-link bound on unacknowledged frames; sends beyond it return
    /// [`crate::NetError::PeerUnreachable`] until acks free space.
    pub max_unacked: usize,
    /// Send periodic `Hello` heartbeats on idle established links (off by
    /// default: the simulator probes only while work is outstanding so
    /// quiescence detection stays meaningful; real TCP deployments can
    /// enable it to detect silent peer loss early).
    pub idle_heartbeats: bool,
    /// Heartbeat period when `idle_heartbeats` is on.
    pub heartbeat_every_micros: u64,
    /// Mixed into the jitter RNG seed (together with the peer name) so
    /// simulation runs are a pure function of their seed.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            backoff_base_micros: 800,
            backoff_cap_micros: 30_000,
            suspect_after_micros: 8_000,
            down_after_micros: 30_000,
            max_unacked: 1024,
            idle_heartbeats: false,
            heartbeat_every_micros: 50_000,
            seed: 0,
        }
    }
}
