//! Deterministic in-process network.
//!
//! Models the demo's LAN (Figure 2) inside one process: every peer gets an
//! endpoint backed by an unbounded channel, a shared hub routes by peer
//! name. Delivery is FIFO per sender-receiver pair and lossless by default;
//! a deterministic fault plan (`drop_every_nth`) supports failure-injection
//! tests without randomness.

use crate::{NetError, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wdl_core::Message;
use wdl_datalog::Symbol;

/// Deterministic fault plan for the in-memory network.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// If `Some(n)`, every n-th send (1-based count) is silently dropped.
    pub drop_every_nth: Option<u64>,
}

#[derive(Default)]
struct Hub {
    channels: HashMap<Symbol, Sender<Message>>,
    faults: FaultPlan,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

/// A shared in-process network hub.
#[derive(Clone, Default)]
pub struct InMemoryNetwork {
    hub: Arc<Mutex<Hub>>,
}

impl InMemoryNetwork {
    /// New, fault-free network.
    pub fn new() -> InMemoryNetwork {
        InMemoryNetwork::default()
    }

    /// Creates (and registers) the endpoint for `peer`.
    ///
    /// Registering the same peer twice is a recoverable
    /// [`NetError::DuplicateEndpoint`] (the existing endpoint keeps
    /// working).
    pub fn endpoint(&self, peer: impl Into<Symbol>) -> Result<MemoryEndpoint, NetError> {
        let peer = peer.into();
        let mut hub = self.hub.lock();
        if hub.channels.contains_key(&peer) {
            return Err(NetError::DuplicateEndpoint(peer.to_string()));
        }
        let (tx, rx) = unbounded();
        hub.channels.insert(peer, tx);
        Ok(MemoryEndpoint {
            name: peer,
            hub: Arc::clone(&self.hub),
            rx,
        })
    }

    /// Installs a fault plan (applies to subsequent sends).
    pub fn set_faults(&self, plan: FaultPlan) {
        self.hub.lock().faults = plan;
    }

    /// `(sent, delivered, dropped)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        let hub = self.hub.lock();
        (hub.sent, hub.delivered, hub.dropped)
    }
}

/// One peer's endpoint on an [`InMemoryNetwork`].
pub struct MemoryEndpoint {
    name: Symbol,
    hub: Arc<Mutex<Hub>>,
    rx: Receiver<Message>,
}

impl Transport for MemoryEndpoint {
    fn peer_name(&self) -> Symbol {
        self.name
    }

    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        let mut hub = self.hub.lock();
        hub.sent += 1;
        if let Some(n) = hub.faults.drop_every_nth {
            if n > 0 && hub.sent.is_multiple_of(n) {
                hub.dropped += 1;
                return Ok(());
            }
        }
        match hub.channels.get(&msg.to) {
            Some(tx) => {
                // Receiver may have been dropped; count as undeliverable.
                if tx.send(msg).is_ok() {
                    hub.delivered += 1;
                } else {
                    hub.dropped += 1;
                }
                Ok(())
            }
            None => Err(NetError::UnknownPeer(msg.to.to_string())),
        }
    }

    fn drain(&mut self) -> Vec<Message> {
        self.rx.try_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::{Payload, WFact};
    use wdl_datalog::Value;

    fn msg(from: &str, to: &str, v: i64) -> Message {
        Message::new(
            Symbol::intern(from),
            Symbol::intern(to),
            Payload::Facts {
                kind: wdl_core::FactKind::Persistent,
                additions: vec![WFact::new("r", to, vec![Value::from(v)])],
                retractions: vec![],
            },
        )
    }

    #[test]
    fn point_to_point_delivery_is_fifo() {
        let net = InMemoryNetwork::new();
        let mut a = net.endpoint("a").unwrap();
        let mut b = net.endpoint("b").unwrap();
        for i in 0..10 {
            a.send(msg("a", "b", i)).unwrap();
        }
        let got = b.drain();
        assert_eq!(got.len(), 10);
        for (i, m) in got.iter().enumerate() {
            if let Payload::Facts { additions, .. } = &m.payload {
                assert_eq!(additions[0].tuple[0], Value::from(i as i64));
            }
        }
        assert!(b.drain().is_empty(), "drain empties the queue");
    }

    #[test]
    fn unknown_peer_errors() {
        let net = InMemoryNetwork::new();
        let mut a = net.endpoint("a").unwrap();
        assert!(matches!(
            a.send(msg("a", "ghost", 0)),
            Err(NetError::UnknownPeer(_))
        ));
    }

    #[test]
    fn duplicate_endpoint_is_a_recoverable_error() {
        let net = InMemoryNetwork::new();
        let _x = net.endpoint("dup").unwrap();
        assert!(matches!(
            net.endpoint("dup"),
            Err(NetError::DuplicateEndpoint(_))
        ));
        // The original registration survives the failed attempt.
        let mut b = net.endpoint("dup2").unwrap();
        b.send(msg("dup2", "dup", 1)).unwrap();
        assert_eq!(_x.hub.lock().delivered, 1);
    }

    #[test]
    fn fault_plan_drops_deterministically() {
        let net = InMemoryNetwork::new();
        net.set_faults(FaultPlan {
            drop_every_nth: Some(3),
        });
        let mut a = net.endpoint("a").unwrap();
        let mut b = net.endpoint("b").unwrap();
        for i in 0..9 {
            a.send(msg("a", "b", i)).unwrap();
        }
        assert_eq!(b.drain().len(), 6); // every 3rd of 9 dropped
        let (sent, delivered, dropped) = net.counters();
        assert_eq!((sent, delivered, dropped), (9, 6, 3));
    }

    #[test]
    fn cross_thread_delivery() {
        let net = InMemoryNetwork::new();
        let mut a = net.endpoint("a").unwrap();
        let mut b = net.endpoint("b").unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                a.send(msg("a", "b", i)).unwrap();
            }
        });
        t.join().unwrap();
        assert_eq!(b.drain().len(), 100);
    }
}
