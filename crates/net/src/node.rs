//! Glue between a [`Peer`] and a [`Transport`]: the free-running peer node.
//!
//! The in-process [`wdl_core::runtime::LocalRuntime`] drives stages in
//! lockstep; a [`PeerNode`] instead lets every peer run at its own pace —
//! the deployment model of the demo, where laptops and the cloud peer tick
//! independently.

use crate::{NetError, Transport, TransportEvent};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wdl_core::{Message, Peer, StageStats, WdlError};

/// Error from driving a node.
#[derive(Debug)]
pub enum NodeError {
    /// Engine failure.
    Engine(WdlError),
    /// Transport failure.
    Net(NetError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Engine(e) => write!(f, "engine: {e}"),
            NodeError::Net(e) => write!(f, "net: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<WdlError> for NodeError {
    fn from(e: WdlError) -> Self {
        NodeError::Engine(e)
    }
}

impl From<NetError> for NodeError {
    fn from(e: NetError) -> Self {
        NodeError::Net(e)
    }
}

/// Result of a single [`PeerNode::step`].
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Messages received and enqueued this step.
    pub received: usize,
    /// Messages sent this step.
    pub sent: usize,
    /// Messages whose target the transport does not know.
    pub undeliverable: usize,
    /// Messages deferred because the target is currently unreachable
    /// (backpressure or a down link); retried at the next step.
    pub deferred: usize,
    /// Whether the stage observed/produced any change.
    pub changed: bool,
    /// The stage's counters.
    pub stats: StageStats,
}

/// A peer bound to a transport endpoint.
pub struct PeerNode<T: Transport> {
    peer: Peer,
    transport: T,
    /// Messages whose send came back [`NetError::PeerUnreachable`];
    /// retried at the start of every step so backpressure degrades to
    /// deferral instead of loss.
    deferred: Vec<Message>,
}

impl<T: Transport> PeerNode<T> {
    /// Binds `peer` to `transport`.
    ///
    /// # Panics
    /// If the transport's peer name differs from the peer's name.
    pub fn new(peer: Peer, transport: T) -> PeerNode<T> {
        assert_eq!(
            peer.name(),
            transport.peer_name(),
            "transport endpoint belongs to a different peer"
        );
        PeerNode {
            peer,
            transport,
            deferred: Vec::new(),
        }
    }

    /// The wrapped peer.
    pub fn peer(&self) -> &Peer {
        &self.peer
    }

    /// The wrapped peer, mutably (insert facts, manage rules, approve
    /// delegations).
    pub fn peer_mut(&mut self) -> &mut Peer {
        &mut self.peer
    }

    /// The transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// One full cycle: retry deferred sends → drain → react to transport
    /// events → persist session watermarks → stage (the durability group
    /// commit) → commit delivery to the session layer → send.
    ///
    /// The ordering is the crash-safety choreography of the session
    /// layer: watermarks enter the peer *before* the stage's group
    /// commit (so they land in the same commit as the facts they cover)
    /// and [`Transport::commit_delivered`] runs *after* it (so acks
    /// never advertise deliveries that are not yet durable).
    pub fn step(&mut self) -> Result<StepReport, NodeError> {
        let mut report = StepReport::default();
        for msg in std::mem::take(&mut self.deferred) {
            self.dispatch(msg, &mut report)?;
        }
        for msg in self.transport.drain() {
            self.peer.enqueue(msg);
            report.received += 1;
        }
        for ev in self.transport.poll_events() {
            match ev {
                TransportEvent::PeerRestarted(remote) => {
                    // The remote lost its transient derived
                    // contributions: forget what we already sent so the
                    // next stage emits the full derived state again.
                    self.peer.resync_target(remote);
                }
                TransportEvent::Suspect(remote) => {
                    self.peer.trace_session_health(remote, 1);
                }
                TransportEvent::Down(remote) => {
                    self.peer.trace_session_health(remote, 2);
                }
            }
        }
        for (to, count) in self.transport.take_retransmit_counts() {
            self.peer.trace_session_retransmits(to, count);
        }
        for note in self.transport.watermarks() {
            self.peer
                .note_session_watermark(note.remote, note.dir, note.inc, note.seq);
        }
        let out = self.peer.run_stage()?;
        report.changed = out.changed;
        report.stats = out.stats;
        self.transport.commit_delivered();
        for msg in out.messages {
            self.dispatch(msg, &mut report)?;
        }
        Ok(report)
    }

    fn dispatch(&mut self, msg: Message, report: &mut StepReport) -> Result<(), NodeError> {
        match self.transport.send(msg.clone()) {
            Ok(()) => report.sent += 1,
            Err(NetError::UnknownPeer(_)) => report.undeliverable += 1,
            Err(NetError::PeerUnreachable(_)) => {
                self.deferred.push(msg);
                report.deferred += 1;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    /// Steps until `idle_steps` consecutive quiet steps (no input, no
    /// change, nothing sent or deferred, no session work in flight) or
    /// until `max_steps` is exhausted. Returns `true` on quiescence.
    pub fn run_until_quiet(
        &mut self,
        max_steps: usize,
        idle_steps: usize,
    ) -> Result<bool, NodeError> {
        let mut quiet = 0;
        for _ in 0..max_steps {
            let r = self.step()?;
            if !r.changed
                && r.received == 0
                && r.sent == 0
                && r.deferred == 0
                && self.transport.pending_work() == 0
            {
                quiet += 1;
                if quiet >= idle_steps {
                    return Ok(true);
                }
            } else {
                quiet = 0;
            }
        }
        Ok(false)
    }

    /// Unbinds, returning the peer and the transport.
    pub fn into_parts(self) -> (Peer, T) {
        (self.peer, self.transport)
    }
}

/// Handle to a peer node running on its own thread.
pub struct NodeHandle<T: Transport + 'static> {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<Result<PeerNode<T>, NodeError>>,
}

impl<T: Transport + 'static> NodeHandle<T> {
    /// Spawns `node` on a thread, stepping every `interval`.
    pub fn spawn(mut node: PeerNode<T>, interval: Duration) -> NodeHandle<T> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let name = node.peer().name().to_string();
        let join = std::thread::Builder::new()
            .name(format!("wdl-node-{name}"))
            .spawn(move || {
                while !thread_stop.load(Ordering::SeqCst) {
                    node.step()?;
                    std::thread::sleep(interval);
                }
                Ok(node)
            })
            .expect("spawn node thread");
        NodeHandle { stop, join }
    }

    /// Signals the thread to stop and returns the node.
    pub fn stop(self) -> Result<PeerNode<T>, NodeError> {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().expect("node thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryNetwork;
    use wdl_core::acl::UntrustedPolicy;
    use wdl_core::{RelationKind, WRule};
    use wdl_datalog::Value;

    fn open_peer(name: &str) -> Peer {
        let mut p = Peer::new(name);
        p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
        p
    }

    #[test]
    #[should_panic(expected = "different peer")]
    fn mismatched_names_panic() {
        let net = InMemoryNetwork::new();
        let ep = net.endpoint("x").unwrap();
        let _ = PeerNode::new(Peer::new("y"), ep);
    }

    /// The paper's delegation scenario over the transport abstraction
    /// (manual stepping, deterministic).
    #[test]
    fn delegation_over_memory_transport() {
        let net = InMemoryNetwork::new();
        let mut jules = PeerNode::new(open_peer("jules"), net.endpoint("jules").unwrap());
        let mut emilien = PeerNode::new(open_peer("emilien"), net.endpoint("emilien").unwrap());

        jules
            .peer_mut()
            .declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        jules
            .peer_mut()
            .add_rule(WRule::example_attendee_pictures("jules"))
            .unwrap();
        jules
            .peer_mut()
            .insert_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        emilien
            .peer_mut()
            .insert_local(
                "pictures",
                vec![
                    Value::from(1),
                    Value::from("sea.jpg"),
                    Value::from("emilien"),
                    Value::bytes(&[7]),
                ],
            )
            .unwrap();

        for _ in 0..8 {
            jules.step().unwrap();
            emilien.step().unwrap();
        }
        assert_eq!(
            jules.peer().relation_facts("attendeePictures").len(),
            1,
            "picture flowed through delegation over the transport"
        );
    }

    /// Free-running threaded nodes converge without lockstep scheduling.
    #[test]
    fn threaded_nodes_converge() {
        let net = InMemoryNetwork::new();
        let mut jules = PeerNode::new(open_peer("t-jules"), net.endpoint("t-jules").unwrap());
        let mut emilien = PeerNode::new(open_peer("t-emilien"), net.endpoint("t-emilien").unwrap());

        jules
            .peer_mut()
            .declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        jules
            .peer_mut()
            .add_rule(WRule::example_attendee_pictures("t-jules"))
            .unwrap();
        jules
            .peer_mut()
            .insert_local("selectedAttendee", vec![Value::from("t-emilien")])
            .unwrap();
        emilien
            .peer_mut()
            .insert_local(
                "pictures",
                vec![
                    Value::from(2),
                    Value::from("b.jpg"),
                    Value::from("t-emilien"),
                    Value::bytes(&[8]),
                ],
            )
            .unwrap();

        let hj = NodeHandle::spawn(jules, Duration::from_millis(2));
        let he = NodeHandle::spawn(emilien, Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(300));
        let jules = hj.stop().unwrap();
        let _ = he.stop().unwrap();
        assert_eq!(jules.peer().relation_facts("attendeePictures").len(), 1);
    }

    #[test]
    fn run_until_quiet_detects_quiescence() {
        let net = InMemoryNetwork::new();
        let mut solo = PeerNode::new(open_peer("solo-q"), net.endpoint("solo-q").unwrap());
        solo.peer_mut()
            .insert_local("r", vec![Value::from(1)])
            .unwrap();
        assert!(solo.run_until_quiet(32, 2).unwrap());
    }
}
