//! The transport abstraction peers run on.

use crate::NetError;
use wdl_core::Message;
use wdl_datalog::Symbol;

/// Out-of-band condition a transport observed about a remote peer.
///
/// Raw transports never emit these; the session layer
/// ([`crate::session::SessionEndpoint`]) reports restarts and liveness
/// transitions through them so the driving loop can react (a restart
/// triggers [`wdl_core::Peer::resync_target`], health changes feed
/// tracing).
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum TransportEvent {
    /// The remote came back with a higher incarnation: it crashed (or was
    /// restarted) and lost its transient state. The application should
    /// re-send anything it summarizes as "already sent" to that peer.
    PeerRestarted(Symbol),
    /// No acknowledgement progress from the remote for the configured
    /// suspicion window while traffic was outstanding.
    Suspect(Symbol),
    /// The remote stayed silent past the down threshold. Retransmission
    /// continues at a capped probing interval; the peer is not forgotten.
    Down(Symbol),
}

/// A durable session watermark the transport wants persisted.
///
/// Direction `dir` 0 = cumulative seq *delivered from* `remote` (dedup
/// floor after recovery), 1 = cumulative seq *acked by* `remote` (resend
/// ceiling after recovery). `inc` is the incarnation the watermark counts
/// under. See [`wdl_core::Peer::note_session_watermark`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct WatermarkNote {
    /// The remote peer the watermark concerns.
    pub remote: Symbol,
    /// 0 = delivered-from, 1 = acked-by.
    pub dir: u8,
    /// Incarnation the sequence numbers count under.
    pub inc: u64,
    /// Cumulative sequence number.
    pub seq: u64,
}

/// A bidirectional message endpoint for one peer.
///
/// Implementations: [`crate::memory::MemoryEndpoint`] (deterministic,
/// in-process), [`crate::tcp::TcpEndpoint`] (framed TCP), and
/// [`crate::session::SessionEndpoint`], which wraps either with reliable
/// delivery. The WebdamLog stage loop is transport-agnostic:
/// [`crate::node::PeerNode::step`] drains the endpoint, runs a stage, and
/// sends the produced messages.
///
/// The event/watermark/commit methods have no-op defaults so raw
/// transports stay one-method-pair simple; only the session layer
/// overrides them.
pub trait Transport: Send {
    /// The peer this endpoint belongs to.
    fn peer_name(&self) -> Symbol;

    /// Sends a message toward `msg.to`. Implementations may buffer;
    /// delivery is asynchronous.
    fn send(&mut self, msg: Message) -> Result<(), NetError>;

    /// Drains every message that has arrived since the last call
    /// (non-blocking).
    fn drain(&mut self) -> Vec<Message>;

    /// Takes the out-of-band events observed since the last call.
    fn poll_events(&mut self) -> Vec<TransportEvent> {
        Vec::new()
    }

    /// How much protocol work is still in flight (unacked frames, unsent
    /// acks, out-of-order buffers). Raw transports report 0; quiescence
    /// checks must not declare a sessioned peer idle while this is
    /// non-zero.
    fn pending_work(&self) -> usize {
        0
    }

    /// Watermarks that advanced since the last call and should be handed
    /// to [`wdl_core::Peer::note_session_watermark`] *before* the next
    /// durability group commit.
    fn watermarks(&mut self) -> Vec<WatermarkNote> {
        Vec::new()
    }

    /// Called after the application has durably committed everything
    /// drained so far. The session layer advances its advertised
    /// cumulative acks here — acks must never outrun durability, or a
    /// crash between delivery and commit loses acked data.
    fn commit_delivered(&mut self) {}

    /// Takes the per-remote counts of frames retransmitted since the
    /// last call (for the trace pipeline). Raw transports report none.
    fn take_retransmit_counts(&mut self) -> Vec<(Symbol, u64)> {
        Vec::new()
    }
}
