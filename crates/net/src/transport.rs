//! The transport abstraction peers run on.

use crate::NetError;
use wdl_core::Message;
use wdl_datalog::Symbol;

/// A bidirectional message endpoint for one peer.
///
/// Implementations: [`crate::memory::MemoryEndpoint`] (deterministic,
/// in-process) and [`crate::tcp::TcpEndpoint`] (framed TCP). The WebdamLog
/// stage loop is transport-agnostic: [`crate::node::PeerNode::step`] drains
/// the endpoint, runs a stage, and sends the produced messages.
pub trait Transport: Send {
    /// The peer this endpoint belongs to.
    fn peer_name(&self) -> Symbol;

    /// Sends a message toward `msg.to`. Implementations may buffer;
    /// delivery is asynchronous.
    fn send(&mut self, msg: Message) -> Result<(), NetError>;

    /// Drains every message that has arrived since the last call
    /// (non-blocking).
    fn drain(&mut self) -> Vec<Message>;
}
