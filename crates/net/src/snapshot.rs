//! Binary snapshots of durable peer state.
//!
//! Users "launch their customized peers on their machines with their own
//! personal data" (paper §1) — so a peer must survive process restarts.
//! [`save`]/[`load`] serialize a [`PeerState`] with the same hand-rolled
//! little-endian conventions as the wire codec, and [`save_to_file`]/
//! [`load_from_file`] persist it on disk.
//!
//! The snapshot captures schema, extensional facts, rules, installed
//! delegations, trust settings and relation grants; transient per-stage
//! state is rebuilt on the first stage after a restart (see
//! `wdl_core::PeerState`).

use crate::codec::{put_fact, put_rule, put_symbol, Reader};
use crate::NetError;
use bytes::{BufMut, Bytes, BytesMut};
use wdl_core::acl::UntrustedPolicy;
use wdl_core::grants::GrantExport;
use wdl_core::{Delegation, Peer, PeerState, RelationDecl, RelationGrants, RelationKind};
use wdl_datalog::Symbol;

/// Snapshot format version. v2 appended the session-watermark section
/// (reliable-delivery layer); v1 snapshots are rejected — every writer in
/// this workspace produces v2, and downgrade paths do not exist.
pub const SNAPSHOT_VERSION: u8 = 2;

/// Serializes a peer's durable state.
pub fn save(peer: &Peer) -> Bytes {
    save_state(&peer.export_state())
}

/// Serializes an already-exported [`PeerState`]. The storage engine uses
/// this to write its *meta* checkpoint (a `PeerState` with the facts left
/// empty — facts live in per-relation segment files instead).
pub fn save_state(state: &PeerState) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_u8(SNAPSHOT_VERSION);
    put_symbol(&mut buf, state.name);

    buf.put_u32_le(state.decls.len() as u32);
    for d in &state.decls {
        put_symbol(&mut buf, d.rel);
        buf.put_u32_le(d.arity as u32);
        buf.put_u8(match d.kind {
            RelationKind::Extensional => 0,
            RelationKind::Intensional => 1,
        });
    }

    buf.put_u32_le(state.facts.len() as u32);
    for f in &state.facts {
        put_fact(&mut buf, f);
    }

    buf.put_u32_le(state.rules.len() as u32);
    for r in &state.rules {
        put_rule(&mut buf, r);
    }

    buf.put_u32_le(state.delegated.len() as u32);
    for d in &state.delegated {
        crate::codec::put_delegation(&mut buf, d);
    }

    buf.put_u32_le(state.trusted.len() as u32);
    for t in &state.trusted {
        put_symbol(&mut buf, *t);
    }

    buf.put_u8(match state.untrusted_policy {
        UntrustedPolicy::Queue => 0,
        UntrustedPolicy::Accept => 1,
        UntrustedPolicy::Reject => 2,
    });

    let grants = state.grants.export();
    put_grant_entries(&mut buf, &grants.read);
    put_grant_entries(&mut buf, &grants.write);
    buf.put_u32_le(grants.declassified.len() as u32);
    for s in &grants.declassified {
        put_symbol(&mut buf, *s);
    }

    buf.put_u32_le(state.watermarks.len() as u32);
    for ((remote, dir), (inc, seq)) in &state.watermarks {
        put_symbol(&mut buf, *remote);
        buf.put_u8(*dir);
        buf.put_u64_le(*inc);
        buf.put_u64_le(*seq);
    }

    buf.freeze()
}

fn put_grant_entries(buf: &mut BytesMut, entries: &[(Symbol, Vec<Symbol>)]) {
    buf.put_u32_le(entries.len() as u32);
    for (rel, peers) in entries {
        put_symbol(buf, *rel);
        buf.put_u32_le(peers.len() as u32);
        for p in peers {
            put_symbol(buf, *p);
        }
    }
}

/// Deserializes a snapshot back into a runnable peer.
pub fn load(data: &[u8]) -> Result<Peer, NetError> {
    let state = load_state(data)?;
    Peer::import_state(state)
        .map_err(|e| NetError::Codec(format!("snapshot rejected by engine: {e}")))
}

/// Deserializes just the state (for inspection without instantiation).
pub fn load_state(data: &[u8]) -> Result<PeerState, NetError> {
    let mut r = Reader::new(data);
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(NetError::Codec(format!(
            "snapshot version mismatch: got {version}, expected {SNAPSHOT_VERSION}"
        )));
    }
    let name = r.symbol()?;

    let n = r.len()?;
    let mut decls = Vec::with_capacity(n);
    for _ in 0..n {
        let rel = r.symbol()?;
        let arity = r.u32()? as usize;
        let kind = match r.u8()? {
            0 => RelationKind::Extensional,
            1 => RelationKind::Intensional,
            t => return Err(NetError::Codec(format!("bad relation kind {t}"))),
        };
        decls.push(RelationDecl { rel, arity, kind });
    }

    let n = r.len()?;
    let mut facts = Vec::with_capacity(n);
    for _ in 0..n {
        facts.push(r.fact()?);
    }

    let n = r.len()?;
    let mut rules = Vec::with_capacity(n);
    for _ in 0..n {
        rules.push(r.rule()?);
    }

    let n = r.len()?;
    let mut delegated: Vec<Delegation> = Vec::with_capacity(n);
    for _ in 0..n {
        delegated.push(r.delegation()?);
    }

    let n = r.len()?;
    let mut trusted = Vec::with_capacity(n);
    for _ in 0..n {
        trusted.push(r.symbol()?);
    }

    let untrusted_policy = match r.u8()? {
        0 => UntrustedPolicy::Queue,
        1 => UntrustedPolicy::Accept,
        2 => UntrustedPolicy::Reject,
        t => return Err(NetError::Codec(format!("bad policy tag {t}"))),
    };

    let read = read_grant_entries(&mut r)?;
    let write = read_grant_entries(&mut r)?;
    let n = r.len()?;
    let mut declassified = Vec::with_capacity(n);
    for _ in 0..n {
        declassified.push(r.symbol()?);
    }

    let n = r.len()?;
    let mut watermarks = Vec::with_capacity(n);
    for _ in 0..n {
        let remote = r.symbol()?;
        let dir = r.u8()?;
        let inc = r.u64()?;
        let seq = r.u64()?;
        watermarks.push(((remote, dir), (inc, seq)));
    }
    r.expect_end()?;

    Ok(PeerState {
        name,
        decls,
        facts,
        rules,
        delegated,
        trusted,
        untrusted_policy,
        grants: RelationGrants::import(GrantExport {
            read,
            write,
            declassified,
        }),
        watermarks,
    })
}

fn read_grant_entries(r: &mut Reader<'_>) -> Result<Vec<(Symbol, Vec<Symbol>)>, NetError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let rel = r.symbol()?;
        let m = r.len()?;
        let mut peers = Vec::with_capacity(m);
        for _ in 0..m {
            peers.push(r.symbol()?);
        }
        out.push((rel, peers));
    }
    Ok(out)
}

/// Writes a snapshot to a file.
pub fn save_to_file(peer: &Peer, path: impl AsRef<std::path::Path>) -> Result<(), NetError> {
    std::fs::write(path, save(peer))?;
    Ok(())
}

/// Restores a peer from a snapshot file.
pub fn load_from_file(path: impl AsRef<std::path::Path>) -> Result<Peer, NetError> {
    let data = std::fs::read(path)?;
    load(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::WRule;
    use wdl_datalog::Value;

    fn sample_peer() -> Peer {
        let mut p = Peer::new("snap-sample");
        p.declare("pictures", 4, RelationKind::Extensional).unwrap();
        p.declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        p.insert_local(
            "pictures",
            vec![
                Value::from(1),
                Value::from("sea.jpg"),
                Value::from("snap-sample"),
                Value::bytes(&[1, 2, 3]),
            ],
        )
        .unwrap();
        p.add_rule(WRule::example_attendee_pictures("snap-sample"))
            .unwrap();
        p.install_delegation(Delegation::new(
            Symbol::intern("other"),
            Symbol::intern("snap-sample"),
            WRule::example_attendee_pictures("other"),
        ));
        p.acl_mut().trust("sigmod");
        p.acl_mut().set_untrusted_policy(UntrustedPolicy::Reject);
        p.grants_mut().restrict_read("pictures");
        p.grants_mut().grant_read("pictures", "sigmod");
        p.grants_mut().grant_write("pictures", "sigmod");
        p.grants_mut().declassify("attendeePictures");
        p.note_session_watermark(Symbol::intern("other"), 0, 3, 41);
        p.note_session_watermark(Symbol::intern("other"), 1, 3, 17);
        p
    }

    #[test]
    fn watermarks_survive_the_round_trip() {
        let p = sample_peer();
        let q = load(&save(&p)).unwrap();
        assert_eq!(q.session_watermarks(), p.session_watermarks());
        assert_eq!(
            q.session_watermarks()
                .get(&(Symbol::intern("other"), 0))
                .copied(),
            Some((3, 41))
        );
    }

    #[test]
    fn snapshot_round_trip() {
        let p = sample_peer();
        let bytes = save(&p);
        let q = load(&bytes).unwrap();

        assert_eq!(q.name(), p.name());
        assert_eq!(q.relation_facts("pictures"), p.relation_facts("pictures"));
        assert_eq!(q.rules().len(), 1);
        assert_eq!(q.installed_delegations().len(), 1);
        assert!(q.acl().is_trusted(Symbol::intern("sigmod")));
        assert_eq!(q.acl().untrusted_policy(), UntrustedPolicy::Reject);
        assert_eq!(q.grants().export(), p.grants().export());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let p = sample_peer();
        assert_eq!(save(&p), save(&p));
        // And stable across a round trip.
        let q = load(&save(&p)).unwrap();
        assert_eq!(save(&q), save(&p));
    }

    #[test]
    fn restored_peer_runs_stages() {
        let p = sample_peer();
        let mut q = load(&save(&p)).unwrap();
        q.insert_local("selectedAttendee", vec![Value::from("snap-sample")])
            .unwrap();
        q.run_stage().unwrap();
        assert_eq!(q.relation_facts("attendeePictures").len(), 1);
    }

    #[test]
    fn truncated_snapshot_errors() {
        let bytes = save(&sample_peer());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(load(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = save(&sample_peer()).to_vec();
        bytes[0] = 0xff;
        assert!(load(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("wdl-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("peer.snap");
        let p = sample_peer();
        save_to_file(&p, &path).unwrap();
        let q = load_from_file(&path).unwrap();
        assert_eq!(q.name(), p.name());
        std::fs::remove_file(&path).ok();
    }
}
