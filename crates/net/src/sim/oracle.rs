//! The convergence oracle: what a faulty run is *allowed* to produce.
//!
//! WebdamLog under faults has a set of admissible outcomes, not one golden
//! trace (cf. the nondeterministic-outcome taxonomy of *Determination
//! Provenance*). The oracle grades a simulated run against a fault-free
//! reference computed on [`wdl_core::runtime::LocalRuntime`]:
//!
//! 1. **Universe membership** (always): every delivered tuple appears
//!    somewhere in the fault-free run's history — the network can lose and
//!    duplicate, but it can never *invent* facts.
//! 2. **Subset of the lossless outcome** (monotone scenarios): for
//!    insert-only workloads the faulty final state is a subset of the
//!    fault-free final state, whatever was dropped.
//! 3. **Eventual equality** (lossless plans): once partitions heal,
//!    crashed peers restart, and buffered messages flush, the faulty run
//!    converges to *exactly* the fault-free outcome. For workloads with
//!    retractions this additionally requires an **ordered** plan (per-link
//!    FIFO, no duplication) — the engine does not sequence its diff
//!    protocol, so a duplicated retraction overtaken by its insertion is
//!    an admissible divergence, exactly like UDP.
//!
//! The applicable checks are derived from the plan and scenario, so one
//! `check_conformance` call grades any `(scenario, plan, seed)` triple.

use super::fault::FaultPlan;
use super::hub::SimOp;
use super::runtime::{SimConfig, SimReport, SimRuntime};
use crate::node::NodeError;
use std::collections::{BTreeMap, BTreeSet};
use wdl_core::runtime::LocalRuntime;
use wdl_core::Peer;
use wdl_datalog::{Symbol, Tuple};

/// A watched location: `(peer, relation)`.
pub type Watch = (Symbol, Symbol);

/// Final (and historical) watched state, keyed by watch.
pub type StateMap = BTreeMap<Watch, BTreeSet<Tuple>>;

/// A reproducible distributed workload: how to build the peers, which
/// mutations arrive in which batch, and which relations the oracle grades.
pub struct Scenario {
    /// Name for failure reports.
    pub name: String,
    /// True iff no batch ever deletes (monotone workload).
    pub additive: bool,
    /// Peers whose crash+restart preserves convergence. A peer qualifies
    /// when its watched-relevant state is all durable (base facts, rules,
    /// delegations — what the snapshot carries) and it re-sends its diffs
    /// from scratch on restart. Peers holding *received* remote
    /// contributions do NOT qualify: those are transient, and the
    /// no-retransmit diff protocol never refills them (the crash analogue
    /// of the documented drop limitation).
    pub crashable: Vec<Symbol>,
    /// Relations the oracle grades.
    pub watched: Vec<Watch>,
    /// Builds the peers (must be deterministic).
    pub build: Box<dyn Fn() -> Vec<Peer>>,
    /// Scripted mutation batches, applied in order.
    pub batches: Vec<Vec<(Symbol, SimOp)>>,
}

/// The fault-free outcome of a scenario.
#[derive(Clone, Debug)]
pub struct Reference {
    /// Watched state after the final batch quiesced.
    pub final_state: StateMap,
    /// Union of watched state after every batch — the universe of tuples
    /// the network could legitimately carry at any point.
    pub universe: StateMap,
}

/// Everything needed to reproduce one simulated run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// The seed printed on failure.
    pub seed: u64,
    /// The fault plan.
    pub plan: FaultPlan,
    /// Virtual µs between op batches.
    pub batch_spacing: u64,
    /// Crash script: `(at, peer, restart_after)`.
    pub crashes: Vec<(u64, Symbol, Option<u64>)>,
    /// Destroy in-flight frames on crash (see [`SimConfig`]).
    pub crash_drops_inflight: bool,
    /// Run every peer behind the reliable session layer (see
    /// [`SimConfig::sessions`]). Upgrades the oracle: lossy plans and
    /// crashes of *any* peer grade at full eventual equality, because
    /// retransmission + exactly-once delivery + restart-triggered resync
    /// make the transport reliable.
    pub sessions: bool,
    /// Event budget for the run.
    pub max_events: usize,
}

impl RunSpec {
    /// Defaults: 4ms batch spacing, 200k events.
    pub fn new(seed: u64, plan: FaultPlan) -> RunSpec {
        RunSpec {
            seed,
            plan,
            batch_spacing: 4_000,
            crashes: Vec::new(),
            crash_drops_inflight: false,
            sessions: false,
            max_events: 200_000,
        }
    }

    /// Adds a crash (+ optional restart) to the script.
    pub fn crash(
        mut self,
        at: u64,
        peer: impl Into<Symbol>,
        restart_after: Option<u64>,
    ) -> RunSpec {
        self.crashes.push((at, peer.into(), restart_after));
        self
    }

    /// Runs the peers behind the reliable session layer.
    pub fn with_sessions(mut self) -> RunSpec {
        self.sessions = true;
        self
    }

    /// True iff every scheduled crash also schedules a restart.
    fn all_crashes_restart(&self) -> bool {
        self.crashes.iter().all(|(_, _, r)| r.is_some())
    }

    /// True iff every crashed peer restarts and no in-flight loss is
    /// configured — a precondition for the raw-transport equality oracle.
    fn crashes_recover(&self) -> bool {
        !self.crash_drops_inflight && self.all_crashes_restart()
    }
}

/// Which checks a conformance run performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Universe-membership check ran (always true on success).
    pub checked_universe: bool,
    /// Subset-of-final check ran.
    pub checked_subset: bool,
    /// Eventual-equality check ran.
    pub checked_equality: bool,
    /// The simulated run's report.
    pub steps: usize,
}

/// A graded failure, with everything needed to replay it.
#[derive(Debug)]
pub struct ConformanceError {
    /// Scenario name.
    pub scenario: String,
    /// The seed to replay with.
    pub seed: u64,
    /// Which check failed.
    pub check: &'static str,
    /// Human-readable details (watch, sample tuples).
    pub detail: String,
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] seed {} failed {}: {}",
            self.scenario, self.seed, self.check, self.detail
        )
    }
}

impl std::error::Error for ConformanceError {}

impl Scenario {
    /// Computes the fault-free reference on the in-process runtime:
    /// batches apply sequentially, each followed by quiescence.
    pub fn reference(&self) -> Result<Reference, NodeError> {
        let mut rt = LocalRuntime::new();
        for p in (self.build)() {
            rt.add_peer(p).map_err(NodeError::Engine)?;
        }
        let mut universe: StateMap = BTreeMap::new();
        let record = |rt: &LocalRuntime, universe: &mut StateMap| -> StateMap {
            let mut state: StateMap = BTreeMap::new();
            for &(peer, rel) in &self.watched {
                let tuples: BTreeSet<Tuple> = rt
                    .peer(peer)
                    .map(|p| p.relation_facts(rel).into_iter().collect())
                    .unwrap_or_default();
                universe
                    .entry((peer, rel))
                    .or_default()
                    .extend(tuples.iter().cloned());
                state.insert((peer, rel), tuples);
            }
            state
        };
        ref_quiesce(&mut rt)?;
        let mut final_state = record(&rt, &mut universe);
        for batch in &self.batches {
            for (peer, op) in batch {
                apply_ref_op(&mut rt, *peer, op)?;
            }
            ref_quiesce(&mut rt)?;
            final_state = record(&rt, &mut universe);
        }
        Ok(Reference {
            final_state,
            universe,
        })
    }

    /// Runs the scenario through the simulator under `spec`.
    pub fn run_sim(&self, spec: &RunSpec) -> Result<(StateMap, SimReport), NodeError> {
        self.run_sim_with(spec, &|_| Ok(()))
    }

    /// Like [`Scenario::run_sim`], but calls `setup` after the peers are
    /// added and before any events are scheduled. Durable-storage
    /// conformance tests use this to install a [`super::CrashPersistence`]
    /// engine and attach durability sinks to the scenario-built peers —
    /// the oracle itself stays persistence-agnostic.
    pub fn run_sim_with(
        &self,
        spec: &RunSpec,
        setup: &dyn Fn(&mut SimRuntime) -> Result<(), NodeError>,
    ) -> Result<(StateMap, SimReport), NodeError> {
        let mut config = SimConfig::new(spec.seed).plan(spec.plan.clone());
        if spec.crash_drops_inflight {
            config = config.crash_drops_inflight();
        }
        if spec.sessions {
            config = config.sessions();
        }
        let mut sim = SimRuntime::new(config);
        for p in (self.build)() {
            sim.add_peer(p).map_err(NodeError::Net)?;
        }
        setup(&mut sim)?;
        for (i, batch) in self.batches.iter().enumerate() {
            let at = (i as u64 + 1) * spec.batch_spacing;
            for (peer, op) in batch {
                sim.schedule_op(at, *peer, op.clone());
            }
        }
        for (at, peer, restart_after) in &spec.crashes {
            sim.schedule_crash(*at, *peer, *restart_after);
        }
        let report = sim.run_to_quiescence(spec.max_events)?;
        let mut state: StateMap = BTreeMap::new();
        for &(peer, rel) in &self.watched {
            let tuples: BTreeSet<Tuple> = sim
                .relation_facts(peer, rel)
                .map(|v| v.into_iter().collect())
                .unwrap_or_default();
            state.insert((peer, rel), tuples);
        }
        Ok((state, report))
    }
}

/// Stage budget per reference quiescence phase.
const REF_ROUNDS: usize = 64;

/// Runs the reference runtime to quiescence, erroring if the budget is
/// exhausted — a half-computed reference must never be recorded as the
/// fault-free truth.
fn ref_quiesce(rt: &mut LocalRuntime) -> Result<(), NodeError> {
    let report = rt
        .run_to_quiescence(REF_ROUNDS)
        .map_err(NodeError::Engine)?;
    if !report.quiescent {
        return Err(NodeError::Engine(wdl_core::WdlError::NoQuiescence {
            stages: REF_ROUNDS,
        }));
    }
    Ok(())
}

fn apply_ref_op(rt: &mut LocalRuntime, peer: Symbol, op: &SimOp) -> Result<(), NodeError> {
    let p = rt
        .peer_mut(peer)
        .ok_or_else(|| NodeError::Engine(wdl_core::WdlError::UnknownPeer(peer.to_string())))?;
    let r = match op {
        SimOp::Insert { rel, tuple } => p.insert_local(*rel, tuple.clone()),
        SimOp::Delete { rel, tuple } => p.delete_local(*rel, tuple.clone()),
    };
    r.map(|_| ()).map_err(NodeError::Engine)
}

fn sample(set: &BTreeSet<Tuple>, limit: usize) -> String {
    let shown: Vec<String> = set.iter().take(limit).map(|t| format!("{t:?}")).collect();
    let suffix = if set.len() > limit { ", …" } else { "" };
    format!("{{{}{suffix}}}", shown.join(", "))
}

/// Grades one `(scenario, spec)` run against the fault-free reference.
///
/// Returns the checks performed, or a [`ConformanceError`] carrying the
/// seed — the error's `Display` is self-contained for CI logs.
pub fn check_conformance(scenario: &Scenario, spec: &RunSpec) -> Result<Verdict, ConformanceError> {
    check_conformance_with(scenario, spec, &|_| Ok(()))
}

/// [`check_conformance`] with a simulator setup hook (see
/// [`Scenario::run_sim_with`]): the faulty run gets `setup`, the
/// fault-free reference does not — durability must be invisible to the
/// oracle, so a persistence engine that changes convergence shows up here
/// as a conformance failure.
pub fn check_conformance_with(
    scenario: &Scenario,
    spec: &RunSpec,
    setup: &dyn Fn(&mut SimRuntime) -> Result<(), NodeError>,
) -> Result<Verdict, ConformanceError> {
    let fail = |check: &'static str, detail: String| ConformanceError {
        scenario: scenario.name.clone(),
        seed: spec.seed,
        check,
        detail,
    };
    let reference = scenario
        .reference()
        .map_err(|e| fail("reference-run", e.to_string()))?;
    let (state, report) = scenario
        .run_sim_with(spec, setup)
        .map_err(|e| fail("sim-run", e.to_string()))?;
    if !report.quiescent {
        return Err(fail(
            "quiescence",
            format!(
                "simulation did not quiesce within {} events ({} steps, t={}µs)",
                spec.max_events, report.steps, report.virtual_time
            ),
        ));
    }

    let mut verdict = Verdict {
        steps: report.steps,
        ..Verdict::default()
    };

    // 1. Universe membership: the network never invents facts.
    for (watch, tuples) in &state {
        let empty = BTreeSet::new();
        let universe = reference.universe.get(watch).unwrap_or(&empty);
        let phantom: BTreeSet<Tuple> = tuples.difference(universe).cloned().collect();
        if !phantom.is_empty() {
            return Err(fail(
                "universe-membership",
                format!(
                    "{}@{} carries {} invented tuple(s): {}",
                    watch.1,
                    watch.0,
                    phantom.len(),
                    sample(&phantom, 3)
                ),
            ));
        }
    }
    verdict.checked_universe = true;

    // 2. Monotone workloads: delivered ⊆ lossless, whatever was dropped.
    if scenario.additive {
        for (watch, tuples) in &state {
            let empty = BTreeSet::new();
            let lossless = reference.final_state.get(watch).unwrap_or(&empty);
            let extra: BTreeSet<Tuple> = tuples.difference(lossless).cloned().collect();
            if !extra.is_empty() {
                return Err(fail(
                    "subset-of-lossless",
                    format!(
                        "{}@{} exceeds the lossless outcome by {} tuple(s): {}",
                        watch.1,
                        watch.0,
                        extra.len(),
                        sample(&extra, 3)
                    ),
                ));
            }
        }
        verdict.checked_subset = true;
    }

    // 3. Eventual equality, when the plan makes it admissible.
    //
    // Raw transports: crashes compose with equality only when every
    // crashed peer restarts, is scenario-declared crash-safe, and the
    // workload is monotone (a restarted sender re-adds but cannot
    // re-retract: its pre-crash diff memory is transient), and the plan
    // must be lossless (nothing retransmits) and, for retraction
    // workloads, ordered.
    //
    // With sessions, the transport itself is reliable: retransmission
    // recovers drops and dropped-in-flight frames, exactly-once in-order
    // delivery makes duplication and reordering harmless, and restart
    // detection triggers a full derived resync — so *any* restarting
    // crash and *any* (eventually-connected) lossy plan still converges
    // to the fault-free outcome, for every peer.
    let crash_ok = spec.crashes.is_empty()
        || (spec.sessions && spec.all_crashes_restart())
        || (scenario.additive
            && spec.crashes_recover()
            && spec
                .crashes
                .iter()
                .all(|(_, peer, _)| scenario.crashable.contains(peer)));
    let equality_applies = crash_ok
        && (spec.sessions
            || (spec.plan.is_lossless() && (scenario.additive || spec.plan.is_ordered())));
    if equality_applies {
        for (watch, tuples) in &state {
            let empty = BTreeSet::new();
            let lossless = reference.final_state.get(watch).unwrap_or(&empty);
            if tuples != lossless {
                let missing: BTreeSet<Tuple> = lossless.difference(tuples).cloned().collect();
                let extra: BTreeSet<Tuple> = tuples.difference(lossless).cloned().collect();
                return Err(fail(
                    "eventual-equality",
                    format!(
                        "{}@{} diverged after heal: missing {} {}, extra {} {}",
                        watch.1,
                        watch.0,
                        missing.len(),
                        sample(&missing, 3),
                        extra.len(),
                        sample(&extra, 3)
                    ),
                ));
            }
        }
        verdict.checked_equality = true;
    }

    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::acl::UntrustedPolicy;
    use wdl_core::{RelationKind, WRule};
    use wdl_datalog::Value;

    /// Minimal two-peer delegation scenario, built inline (the Wepic-corpus
    /// generators live in the `wepic` crate to avoid a dependency cycle).
    fn tiny_scenario(tag: &str) -> Scenario {
        let viewer = format!("orv{tag}");
        let source = format!("ors{tag}");
        let v2 = viewer.clone();
        let s2 = source.clone();
        Scenario {
            name: format!("tiny-{tag}"),
            additive: true,
            crashable: vec![Symbol::intern(&source)],
            watched: vec![(Symbol::intern(&viewer), Symbol::intern("attendeePictures"))],
            build: Box::new(move || {
                let mut v = Peer::new(v2.as_str());
                v.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
                v.declare("attendeePictures", 4, RelationKind::Intensional)
                    .unwrap();
                v.add_rule(WRule::example_attendee_pictures(v2.as_str()))
                    .unwrap();
                let mut s = Peer::new(s2.as_str());
                s.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
                vec![v, s]
            }),
            batches: vec![
                vec![(
                    Symbol::intern(&source),
                    SimOp::Insert {
                        rel: Symbol::intern("pictures"),
                        tuple: vec![
                            Value::from(1),
                            Value::from("a.jpg"),
                            Value::from(source.as_str()),
                            Value::bytes(&[1]),
                        ],
                    },
                )],
                vec![(
                    Symbol::intern(&viewer),
                    SimOp::Insert {
                        rel: Symbol::intern("selectedAttendee"),
                        tuple: vec![Value::from(source.as_str())],
                    },
                )],
            ],
        }
    }

    #[test]
    fn lossless_run_passes_equality() {
        let sc = tiny_scenario("eq");
        let spec = RunSpec::new(3, FaultPlan::lossless().delay(20, 1_500).duplicate(0.2));
        let v = check_conformance(&sc, &spec).unwrap();
        assert!(v.checked_universe && v.checked_subset && v.checked_equality);
    }

    #[test]
    fn lossy_run_downgrades_to_subset() {
        let sc = tiny_scenario("sub");
        let spec = RunSpec::new(4, FaultPlan::lossless().drop(0.25).delay(20, 1_500));
        let v = check_conformance(&sc, &spec).unwrap();
        assert!(v.checked_universe && v.checked_subset);
        assert!(!v.checked_equality, "drops preclude the equality oracle");
    }

    #[test]
    fn sessions_restore_equality_under_loss() {
        let sc = tiny_scenario("ses");
        let spec = RunSpec::new(
            4,
            FaultPlan::lossless()
                .drop(0.25)
                .delay(20, 1_500)
                .duplicate(0.2),
        )
        .with_sessions();
        let v = check_conformance(&sc, &spec).unwrap();
        assert!(
            v.checked_equality,
            "the session layer upgrades lossy runs to the equality oracle"
        );
    }

    #[test]
    fn sessions_restore_equality_for_non_crashable_peer() {
        let sc = tiny_scenario("sescrash");
        // The viewer is NOT in `crashable`: raw transports cannot refill
        // its received derived state. Sessions can.
        let viewer = sc.watched[0].0;
        assert!(!sc.crashable.contains(&viewer));
        let spec = RunSpec::new(7, FaultPlan::lossless().delay(20, 1_000))
            .crash(6_000, viewer, Some(8_000))
            .with_sessions();
        let v = check_conformance(&sc, &spec).unwrap();
        assert!(v.checked_equality, "restarting crash of any peer converges");
    }

    #[test]
    fn reference_matches_manual_expectation() {
        let sc = tiny_scenario("ref");
        let r = sc.reference().unwrap();
        let key = sc.watched[0];
        assert_eq!(r.final_state[&key].len(), 1, "one picture flows");
    }
}
