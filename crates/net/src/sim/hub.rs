//! The simulated network hub: virtual clock, seeded randomness, and the
//! global discrete-event queue.
//!
//! Every send is **encoded through the real wire codec** and every drain
//! decodes it back — a message that survives the simulator has survived the
//! same serialization path the TCP transport uses, so wire-format bugs
//! surface in simulation instead of production. A decode failure inside the
//! simulator is by definition a codec bug and fails the run loudly.

use super::fault::FaultPlan;
use crate::{codec, NetError, Transport};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use wdl_core::Message;
use wdl_datalog::{Symbol, Value};

/// A state mutation the scheduler applies to a peer at a virtual time
/// (the churn vocabulary of scenario scripts).
#[derive(Clone, Debug, PartialEq)]
pub enum SimOp {
    /// `Peer::insert_local(rel, tuple)`.
    Insert {
        /// Target relation.
        rel: Symbol,
        /// The tuple.
        tuple: Vec<Value>,
    },
    /// `Peer::delete_local(rel, tuple)`.
    Delete {
        /// Target relation.
        rel: Symbol,
        /// The tuple.
        tuple: Vec<Value>,
    },
}

/// What a queued event does when it fires.
#[derive(Clone, Debug)]
pub(crate) enum EventKind {
    /// A wire frame reaches `to`'s mailbox.
    Deliver {
        /// Sending peer (provenance for diagnostics).
        from: Symbol,
        /// Receiving peer.
        to: Symbol,
        /// Encoded frame (real codec output).
        bytes: Bytes,
    },
    /// A peer runs one drain → stage → send step.
    Step {
        /// The peer to step.
        peer: Symbol,
        /// Incarnation the step belongs to; stale steps of crashed
        /// incarnations are ignored.
        incarnation: u32,
    },
    /// The peer crashes (state snapshotted through the real persistence
    /// path; transient state and timers die).
    Crash {
        /// The peer to kill.
        peer: Symbol,
    },
    /// The peer restarts from its crash snapshot.
    Restart {
        /// The peer to revive.
        peer: Symbol,
    },
    /// A scripted state mutation.
    Inject {
        /// The peer to mutate.
        peer: Symbol,
        /// The mutation.
        op: SimOp,
    },
}

/// A scheduled event. Ordering is `(at, seq)` — virtual time with a
/// monotone tiebreaker — which makes the whole simulation a deterministic
/// function of (scenario, plan, seed).
#[derive(Clone, Debug)]
pub(crate) struct Event {
    pub(crate) at: u64,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Event) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Delivery counters, exposed for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Messages submitted to the network.
    pub sent: u64,
    /// Frames placed in a mailbox.
    pub delivered: u64,
    /// Frames destroyed (faults, dropped partitions, crash loss).
    pub dropped: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
}

pub(crate) struct PeerSlot {
    /// Frames delivered but not yet drained: `(from, frame)`.
    pub(crate) mailbox: Vec<(Symbol, Bytes)>,
    /// True while the peer is crashed.
    pub(crate) down: bool,
    /// Bumped on every crash so stale step timers die.
    pub(crate) incarnation: u32,
}

pub(crate) struct SimState {
    pub(crate) now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Event>>,
    pub(crate) rng: StdRng,
    pub(crate) plan: FaultPlan,
    pub(crate) peers: HashMap<Symbol, PeerSlot>,
    pub(crate) counters: SimCounters,
    /// Outstanding `Deliver` events (for quiescence detection).
    pub(crate) pending_delivers: usize,
    /// Outstanding `Crash`/`Restart`/`Inject` events.
    pub(crate) pending_control: usize,
    /// Per-link floor for FIFO links: last scheduled delivery time.
    link_floor: HashMap<(Symbol, Symbol), u64>,
    /// If true, frames addressed to a crashed peer are destroyed instead of
    /// waiting in its mailbox (models kernel buffers dying with the
    /// process; the default models a reconnecting/queueing transport).
    pub(crate) crash_drops_inflight: bool,
}

impl SimState {
    pub(crate) fn schedule(&mut self, at: u64, kind: EventKind) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        match kind {
            EventKind::Deliver { .. } => self.pending_delivers += 1,
            EventKind::Crash { .. } | EventKind::Restart { .. } | EventKind::Inject { .. } => {
                self.pending_control += 1
            }
            EventKind::Step { .. } => {}
        }
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
    }

    /// Pops the next event, advancing the virtual clock to it.
    pub(crate) fn pop(&mut self) -> Option<Event> {
        let Reverse(ev) = self.queue.pop()?;
        self.now = ev.at;
        match ev.kind {
            EventKind::Deliver { .. } => self.pending_delivers -= 1,
            EventKind::Crash { .. } | EventKind::Restart { .. } | EventKind::Inject { .. } => {
                self.pending_control -= 1
            }
            EventKind::Step { .. } => {}
        }
        Some(ev)
    }

    /// Routes one encoded frame, applying the fault plan. All randomness
    /// comes from the shared seeded generator, in event order.
    fn route(&mut self, from: Symbol, to: Symbol, bytes: Bytes) -> Result<(), NetError> {
        if !self.peers.contains_key(&to) {
            return Err(NetError::UnknownPeer(to.to_string()));
        }
        self.counters.sent += 1;
        let lf = *self.plan.link_for(from, to);
        if let Some(n) = lf.drop_every_nth {
            if n > 0 && self.counters.sent.is_multiple_of(n) {
                self.counters.dropped += 1;
                return Ok(());
            }
        }
        if lf.drop_prob > 0.0 && self.rng.gen_bool(lf.drop_prob) {
            self.counters.dropped += 1;
            return Ok(());
        }
        // Partitions: destroy or buffer-until-heal, per the plan.
        let base = match self.plan.partition_heal(from, to, self.now) {
            Some(_) if self.plan.partitions_drop() => {
                self.counters.dropped += 1;
                return Ok(());
            }
            Some(heal) => heal,
            None => self.now,
        };
        let copies = if lf.dup_prob > 0.0 && self.rng.gen_bool(lf.dup_prob) {
            self.counters.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut delay = self.rng.gen_range(lf.latency_min..=lf.latency_max);
            if lf.jitter_prob > 0.0 && self.rng.gen_bool(lf.jitter_prob) {
                delay += self.rng.gen_range(0..=lf.jitter_max);
            }
            let mut at = base + delay;
            if lf.fifo {
                let floor = self.link_floor.entry((from, to)).or_insert(0);
                at = at.max(*floor + 1);
                *floor = at;
            }
            self.schedule(
                at,
                EventKind::Deliver {
                    from,
                    to,
                    bytes: bytes.clone(),
                },
            );
        }
        Ok(())
    }

    /// Applies a `Deliver` event to the target mailbox.
    pub(crate) fn deliver(&mut self, to: Symbol, from: Symbol, bytes: Bytes) {
        let slot = self.peers.get_mut(&to).expect("delivery to known peer");
        if slot.down && self.crash_drops_inflight {
            self.counters.dropped += 1;
        } else {
            slot.mailbox.push((from, bytes));
            self.counters.delivered += 1;
        }
    }
}

/// The deterministic simulated network. Cloning shares the hub, exactly
/// like [`crate::memory::InMemoryNetwork`].
#[derive(Clone)]
pub struct SimNet {
    pub(crate) state: Arc<Mutex<SimState>>,
}

impl SimNet {
    /// A fault-free simulated network driven by `seed`.
    pub fn new(seed: u64) -> SimNet {
        SimNet::with_plan(seed, FaultPlan::lossless())
    }

    /// A simulated network with a fault plan. Same `(plan, seed)` — same
    /// run, byte for byte.
    pub fn with_plan(seed: u64, plan: FaultPlan) -> SimNet {
        SimNet {
            state: Arc::new(Mutex::new(SimState {
                now: 0,
                seq: 0,
                queue: BinaryHeap::new(),
                rng: StdRng::seed_from_u64(seed),
                plan,
                peers: HashMap::new(),
                counters: SimCounters::default(),
                pending_delivers: 0,
                pending_control: 0,
                link_floor: HashMap::new(),
                crash_drops_inflight: false,
            })),
        }
    }

    /// Creates (and registers) the endpoint for `peer`. Unlike real
    /// transports the simulator owns delivery timing, so the endpoint is a
    /// thin handle onto the shared hub.
    pub fn endpoint(&self, peer: impl Into<Symbol>) -> Result<SimEndpoint, NetError> {
        let peer = peer.into();
        let mut st = self.state.lock();
        if st.peers.contains_key(&peer) {
            return Err(NetError::DuplicateEndpoint(peer.to_string()));
        }
        st.peers.insert(
            peer,
            PeerSlot {
                mailbox: Vec::new(),
                down: false,
                incarnation: 0,
            },
        );
        Ok(SimEndpoint {
            name: peer,
            state: Arc::clone(&self.state),
        })
    }

    /// Replaces the fault plan (applies to subsequent sends).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.state.lock().plan = plan;
    }

    /// Current virtual time in microseconds.
    pub fn now(&self) -> u64 {
        self.state.lock().now
    }

    /// Delivery counters so far.
    pub fn counters(&self) -> SimCounters {
        self.state.lock().counters
    }
}

/// One peer's endpoint on a [`SimNet`]. Implements the same [`Transport`]
/// trait the memory and TCP endpoints implement, so [`crate::node::PeerNode`]
/// drives it unchanged.
pub struct SimEndpoint {
    name: Symbol,
    state: Arc<Mutex<SimState>>,
}

impl SimEndpoint {
    pub(crate) fn reattach(name: Symbol, state: &Arc<Mutex<SimState>>) -> SimEndpoint {
        SimEndpoint {
            name,
            state: Arc::clone(state),
        }
    }
}

impl Transport for SimEndpoint {
    fn peer_name(&self) -> Symbol {
        self.name
    }

    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        // The real wire format: bugs in `codec` surface here, in simulation.
        let to = msg.to;
        let bytes = codec::encode(&msg);
        self.state.lock().route(self.name, to, bytes)
    }

    fn drain(&mut self) -> Vec<Message> {
        let frames = {
            let mut st = self.state.lock();
            match st.peers.get_mut(&self.name) {
                Some(slot) => std::mem::take(&mut slot.mailbox),
                None => Vec::new(),
            }
        };
        frames
            .into_iter()
            .map(|(from, bytes)| {
                codec::decode(&bytes).unwrap_or_else(|e| {
                    panic!(
                        "simulation surfaced a wire-format bug: frame {from} -> {} \
                         failed to decode: {e}",
                        self.name
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::{FactKind, Payload, WFact};

    fn msg(from: &str, to: &str, v: i64) -> Message {
        Message::new(
            Symbol::intern(from),
            Symbol::intern(to),
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![WFact::new("r", to, vec![Value::from(v)])],
                retractions: vec![],
            },
        )
    }

    /// Drives all pending `Deliver` events (unit-test substitute for the
    /// full scheduler).
    fn flush(net: &SimNet) {
        loop {
            let ev = { net.state.lock().pop() };
            match ev {
                Some(Event {
                    kind: EventKind::Deliver { from, to, bytes },
                    ..
                }) => {
                    net.state.lock().deliver(to, from, bytes);
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    #[test]
    fn frames_traverse_the_real_codec() {
        let net = SimNet::new(1);
        let mut a = net.endpoint("sa").unwrap();
        let mut b = net.endpoint("sb").unwrap();
        a.send(msg("sa", "sb", 7)).unwrap();
        flush(&net);
        let got = b.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], msg("sa", "sb", 7), "decode(encode(m)) == m");
    }

    #[test]
    fn duplicate_endpoint_is_recoverable() {
        let net = SimNet::new(1);
        let _a = net.endpoint("sdup").unwrap();
        assert!(matches!(
            net.endpoint("sdup"),
            Err(NetError::DuplicateEndpoint(_))
        ));
    }

    #[test]
    fn unknown_peer_errors() {
        let net = SimNet::new(1);
        let mut a = net.endpoint("sx").unwrap();
        assert!(matches!(
            a.send(msg("sx", "ghost", 0)),
            Err(NetError::UnknownPeer(_))
        ));
    }

    #[test]
    fn same_seed_same_delivery_schedule() {
        let run = |seed: u64| -> Vec<u64> {
            let net = SimNet::with_plan(seed, FaultPlan::lossless().delay(10, 500).duplicate(0.3));
            let mut a = net.endpoint("da").unwrap();
            let _b = net.endpoint("db").unwrap();
            for i in 0..50 {
                a.send(msg("da", "db", i)).unwrap();
            }
            let mut times = Vec::new();
            loop {
                let ev = { net.state.lock().pop() };
                match ev {
                    Some(Event { at, .. }) => times.push(at),
                    None => break,
                }
            }
            times
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seed, different schedule");
    }

    #[test]
    fn deterministic_every_nth_drop_counts_exactly() {
        let net = SimNet::with_plan(9, FaultPlan::lossless().drop_every_nth(3));
        let mut a = net.endpoint("na").unwrap();
        let mut b = net.endpoint("nb").unwrap();
        for i in 0..9 {
            a.send(msg("na", "nb", i)).unwrap();
        }
        flush(&net);
        assert_eq!(b.drain().len(), 6);
        let c = net.counters();
        assert_eq!((c.sent, c.delivered, c.dropped), (9, 6, 3));
    }

    #[test]
    fn fifo_links_preserve_send_order_under_jittered_latency() {
        let net = SimNet::with_plan(5, FaultPlan::lossless().delay(10, 5_000).fifo());
        let mut a = net.endpoint("fa").unwrap();
        let mut b = net.endpoint("fb").unwrap();
        for i in 0..20 {
            a.send(msg("fa", "fb", i)).unwrap();
        }
        flush(&net);
        let got = b.drain();
        assert_eq!(got.len(), 20);
        for (i, m) in got.iter().enumerate() {
            if let Payload::Facts { additions, .. } = &m.payload {
                assert_eq!(additions[0].tuple[0], Value::from(i as i64), "FIFO order");
            }
        }
    }

    #[test]
    fn buffered_partition_holds_until_heal() {
        let net = SimNet::with_plan(3, FaultPlan::lossless().partition("pa", "pb", 0, 10_000));
        let mut a = net.endpoint("pa").unwrap();
        let _b = net.endpoint("pb").unwrap();
        a.send(msg("pa", "pb", 1)).unwrap();
        let ev = net.state.lock().pop().unwrap();
        assert!(
            ev.at >= 10_000,
            "delivery scheduled after heal, got {}",
            ev.at
        );
    }
}
