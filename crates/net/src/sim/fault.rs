//! Composable fault plans for the simulated network.
//!
//! This is "FaultPlan v2": where `memory::FaultPlan` knows a single
//! deterministic counter trick (`drop_every_nth`), this plan composes
//! message **drop**, **duplication**, **reordering jitter**, **latency
//! distributions**, and **partitions** (bidirectional or asymmetric, with a
//! heal time) — per link or globally. All randomness is drawn from the
//! simulator's single seeded generator, so a plan plus a `u64` seed fully
//! determines every run.
//!
//! Two properties of a plan matter to the convergence oracle
//! ([`crate::sim::oracle`]):
//!
//! * **lossless** — no message is ever destroyed (no drops, partitions
//!   buffer instead of dropping). Delivered state can then catch up to the
//!   fault-free outcome once everything flushes.
//! * **ordered** — per-link FIFO is preserved and nothing is duplicated
//!   (TCP-like). Retraction streams are only safe to replay under ordered
//!   plans; an unordered lossless plan still guarantees convergence for
//!   monotone (insert-only) workloads.

use wdl_datalog::Symbol;

/// Fault and latency parameters of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability that a send is silently destroyed.
    pub drop_prob: f64,
    /// Probability that a send is delivered twice (independent latencies).
    pub dup_prob: f64,
    /// Deterministic drop of every n-th send (1-based, counted across the
    /// whole network) — kept from FaultPlan v1 for exact-count tests.
    pub drop_every_nth: Option<u64>,
    /// Minimum one-way latency in virtual microseconds.
    pub latency_min: u64,
    /// Maximum one-way latency in virtual microseconds.
    pub latency_max: u64,
    /// Probability of adding extra reordering jitter on top of latency.
    pub jitter_prob: f64,
    /// Maximum extra jitter in virtual microseconds.
    pub jitter_max: u64,
    /// If true the link preserves send order (deliveries are scheduled
    /// monotonically), modelling a TCP stream instead of datagrams.
    pub fifo: bool,
}

impl Default for LinkFaults {
    fn default() -> LinkFaults {
        LinkFaults {
            drop_prob: 0.0,
            dup_prob: 0.0,
            drop_every_nth: None,
            latency_min: 50,
            latency_max: 50,
            jitter_prob: 0.0,
            jitter_max: 0,
            fifo: false,
        }
    }
}

impl LinkFaults {
    /// True iff this link never destroys a message.
    pub fn is_lossless(&self) -> bool {
        self.drop_prob == 0.0 && self.drop_every_nth.is_none()
    }

    /// True iff this link preserves order and never duplicates.
    pub fn is_ordered(&self) -> bool {
        self.fifo && self.dup_prob == 0.0
    }
}

/// A partition window: traffic matching the window is cut from `from`
/// (inclusive) until `until` (exclusive) in virtual microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub a: Symbol,
    /// The other side.
    pub b: Symbol,
    /// Window start (virtual µs, inclusive).
    pub from: u64,
    /// Window end — the heal time (virtual µs, exclusive).
    pub until: u64,
    /// If false, only `a -> b` traffic is cut (asymmetric partition).
    pub bidirectional: bool,
}

impl Partition {
    /// Does this window cut a message sent `from -> to` at time `at`?
    pub fn blocks(&self, from: Symbol, to: Symbol, at: u64) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        (self.a == from && self.b == to) || (self.bidirectional && self.b == from && self.a == to)
    }
}

/// A composable network fault plan (see the module docs).
///
/// Built fluently:
///
/// ```
/// use wdl_net::sim::FaultPlan;
/// let plan = FaultPlan::lossless()
///     .delay(100, 2_000)
///     .duplicate(0.1)
///     .partition("alice", "bob", 5_000, 12_000);
/// assert!(plan.is_lossless());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    default_link: LinkFaults,
    links: Vec<((Symbol, Symbol), LinkFaults)>,
    partitions: Vec<Partition>,
    /// If true, partitioned sends are destroyed; if false (default) they
    /// are buffered and delivered after the heal time, like a reconnecting
    /// transport.
    drop_partitioned: bool,
}

impl FaultPlan {
    /// The identity plan: fixed small latency, no faults.
    pub fn lossless() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sets the default-link drop probability.
    pub fn drop(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.default_link.drop_prob = p;
        self
    }

    /// Sets the default-link duplication probability.
    pub fn duplicate(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.default_link.dup_prob = p;
        self
    }

    /// Deterministically drops every n-th send network-wide (v1 behaviour).
    pub fn drop_every_nth(mut self, n: u64) -> FaultPlan {
        self.default_link.drop_every_nth = Some(n);
        self
    }

    /// Sets the default-link latency range (virtual µs). A wide range is
    /// itself a reordering fault: two back-to-back sends may swap.
    pub fn delay(mut self, min: u64, max: u64) -> FaultPlan {
        assert!(min <= max, "empty latency range");
        self.default_link.latency_min = min;
        self.default_link.latency_max = max;
        self
    }

    /// Adds explicit reordering: with probability `p` a message takes up to
    /// `max_extra` µs of additional jitter.
    pub fn reorder(mut self, p: f64, max_extra: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.default_link.jitter_prob = p;
        self.default_link.jitter_max = max_extra;
        self.default_link.fifo = false;
        self
    }

    /// Makes every link order-preserving (TCP-like): deliveries on a link
    /// are scheduled monotonically even when latencies vary.
    pub fn fifo(mut self) -> FaultPlan {
        self.default_link.fifo = true;
        for (_, lf) in &mut self.links {
            lf.fifo = true;
        }
        self
    }

    /// Overrides the faults of one directed link.
    pub fn link(
        mut self,
        from: impl Into<Symbol>,
        to: impl Into<Symbol>,
        faults: LinkFaults,
    ) -> FaultPlan {
        self.links.push(((from.into(), to.into()), faults));
        self
    }

    /// Cuts `a <-> b` during `[from, until)` virtual µs.
    pub fn partition(
        mut self,
        a: impl Into<Symbol>,
        b: impl Into<Symbol>,
        from: u64,
        until: u64,
    ) -> FaultPlan {
        self.partitions.push(Partition {
            a: a.into(),
            b: b.into(),
            from,
            until,
            bidirectional: true,
        });
        self
    }

    /// Cuts only `from_peer -> to_peer` during `[from, until)` — an
    /// asymmetric partition (one direction keeps flowing).
    pub fn partition_one_way(
        mut self,
        from_peer: impl Into<Symbol>,
        to_peer: impl Into<Symbol>,
        from: u64,
        until: u64,
    ) -> FaultPlan {
        self.partitions.push(Partition {
            a: from_peer.into(),
            b: to_peer.into(),
            from,
            until,
            bidirectional: false,
        });
        self
    }

    /// Makes partitions destroy traffic instead of buffering it until heal.
    pub fn drop_partitions(mut self) -> FaultPlan {
        self.drop_partitioned = true;
        self
    }

    /// The faults governing one directed link.
    pub fn link_for(&self, from: Symbol, to: Symbol) -> &LinkFaults {
        self.links
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, lf)| lf)
            .unwrap_or(&self.default_link)
    }

    /// Partition windows blocking `from -> to` at `at`; returns the latest
    /// heal time if any window applies.
    pub(crate) fn partition_heal(&self, from: Symbol, to: Symbol, at: u64) -> Option<u64> {
        self.partitions
            .iter()
            .filter(|p| p.blocks(from, to, at))
            .map(|p| p.until)
            .max()
    }

    /// True iff partitioned sends are destroyed rather than buffered.
    pub fn partitions_drop(&self) -> bool {
        self.drop_partitioned
    }

    /// The time after which no partition window is active.
    pub fn heal_time(&self) -> u64 {
        self.partitions.iter().map(|p| p.until).max().unwrap_or(0)
    }

    /// True iff no message can ever be destroyed under this plan.
    pub fn is_lossless(&self) -> bool {
        let links_ok =
            self.default_link.is_lossless() && self.links.iter().all(|(_, lf)| lf.is_lossless());
        links_ok && (self.partitions.is_empty() || !self.drop_partitioned)
    }

    /// True iff every link preserves order and never duplicates.
    pub fn is_ordered(&self) -> bool {
        self.default_link.is_ordered() && self.links.iter().all(|(_, lf)| lf.is_ordered())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn default_plan_is_lossless_and_unordered() {
        let p = FaultPlan::lossless();
        assert!(p.is_lossless());
        assert!(!p.is_ordered(), "datagram semantics by default");
        assert!(p.fifo().is_ordered());
    }

    #[test]
    fn drops_and_dropped_partitions_are_lossy() {
        assert!(!FaultPlan::lossless().drop(0.1).is_lossless());
        assert!(!FaultPlan::lossless().drop_every_nth(3).is_lossless());
        let buffered = FaultPlan::lossless().partition("a", "b", 0, 10);
        assert!(buffered.is_lossless());
        assert!(!buffered.drop_partitions().is_lossless());
    }

    #[test]
    fn link_overrides_take_precedence() {
        let lossy = LinkFaults {
            drop_prob: 1.0,
            ..LinkFaults::default()
        };
        let p = FaultPlan::lossless().link("a", "b", lossy);
        assert_eq!(p.link_for(sym("a"), sym("b")).drop_prob, 1.0);
        assert_eq!(p.link_for(sym("b"), sym("a")).drop_prob, 0.0);
        assert!(!p.is_lossless());
    }

    #[test]
    fn partition_windows_and_direction() {
        let p = FaultPlan::lossless()
            .partition("a", "b", 10, 20)
            .partition_one_way("c", "d", 0, 5);
        assert_eq!(p.partition_heal(sym("a"), sym("b"), 15), Some(20));
        assert_eq!(p.partition_heal(sym("b"), sym("a"), 15), Some(20));
        assert_eq!(p.partition_heal(sym("a"), sym("b"), 20), None, "healed");
        assert_eq!(p.partition_heal(sym("c"), sym("d"), 3), Some(5));
        assert_eq!(p.partition_heal(sym("d"), sym("c"), 3), None, "asymmetric");
        assert_eq!(p.heal_time(), 20);
    }

    #[test]
    fn dup_breaks_ordered_even_with_fifo() {
        let p = FaultPlan::lossless().fifo().duplicate(0.5);
        assert!(!p.is_ordered());
        assert!(p.is_lossless());
    }
}
