//! The discrete-event scheduler that drives peers over a [`SimNet`].
//!
//! FoundationDB-style: a single event loop interleaves peer stages,
//! message deliveries, scripted mutations, and crash/restart — all ordered
//! by `(virtual time, sequence)` and all jitter drawn from the hub's one
//! seeded generator. A run is therefore a pure function of
//! `(scenario, plan, seed)`; rerunning with the seed printed by a failing
//! test replays the exact interleaving.
//!
//! Crash/restart round-trips the peer through a **real persistence path**
//! (pluggable via [`CrashPersistence`]; the default is
//! [`crate::snapshot::save`]/[`crate::snapshot::load`]): a crash
//! serializes the peer's durable state and discards the live object; a
//! restart deserializes it, so transient per-stage state (previous-diff
//! memories, in-flight derivations) dies exactly as it would across a
//! process restart. A durable-engine implementation can additionally
//! *lose* not-yet-committed mutations at the crash point — it reports
//! them back and the simulator re-injects them as client retries, which
//! keeps the convergence oracle's equality check applicable.

use super::fault::FaultPlan;
use super::hub::{EventKind, SimCounters, SimEndpoint, SimNet, SimOp, SimState};
use crate::node::{NodeError, PeerNode};
use crate::session::{Clock, SessionConfig, SessionEndpoint};
use crate::{snapshot, NetError, Transport, TransportEvent, WatermarkNote};
use bytes::Bytes;
use parking_lot::Mutex;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;
use wdl_core::{Message, Peer};
use wdl_datalog::{Symbol, Tuple};

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The seed. Same seed, same run.
    pub seed: u64,
    /// The network fault plan.
    pub plan: FaultPlan,
    /// Minimum virtual µs between a peer's steps.
    pub step_min: u64,
    /// Maximum virtual µs between a peer's steps (jittered per step).
    pub step_max: u64,
    /// If true, frames addressed to a crashed peer are destroyed; if false
    /// (default) the network buffers them until the restart, like a
    /// queueing/reconnecting transport.
    pub crash_drops_inflight: bool,
    /// If true, every endpoint is wrapped in a
    /// [`crate::session::SessionEndpoint`] driven by the virtual clock:
    /// retransmission, exactly-once delivery, and restart detection apply,
    /// so lossy plans and crashes of *any* peer become recoverable.
    pub sessions: bool,
}

impl SimConfig {
    /// Defaults: lossless plan, steps every 200–800 virtual µs.
    pub fn new(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            plan: FaultPlan::lossless(),
            step_min: 200,
            step_max: 800,
            crash_drops_inflight: false,
            sessions: false,
        }
    }

    /// Replaces the fault plan.
    pub fn plan(mut self, plan: FaultPlan) -> SimConfig {
        self.plan = plan;
        self
    }

    /// Destroys in-flight frames on crash instead of buffering them.
    pub fn crash_drops_inflight(mut self) -> SimConfig {
        self.crash_drops_inflight = true;
        self
    }

    /// Runs every peer behind the reliable session layer.
    pub fn sessions(mut self) -> SimConfig {
        self.sessions = true;
        self
    }
}

/// The simulator's virtual clock, handed to session endpoints so their
/// retransmission and liveness timers run on simulated time (and replay
/// with the seed).
struct SimClock {
    state: Arc<Mutex<SimState>>,
}

impl Clock for SimClock {
    fn now_micros(&self) -> u64 {
        self.state.lock().now
    }
}

/// A simulated peer's transport: the raw hub endpoint, or the same
/// endpoint behind the reliable session layer (see
/// [`SimConfig::sessions`]).
pub enum SimTransport {
    /// Unreliable datagram semantics — what the fault plan says, the peer
    /// gets.
    Raw(SimEndpoint),
    /// The session layer over the same wire: retransmission, dedup,
    /// restart detection.
    Session(Box<SessionEndpoint<SimEndpoint>>),
}

impl Transport for SimTransport {
    fn peer_name(&self) -> Symbol {
        match self {
            SimTransport::Raw(ep) => ep.peer_name(),
            SimTransport::Session(ep) => ep.peer_name(),
        }
    }

    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        match self {
            SimTransport::Raw(ep) => ep.send(msg),
            SimTransport::Session(ep) => ep.send(msg),
        }
    }

    fn drain(&mut self) -> Vec<Message> {
        match self {
            SimTransport::Raw(ep) => ep.drain(),
            SimTransport::Session(ep) => ep.drain(),
        }
    }

    fn poll_events(&mut self) -> Vec<TransportEvent> {
        match self {
            SimTransport::Raw(ep) => ep.poll_events(),
            SimTransport::Session(ep) => ep.poll_events(),
        }
    }

    fn pending_work(&self) -> usize {
        match self {
            SimTransport::Raw(ep) => ep.pending_work(),
            SimTransport::Session(ep) => ep.pending_work(),
        }
    }

    fn watermarks(&mut self) -> Vec<WatermarkNote> {
        match self {
            SimTransport::Raw(ep) => ep.watermarks(),
            SimTransport::Session(ep) => ep.watermarks(),
        }
    }

    fn commit_delivered(&mut self) {
        match self {
            SimTransport::Raw(ep) => ep.commit_delivered(),
            SimTransport::Session(ep) => ep.commit_delivered(),
        }
    }

    fn take_retransmit_counts(&mut self) -> Vec<(Symbol, u64)> {
        match self {
            SimTransport::Raw(ep) => ep.take_retransmit_counts(),
            SimTransport::Session(ep) => ep.take_retransmit_counts(),
        }
    }
}

/// Report of a [`SimRuntime::run_to_quiescence`] call.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// True iff the network fell silent within the event budget.
    pub quiescent: bool,
    /// Events processed.
    pub events: usize,
    /// Peer steps executed.
    pub steps: usize,
    /// Virtual clock at return, in µs.
    pub virtual_time: u64,
    /// Delivery counters at return.
    pub counters: SimCounters,
}

enum NodeSlot {
    Up(Box<PeerNode<SimTransport>>),
    /// Crash token (real persistence bytes or an engine handle) +
    /// mutations scripted while the peer was down (or lost at the crash
    /// point and retried), applied in order on restart.
    Down {
        snapshot: Bytes,
        pending_ops: Vec<SimOp>,
    },
}

/// How the simulator round-trips a peer through "disk" across a
/// crash/restart pair. Implementations must be deterministic functions of
/// their inputs (including `crash_seed`) — the simulator's replayability
/// contract extends through them.
pub trait CrashPersistence {
    /// Consumes the crashing peer and returns `(token, lost_ops)`: an
    /// opaque token that [`CrashPersistence::restart`] can rebuild the
    /// peer from, plus the durable-image mutations destroyed by the crash
    /// (e.g. a torn write-ahead-log tail). The simulator re-injects
    /// `lost_ops` at restart, modeling a client that retries writes never
    /// acknowledged as durable. Full-state snapshotting loses nothing.
    fn crash(&mut self, peer: Peer, crash_seed: u64) -> Result<(Bytes, Vec<SimOp>), NetError>;

    /// Rebuilds the peer from a token produced by
    /// [`CrashPersistence::crash`].
    fn restart(&mut self, name: Symbol, token: &Bytes) -> Result<Peer, NetError>;
}

/// The default [`CrashPersistence`]: whole-state binary snapshots through
/// [`crate::snapshot`]. Loses nothing at the crash point (the snapshot is
/// taken atomically at crash time), so `lost_ops` is always empty.
#[derive(Debug, Default)]
pub struct SnapshotPersistence;

impl CrashPersistence for SnapshotPersistence {
    fn crash(&mut self, peer: Peer, _crash_seed: u64) -> Result<(Bytes, Vec<SimOp>), NetError> {
        Ok((snapshot::save(&peer), Vec::new()))
    }

    fn restart(&mut self, _name: Symbol, token: &Bytes) -> Result<Peer, NetError> {
        snapshot::load(token)
    }
}

/// A deterministic distributed simulation of WebdamLog peers.
pub struct SimRuntime {
    net: SimNet,
    config: SimConfig,
    nodes: HashMap<Symbol, NodeSlot>,
    /// Consecutive quiet steps per peer (reset by any activity).
    quiet: HashMap<Symbol, u32>,
    order: Vec<Symbol>,
    /// The crash/restart round-trip path (snapshots by default).
    persistence: Box<dyn CrashPersistence>,
}

/// Quiet steps every live peer must string together before the runtime
/// declares quiescence (with no deliveries or control events pending).
const QUIET_STEPS: u32 = 2;

impl SimRuntime {
    /// New simulation with `config`.
    pub fn new(config: SimConfig) -> SimRuntime {
        let net = SimNet::with_plan(config.seed, config.plan.clone());
        net.state.lock().crash_drops_inflight = config.crash_drops_inflight;
        SimRuntime {
            net,
            config,
            nodes: HashMap::new(),
            quiet: HashMap::new(),
            order: Vec::new(),
            persistence: Box::new(SnapshotPersistence),
        }
    }

    /// Replaces the crash/restart persistence path (the default round-trips
    /// whole-state snapshots). Install before scheduling any crash.
    pub fn set_persistence(&mut self, persistence: Box<dyn CrashPersistence>) {
        self.persistence = persistence;
    }

    /// The underlying network (counters, virtual clock).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The session parameters used when [`SimConfig::sessions`] is on.
    /// Timers run on virtual time, so the defaults compose with the
    /// 200–800µs step cadence; the session RNG folds in the run seed.
    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            seed: self.config.seed,
            ..SessionConfig::default()
        }
    }

    fn wrap_endpoint(&self, ep: SimEndpoint, incarnation: u64, peer: &Peer) -> SimTransport {
        if !self.config.sessions {
            return SimTransport::Raw(ep);
        }
        let clock = Box::new(SimClock {
            state: Arc::clone(&self.net.state),
        });
        let session = if incarnation == 0 && peer.session_watermarks().is_empty() {
            SessionEndpoint::with_clock(ep, incarnation, self.session_config(), clock)
        } else {
            SessionEndpoint::recover(
                ep,
                incarnation,
                self.session_config(),
                clock,
                peer.session_watermarks(),
            )
        };
        SimTransport::Session(Box::new(session))
    }

    /// Adds a peer and schedules its first step at a jittered offset.
    pub fn add_peer(&mut self, peer: Peer) -> Result<(), NetError> {
        let name = peer.name();
        let ep = self.net.endpoint(name)?;
        let transport = self.wrap_endpoint(ep, 0, &peer);
        let node = PeerNode::new(peer, transport);
        self.nodes.insert(name, NodeSlot::Up(Box::new(node)));
        self.order.push(name);
        self.quiet.insert(name, 0);
        let mut st = self.net.state.lock();
        let at = st.now + jitter(&mut st, self.config.step_min, self.config.step_max);
        st.schedule(
            at,
            EventKind::Step {
                peer: name,
                incarnation: 0,
            },
        );
        Ok(())
    }

    /// The live peer named `name` (`None` while crashed or unknown).
    pub fn peer(&self, name: impl Into<Symbol>) -> Option<&Peer> {
        match self.nodes.get(&name.into()) {
            Some(NodeSlot::Up(node)) => Some(node.peer()),
            _ => None,
        }
    }

    /// The live peer, mutably. Out-of-band mutation between runs is how
    /// tests stand in for user actions; prefer [`SimRuntime::schedule_op`]
    /// to interleave mutations *inside* a run deterministically.
    pub fn peer_mut(&mut self, name: impl Into<Symbol>) -> Option<&mut Peer> {
        match self.nodes.get_mut(&name.into()) {
            Some(NodeSlot::Up(node)) => Some(node.peer_mut()),
            _ => None,
        }
    }

    /// Peer names in insertion order.
    pub fn peer_names(&self) -> &[Symbol] {
        &self.order
    }

    /// Schedules a state mutation at virtual time `at`.
    pub fn schedule_op(&mut self, at: u64, peer: impl Into<Symbol>, op: SimOp) {
        let peer = peer.into();
        self.net
            .state
            .lock()
            .schedule(at, EventKind::Inject { peer, op });
    }

    /// Schedules a crash at `at`, and — if `restart_after` is given — a
    /// restart that many µs later.
    pub fn schedule_crash(&mut self, at: u64, peer: impl Into<Symbol>, restart_after: Option<u64>) {
        let peer = peer.into();
        let mut st = self.net.state.lock();
        st.schedule(at, EventKind::Crash { peer });
        if let Some(dt) = restart_after {
            st.schedule(at + dt.max(1), EventKind::Restart { peer });
        }
    }

    /// Runs the event loop until the system is quiescent (every live peer
    /// strung together [`QUIET_STEPS`] quiet steps with no deliveries or
    /// control events outstanding) or `max_events` is exhausted.
    ///
    /// The loop may be re-entered: schedule more ops/crashes, change the
    /// plan, or mutate peers out-of-band, and call again — peer step
    /// timers persist across calls, and every live peer must re-earn its
    /// quiet streak (so a re-entered run really re-examines the system
    /// instead of trusting the previous call's verdict).
    pub fn run_to_quiescence(&mut self, max_events: usize) -> Result<SimReport, NodeError> {
        for q in self.quiet.values_mut() {
            *q = 0;
        }
        let mut report = SimReport::default();
        loop {
            if self.is_quiescent() {
                report.quiescent = true;
                break;
            }
            if report.events >= max_events {
                break;
            }
            let Some(ev) = ({ self.net.state.lock().pop() }) else {
                // Queue empty but not quiescent: every peer is down with no
                // restart pending. Report non-quiescent rather than spin.
                break;
            };
            report.events += 1;
            match ev.kind {
                EventKind::Deliver { from, to, bytes } => {
                    let mut st = self.net.state.lock();
                    let was_up = st.peers.get(&to).map(|s| !s.down).unwrap_or(false);
                    st.deliver(to, from, bytes);
                    drop(st);
                    if was_up {
                        self.quiet.insert(to, 0);
                    }
                }
                EventKind::Step { peer, incarnation } => {
                    report.steps += self.step_peer(peer, incarnation)? as usize;
                }
                EventKind::Crash { peer } => self.crash(peer)?,
                EventKind::Restart { peer } => self.restart(peer)?,
                EventKind::Inject { peer, op } => self.inject(peer, op)?,
            }
        }
        let st = self.net.state.lock();
        report.virtual_time = st.now;
        report.counters = st.counters;
        Ok(report)
    }

    fn is_quiescent(&self) -> bool {
        let st = self.net.state.lock();
        if st.pending_delivers > 0 || st.pending_control > 0 {
            return false;
        }
        drop(st);
        self.nodes.iter().all(|(name, slot)| match slot {
            NodeSlot::Up(_) => self.quiet.get(name).copied().unwrap_or(0) >= QUIET_STEPS,
            // A peer that is down with no restart scheduled stays down;
            // it cannot generate traffic.
            NodeSlot::Down { .. } => true,
        })
    }

    /// Runs one step of `peer` if it is alive and the timer belongs to its
    /// current incarnation; returns whether a step ran.
    fn step_peer(&mut self, peer: Symbol, incarnation: u32) -> Result<bool, NodeError> {
        let alive = {
            let st = self.net.state.lock();
            st.peers
                .get(&peer)
                .map(|s| !s.down && s.incarnation == incarnation)
                .unwrap_or(false)
        };
        if !alive {
            return Ok(false); // stale timer of a crashed incarnation
        }
        let Some(NodeSlot::Up(node)) = self.nodes.get_mut(&peer) else {
            return Ok(false);
        };
        let r = node.step()?;
        let quiet = r.received == 0
            && r.sent == 0
            && r.deferred == 0
            && !r.changed
            && node.transport().pending_work() == 0;
        let q = self.quiet.entry(peer).or_insert(0);
        *q = if quiet { *q + 1 } else { 0 };
        let mut st = self.net.state.lock();
        let at = st.now + jitter(&mut st, self.config.step_min, self.config.step_max);
        st.schedule(at, EventKind::Step { peer, incarnation });
        Ok(true)
    }

    fn crash(&mut self, peer: Symbol) -> Result<(), NodeError> {
        match self.nodes.remove(&peer) {
            Some(NodeSlot::Up(node)) => self.crash_node(peer, *node),
            Some(down) => {
                self.nodes.insert(peer, down); // already down: no-op
                Ok(())
            }
            None => Ok(()),
        }
    }

    fn crash_node(&mut self, peer: Symbol, node: PeerNode<SimTransport>) -> Result<(), NodeError> {
        let (p, _endpoint) = node.into_parts();
        // Every crash draws a seed from the one simulation generator: a
        // durable-engine persistence path uses it to pick *where inside
        // the crash window* the process dies (mid-checkpoint, mid-append),
        // so those choices replay with the run's seed too.
        let crash_seed: u64 = { self.net.state.lock().rng.gen() };
        // The real persistence path: durable state only. Transient stage
        // state (diff memories, timers) dies here. Mutations the durable
        // image lost at the crash point come back as retries.
        let (snapshot, lost_ops) = self
            .persistence
            .crash(p, crash_seed)
            .map_err(NodeError::Net)?;
        self.nodes.insert(
            peer,
            NodeSlot::Down {
                snapshot,
                pending_ops: lost_ops,
            },
        );
        let mut st = self.net.state.lock();
        if let Some(ps) = st.peers.get_mut(&peer) {
            ps.down = true;
            ps.incarnation += 1;
            if self.config.crash_drops_inflight {
                let lost = ps.mailbox.len() as u64;
                ps.mailbox.clear();
                st.counters.dropped += lost;
            }
        }
        drop(st);
        self.quiet.insert(peer, 0);
        Ok(())
    }

    fn restart(&mut self, peer: Symbol) -> Result<(), NodeError> {
        let (token, ops) = match self.nodes.get_mut(&peer) {
            Some(NodeSlot::Down {
                snapshot,
                pending_ops,
            }) => (snapshot.clone(), std::mem::take(pending_ops)),
            _ => return Ok(()),
        };
        let mut p = self
            .persistence
            .restart(peer, &token)
            .map_err(NodeError::Net)?;
        for op in ops {
            apply_op(&mut p, op)?;
        }
        let incarnation = {
            let mut st = self.net.state.lock();
            match st.peers.get_mut(&peer) {
                Some(ps) => {
                    ps.down = false;
                    ps.incarnation
                }
                None => 0,
            }
        };
        // The new process image gets the bumped incarnation; with
        // sessions on, durable watermarks seed its dedup floor.
        let ep = SimEndpoint::reattach(peer, &self.net.state);
        let transport = self.wrap_endpoint(ep, u64::from(incarnation), &p);
        self.nodes
            .insert(peer, NodeSlot::Up(Box::new(PeerNode::new(p, transport))));
        self.quiet.insert(peer, 0);
        let mut st = self.net.state.lock();
        let at = st.now + jitter(&mut st, self.config.step_min, self.config.step_max);
        st.schedule(at, EventKind::Step { peer, incarnation });
        Ok(())
    }

    fn inject(&mut self, peer: Symbol, op: SimOp) -> Result<(), NodeError> {
        match self.nodes.get_mut(&peer) {
            Some(NodeSlot::Up(node)) => {
                apply_op(node.peer_mut(), op)?;
                self.quiet.insert(peer, 0);
                Ok(())
            }
            Some(NodeSlot::Down { pending_ops, .. }) => {
                // Scripted user action while the peer is down: the user
                // retries after the restart.
                pending_ops.push(op);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Tuples of `rel` at `peer`, or `None` while the peer is down.
    pub fn relation_facts(
        &self,
        peer: impl Into<Symbol>,
        rel: impl Into<Symbol>,
    ) -> Option<Vec<Tuple>> {
        self.peer(peer).map(|p| p.relation_facts(rel))
    }
}

fn jitter(st: &mut SimState, min: u64, max: u64) -> u64 {
    if min >= max {
        min.max(1)
    } else {
        st.rng.gen_range(min..=max).max(1)
    }
}

fn apply_op(p: &mut Peer, op: SimOp) -> Result<(), NodeError> {
    let r = match op {
        SimOp::Insert { rel, tuple } => p.insert_local(rel, tuple),
        SimOp::Delete { rel, tuple } => p.delete_local(rel, tuple),
    };
    r.map(|_| ()).map_err(NodeError::Engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::acl::UntrustedPolicy;
    use wdl_core::{RelationKind, WRule};
    use wdl_datalog::Value;

    fn open_peer(name: &str) -> Peer {
        let mut p = Peer::new(name);
        p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
        p
    }

    fn delegation_pair(tag: &str) -> (Peer, Peer) {
        let viewer_name = format!("simv{tag}");
        let source_name = format!("sims{tag}");
        let mut viewer = open_peer(&viewer_name);
        viewer
            .declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        viewer
            .add_rule(WRule::example_attendee_pictures(viewer_name.as_str()))
            .unwrap();
        viewer
            .insert_local("selectedAttendee", vec![Value::from(source_name.as_str())])
            .unwrap();
        let mut source = open_peer(&source_name);
        source
            .insert_local(
                "pictures",
                vec![
                    Value::from(1),
                    Value::from("sea.jpg"),
                    Value::from(source_name.as_str()),
                    Value::bytes(&[7]),
                ],
            )
            .unwrap();
        (viewer, source)
    }

    #[test]
    fn delegation_converges_under_lossless_sim() {
        let (viewer, source) = delegation_pair("l");
        let vname = viewer.name();
        let mut sim = SimRuntime::new(SimConfig::new(11));
        sim.add_peer(viewer).unwrap();
        sim.add_peer(source).unwrap();
        let r = sim.run_to_quiescence(10_000).unwrap();
        assert!(r.quiescent, "no quiescence: {r:?}");
        assert_eq!(
            sim.relation_facts(vname, "attendeePictures").unwrap().len(),
            1
        );
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        let run = |tag: &str, seed: u64| {
            let (viewer, source) = delegation_pair(tag);
            let mut sim = SimRuntime::new(
                SimConfig::new(seed).plan(FaultPlan::lossless().delay(20, 2_000).duplicate(0.2)),
            );
            sim.add_peer(viewer).unwrap();
            sim.add_peer(source).unwrap();
            let r = sim.run_to_quiescence(10_000).unwrap();
            (r.events, r.steps, r.virtual_time, r.counters)
        };
        // Distinct peer names intern fresh symbols, but the schedule is a
        // function of the seed alone.
        assert_eq!(
            run("same", 77),
            run("same2", 77),
            "same seed, same trajectory"
        );
        assert_ne!(run("diff", 77), run("diff2", 78), "seed changes the run");
    }

    #[test]
    fn crash_restart_round_trips_snapshot_and_converges() {
        let (viewer, source) = delegation_pair("c");
        let vname = viewer.name();
        let sname = source.name();
        let mut sim = SimRuntime::new(SimConfig::new(5).plan(FaultPlan::lossless().delay(50, 400)));
        sim.add_peer(viewer).unwrap();
        sim.add_peer(source).unwrap();
        // Crash the source early, restart 5ms later; the delegation must
        // still complete because the snapshot path restores its pictures
        // and the restarted peer re-sends its diffs from scratch.
        sim.schedule_crash(600, sname, Some(5_000));
        let r = sim.run_to_quiescence(20_000).unwrap();
        assert!(r.quiescent, "no quiescence: {r:?}");
        assert_eq!(
            sim.relation_facts(vname, "attendeePictures").unwrap().len(),
            1
        );
        assert!(sim.peer(sname).is_some(), "source is back up");
    }

    #[test]
    fn ops_scheduled_during_downtime_apply_after_restart() {
        let mut solo = open_peer("simdowninj");
        solo.declare("r", 1, RelationKind::Extensional).unwrap();
        let mut sim = SimRuntime::new(SimConfig::new(8));
        sim.add_peer(solo).unwrap();
        sim.schedule_crash(500, "simdowninj", Some(4_000));
        sim.schedule_op(
            1_000, // while down
            "simdowninj",
            SimOp::Insert {
                rel: Symbol::intern("r"),
                tuple: vec![Value::from(42)],
            },
        );
        let r = sim.run_to_quiescence(10_000).unwrap();
        assert!(r.quiescent);
        assert_eq!(sim.relation_facts("simdowninj", "r").unwrap().len(), 1);
    }

    #[test]
    fn sessions_recover_probabilistic_drops() {
        let (viewer, source) = delegation_pair("sesdrop");
        let vname = viewer.name();
        let mut sim = SimRuntime::new(
            SimConfig::new(21)
                .plan(FaultPlan::lossless().drop(0.3).delay(20, 1_500))
                .sessions(),
        );
        sim.add_peer(viewer).unwrap();
        sim.add_peer(source).unwrap();
        let r = sim.run_to_quiescence(100_000).unwrap();
        assert!(r.quiescent, "no quiescence: {r:?}");
        assert_eq!(
            sim.relation_facts(vname, "attendeePictures").unwrap().len(),
            1,
            "retransmission recovered every dropped frame"
        );
    }

    /// Crash the *viewer* — the peer holding received derived state, which
    /// raw transports can never refill (the sender's diff memory says
    /// "already sent"). The session layer detects the new incarnation and
    /// triggers a full derived resync.
    #[test]
    fn sessions_survive_receiver_crash() {
        let (viewer, source) = delegation_pair("sesvc");
        let vname = viewer.name();
        let mut sim = SimRuntime::new(
            SimConfig::new(13)
                .plan(FaultPlan::lossless().delay(50, 400))
                .sessions(),
        );
        sim.add_peer(viewer).unwrap();
        sim.add_peer(source).unwrap();
        sim.schedule_crash(2_000, vname, Some(5_000));
        let r = sim.run_to_quiescence(100_000).unwrap();
        assert!(r.quiescent, "no quiescence: {r:?}");
        assert_eq!(
            sim.relation_facts(vname, "attendeePictures").unwrap().len(),
            1,
            "restarted receiver was resynced"
        );
    }

    #[test]
    fn crashed_forever_peer_does_not_block_quiescence() {
        let (viewer, source) = delegation_pair("dead");
        let sname = source.name();
        let mut sim = SimRuntime::new(SimConfig::new(2));
        sim.add_peer(viewer).unwrap();
        sim.add_peer(source).unwrap();
        sim.schedule_crash(100, sname, None);
        let r = sim.run_to_quiescence(10_000).unwrap();
        assert!(r.quiescent, "down-forever peer must not spin: {r:?}");
        assert!(sim.peer(sname).is_none(), "source stays down");
    }
}
