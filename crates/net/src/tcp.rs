//! Framed TCP transport.
//!
//! Each peer binds a listener; outgoing connections are opened lazily per
//! target and kept alive. Frames are `u32`-LE length + [`crate::codec`]
//! bytes. This is the substrate that proves the reproduction is genuinely
//! distributed: the integration tests run the paper's three-peer scenario
//! across real sockets (loopback standing in for the demo's LAN + cloud).

use crate::{codec, NetError, Transport};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wdl_core::Message;
use wdl_datalog::Symbol;

/// Maximum accepted frame size (16 MiB) — a defense against corrupt length
/// prefixes, not a protocol limit.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Capacity of the incoming-message channel. A peer that stops draining
/// (stuck stage, slow consumer) fills this buffer; further frames are
/// counted in [`TcpEndpoint::overflow_count`] and dropped rather than
/// growing the heap without bound — the session layer retransmits them.
const INCOMING_CAP: usize = 16_384;

/// A peer's TCP endpoint: listener + connection cache + address directory.
pub struct TcpEndpoint {
    name: Symbol,
    local_addr: SocketAddr,
    incoming: Receiver<Message>,
    directory: Arc<Mutex<HashMap<Symbol, SocketAddr>>>,
    conns: HashMap<Symbol, TcpStream>,
    stop: Arc<AtomicBool>,
    /// Frames dropped because the bounded incoming channel was full.
    overflow: Arc<AtomicU64>,
}

impl TcpEndpoint {
    /// Binds a listener for `peer` on `addr` (use port 0 for an ephemeral
    /// port; read it back with [`TcpEndpoint::local_addr`]).
    ///
    /// Every failure — bind, nonblocking setup, accept-thread spawn — is a
    /// recoverable [`NetError`], never a panic: the caller may be retrying
    /// ports or running under resource exhaustion.
    pub fn bind(peer: impl Into<Symbol>, addr: &str) -> Result<TcpEndpoint, NetError> {
        let name = peer.into();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = bounded(INCOMING_CAP);
        let stop = Arc::new(AtomicBool::new(false));
        let overflow = Arc::new(AtomicU64::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_overflow = Arc::clone(&overflow);
        std::thread::Builder::new()
            .name(format!("wdl-accept-{name}"))
            .spawn(move || accept_loop(listener, tx, accept_stop, accept_overflow))?;
        Ok(TcpEndpoint {
            name,
            local_addr,
            incoming: rx,
            directory: Arc::new(Mutex::new(HashMap::new())),
            conns: HashMap::new(),
            stop,
            overflow,
        })
    }

    /// The bound address (for registering with other peers).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Teaches this endpoint where `peer` listens.
    pub fn register(&self, peer: impl Into<Symbol>, addr: SocketAddr) {
        self.directory.lock().insert(peer.into(), addr);
    }

    /// Stops the accept loop. Called on drop as well.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Frames dropped so far because the incoming channel was full (the
    /// peer stopped draining). Monotone; the session layer's retransmission
    /// makes the drops harmless, but a growing count is a backpressure
    /// signal worth surfacing.
    pub fn overflow_count(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    fn connection(&mut self, target: Symbol) -> Result<&mut TcpStream, NetError> {
        // A cached connection whose remote died looks healthy to `write`:
        // the kernel buffers the bytes and only reports the failure on a
        // *later* write, long after the frame was silently lost. Probe with
        // a non-blocking peek before trusting the cache: a dead peer shows
        // up as EOF (orderly close after restart) or a reset.
        if let Some(stream) = self.conns.get(&target) {
            if stream_is_stale(stream) {
                self.conns.remove(&target);
            }
        }
        if !self.conns.contains_key(&target) {
            let addr = self
                .directory
                .lock()
                .get(&target)
                .copied()
                .ok_or_else(|| NetError::UnknownPeer(target.to_string()))?;
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            self.conns.insert(target, stream);
        }
        Ok(self.conns.get_mut(&target).expect("just inserted"))
    }

    fn write_frame(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
        let len = (bytes.len() as u32).to_le_bytes();
        stream.write_all(&len)?;
        stream.write_all(bytes)?;
        Ok(())
    }
}

/// Probes a cached outgoing connection for liveness without consuming
/// data. These sockets are write-only in the protocol, so any readable
/// state is either EOF/reset (remote gone — stale) or nothing pending
/// (`WouldBlock` — healthy).
fn stream_is_stale(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let stale = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    stale
}

impl Transport for TcpEndpoint {
    fn peer_name(&self) -> Symbol {
        self.name
    }

    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        let target = msg.to;
        let bytes = codec::encode(&msg);
        // One reconnect attempt on a stale cached connection.
        for attempt in 0..2 {
            let stream = self.connection(target)?;
            match Self::write_frame(stream, &bytes) {
                Ok(()) => return Ok(()),
                Err(e) if attempt == 0 => {
                    self.conns.remove(&target);
                    let _ = e;
                }
                Err(e) => return Err(e.into()),
            }
        }
        unreachable!("loop returns")
    }

    fn drain(&mut self) -> Vec<Message> {
        self.incoming.try_iter().collect()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Message>,
    stop: Arc<AtomicBool>,
    overflow: Arc<AtomicU64>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let stop = Arc::clone(&stop);
                let overflow = Arc::clone(&overflow);
                // A failed spawn (thread exhaustion) drops this one
                // connection; the sender redials and retransmits. Never
                // worth taking the whole endpoint down.
                let _ = std::thread::Builder::new()
                    .name("wdl-conn".into())
                    .spawn(move || read_loop(stream, tx, stop, overflow));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn read_loop(
    mut stream: TcpStream,
    tx: Sender<Message>,
    stop: Arc<AtomicBool>,
    overflow: Arc<AtomicU64>,
) {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut len_buf = [0u8; 4];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return, // connection closed
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return; // poisoned stream; drop the connection
        }
        let mut frame = vec![0u8; len as usize];
        if read_frame_body(&mut stream, &mut frame, &stop).is_err() {
            return;
        }
        match codec::decode(&frame) {
            Ok(msg) => match tx.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    // Receiver stopped draining; count and shed the frame
                    // rather than buffering without bound. Retransmission
                    // recovers it once the receiver catches up.
                    overflow.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(_) => return, // undecodable; drop the connection
        }
    }
}

/// Reads the frame body, tolerating read timeouts mid-frame (the length
/// prefix already arrived, so the rest is in flight).
fn read_frame_body(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let mut read = 0;
    while read < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "shutdown",
            ));
        }
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_core::{FactKind, Payload, WFact};
    use wdl_datalog::Value;

    fn wait_for<T>(mut f: impl FnMut() -> Option<T>, ms: u64) -> Option<T> {
        let deadline = std::time::Instant::now() + Duration::from_millis(ms);
        while std::time::Instant::now() < deadline {
            if let Some(v) = f() {
                return Some(v);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        None
    }

    fn fact_msg(from: &str, to: &str, v: i64) -> Message {
        Message::new(
            Symbol::intern(from),
            Symbol::intern(to),
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![WFact::new("r", to, vec![Value::from(v)])],
                retractions: vec![],
            },
        )
    }

    #[test]
    fn two_endpoints_exchange_messages() {
        let mut a = TcpEndpoint::bind("a", "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind("b", "127.0.0.1:0").unwrap();
        a.register("b", b.local_addr());
        b.register("a", a.local_addr());

        a.send(fact_msg("a", "b", 1)).unwrap();
        a.send(fact_msg("a", "b", 2)).unwrap();
        let got = wait_for(
            || {
                let msgs = b.drain();
                if msgs.len() >= 2 {
                    Some(msgs)
                } else if !msgs.is_empty() {
                    // put back impossible; collect over iterations instead
                    Some(msgs)
                } else {
                    None
                }
            },
            2000,
        )
        .expect("messages arrive");
        assert!(!got.is_empty());

        b.send(fact_msg("b", "a", 3)).unwrap();
        let back = wait_for(
            || {
                let m = a.drain();
                if m.is_empty() {
                    None
                } else {
                    Some(m)
                }
            },
            2000,
        )
        .expect("reply arrives");
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn send_recovers_after_peer_restart() {
        let mut a = TcpEndpoint::bind("ra", "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind("rb", "127.0.0.1:0").unwrap();
        let b_addr = b.local_addr();
        a.register("rb", b_addr);

        // Establish (and cache) the connection with a first delivery.
        a.send(fact_msg("ra", "rb", 1)).unwrap();
        wait_for(
            || {
                let m = b.drain();
                if m.is_empty() {
                    None
                } else {
                    Some(())
                }
            },
            2000,
        )
        .expect("first delivery");

        // Kill the peer; give its reader thread time to close the socket
        // so the FIN reaches `a`'s cached connection.
        drop(b);
        std::thread::sleep(Duration::from_millis(500));

        // Restart the listener — same port if the kernel allows, fresh
        // ephemeral port otherwise (restart-with-new-address case).
        let mut b2 = TcpEndpoint::bind("rb", &b_addr.to_string())
            .unwrap_or_else(|_| TcpEndpoint::bind("rb", "127.0.0.1:0").unwrap());
        a.register("rb", b2.local_addr());

        // A single send must detect the stale cached connection, redial,
        // and reach the restarted peer. Before the liveness probe this
        // write landed in the dead socket's buffer and vanished.
        a.send(fact_msg("ra", "rb", 2)).unwrap();
        let got = wait_for(
            || {
                let m = b2.drain();
                if m.is_empty() {
                    None
                } else {
                    Some(m)
                }
            },
            3000,
        )
        .expect("delivery resumes after restart");
        assert!(!got.is_empty());
    }

    #[test]
    fn incoming_overflow_is_counted_not_fatal() {
        // Drive read_loop directly with a capacity-1 channel: the first
        // frame is queued, the rest are shed and counted.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = bounded(1);
        let stop = Arc::new(AtomicBool::new(false));
        let overflow = Arc::new(AtomicU64::new(0));
        let (r_stop, r_over) = (Arc::clone(&stop), Arc::clone(&overflow));
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let h = std::thread::spawn(move || read_loop(server, tx, r_stop, r_over));
        for v in 0..3 {
            let bytes = codec::encode(&fact_msg("x", "y", v));
            client
                .write_all(&(bytes.len() as u32).to_le_bytes())
                .unwrap();
            client.write_all(&bytes).unwrap();
        }
        client.flush().unwrap();
        wait_for(
            || {
                if overflow.load(Ordering::Relaxed) >= 2 {
                    Some(())
                } else {
                    None
                }
            },
            3000,
        )
        .expect("overflow counted");
        assert_eq!(rx.try_iter().count(), 1);
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
    }

    #[test]
    fn fresh_endpoint_reports_zero_overflow() {
        let e = TcpEndpoint::bind("quiet", "127.0.0.1:0").unwrap();
        assert_eq!(e.overflow_count(), 0);
    }

    #[test]
    fn unknown_target_is_an_error() {
        let mut a = TcpEndpoint::bind("lonely", "127.0.0.1:0").unwrap();
        assert!(matches!(
            a.send(fact_msg("lonely", "nowhere", 0)),
            Err(NetError::UnknownPeer(_))
        ));
    }

    #[test]
    fn large_frame_round_trips() {
        let mut a = TcpEndpoint::bind("big-a", "127.0.0.1:0").unwrap();
        let mut b = TcpEndpoint::bind("big-b", "127.0.0.1:0").unwrap();
        a.register("big-b", b.local_addr());
        // A 1 MiB picture blob.
        let blob: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let msg = Message::new(
            Symbol::intern("big-a"),
            Symbol::intern("big-b"),
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![WFact::new(
                    "pictures",
                    "big-b",
                    vec![Value::from(1), Value::from(blob.clone())],
                )],
                retractions: vec![],
            },
        );
        a.send(msg).unwrap();
        let got = wait_for(
            || {
                let m = b.drain();
                if m.is_empty() {
                    None
                } else {
                    Some(m)
                }
            },
            5000,
        )
        .expect("blob arrives");
        if let Payload::Facts { additions, .. } = &got[0].payload {
            assert_eq!(additions[0].tuple[1].as_bytes().unwrap().len(), blob.len());
        } else {
            panic!("wrong payload");
        }
    }
}
