//! Compact binary wire format for [`Message`]s.
//!
//! Hand-rolled (the offline crate allowlist provides `serde` but no format
//! crate), little-endian, length-prefixed. The format is versioned with a
//! single magic byte so incompatible peers fail fast instead of
//! misinterpreting frames.
//!
//! Symbols travel as strings and values travel as their payloads: peers in
//! different processes have different interner tables, so numeric ids —
//! `Symbol`s and the engine's `ValueId`s alike — would be meaningless on
//! the wire. `wdl_datalog::ValueId` implements neither `Serialize` nor any
//! codec hook, so the interned data plane cannot leak into frames by
//! construction; `tests/interned_equivalence.rs` additionally pins that
//! encoded bytes are independent of interner state.

use crate::NetError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use wdl_core::{
    Delegation, DelegationId, FactKind, Message, NameTerm, Payload, WAtom, WBodyItem, WFact,
    WLiteral, WRule,
};
use wdl_datalog::{BinOp, CmpOp, Expr, Symbol, Term, Value};

/// Format version magic; bump on incompatible changes.
pub const WIRE_VERSION: u8 = 1;

/// Maximum expression nesting a frame may carry. Decoding is recursive,
/// so adversarial or corrupted frames nesting deeper are rejected with a
/// codec error instead of a stack overflow. The limit is far above any
/// expression the parser or rule builders produce; note that [`encode`]
/// does not enforce it, so a (pathological) rule nesting deeper would
/// encode but be rejected by the receiver's decode.
pub const MAX_EXPR_DEPTH: usize = 512;

/// Encodes a message into a standalone buffer (without outer length prefix —
/// framing is the transport's job).
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_u8(WIRE_VERSION);
    put_symbol(&mut buf, msg.from);
    put_symbol(&mut buf, msg.to);
    put_payload(&mut buf, &msg.payload);
    buf.freeze()
}

/// Decodes a message from a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Message, NetError> {
    let mut r = Reader { data, pos: 0 };
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(NetError::Codec(format!(
            "wire version mismatch: got {version}, expected {WIRE_VERSION}"
        )));
    }
    let from = r.symbol()?;
    let to = r.symbol()?;
    let payload = r.payload()?;
    r.expect_end()?;
    Ok(Message::new(from, to, payload))
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes an interned symbol as a length-prefixed UTF-8 string. Public
/// because the storage engine (`wdl-store`) reuses the wire primitives for
/// its on-disk formats — one set of encoding conventions per workspace.
pub fn put_symbol(buf: &mut BytesMut, s: Symbol) {
    put_str(buf, s.as_str());
}

/// Encodes a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Encodes a dynamically typed [`Value`] (tag byte + payload).
pub fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.put_u8(0);
            buf.put_i64_le(*i);
        }
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Str(s) => {
            buf.put_u8(2);
            put_str(buf, s);
        }
        Value::Bytes(b) => {
            buf.put_u8(3);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

pub(crate) fn put_term(buf: &mut BytesMut, t: &Term) {
    match t {
        Term::Var(v) => {
            buf.put_u8(0);
            put_symbol(buf, *v);
        }
        Term::Const(c) => {
            buf.put_u8(1);
            put_value(buf, c);
        }
    }
}

pub(crate) fn put_name_term(buf: &mut BytesMut, n: &NameTerm) {
    match n {
        NameTerm::Name(s) => {
            buf.put_u8(0);
            put_symbol(buf, *s);
        }
        NameTerm::Var(v) => {
            buf.put_u8(1);
            put_symbol(buf, *v);
        }
    }
}

pub(crate) fn put_atom(buf: &mut BytesMut, a: &WAtom) {
    put_name_term(buf, &a.rel);
    put_name_term(buf, &a.peer);
    buf.put_u32_le(a.args.len() as u32);
    for t in &a.args {
        put_term(buf, t);
    }
}

pub(crate) fn put_expr(buf: &mut BytesMut, e: &Expr) {
    match e {
        Expr::Term(t) => {
            buf.put_u8(0);
            put_term(buf, t);
        }
        Expr::Bin(op, l, r) => {
            buf.put_u8(1);
            buf.put_u8(binop_tag(*op));
            put_expr(buf, l);
            put_expr(buf, r);
        }
    }
}

pub(crate) fn put_body_item(buf: &mut BytesMut, item: &WBodyItem) {
    match item {
        WBodyItem::Literal(l) => {
            buf.put_u8(0);
            buf.put_u8(u8::from(l.negated));
            put_atom(buf, &l.atom);
        }
        WBodyItem::Cmp { op, lhs, rhs } => {
            buf.put_u8(1);
            buf.put_u8(cmpop_tag(*op));
            put_term(buf, lhs);
            put_term(buf, rhs);
        }
        WBodyItem::Assign { var, expr } => {
            buf.put_u8(2);
            put_symbol(buf, *var);
            put_expr(buf, expr);
        }
    }
}

pub(crate) fn put_rule(buf: &mut BytesMut, r: &WRule) {
    put_atom(buf, &r.head);
    buf.put_u32_le(r.body.len() as u32);
    for item in &r.body {
        put_body_item(buf, item);
    }
}

pub(crate) fn put_fact(buf: &mut BytesMut, f: &WFact) {
    put_symbol(buf, f.rel);
    put_symbol(buf, f.peer);
    buf.put_u32_le(f.tuple.len() as u32);
    for v in f.tuple.iter() {
        put_value(buf, v);
    }
}

pub(crate) fn put_delegation(buf: &mut BytesMut, d: &Delegation) {
    buf.put_u64_le(d.id.raw());
    put_symbol(buf, d.origin);
    put_symbol(buf, d.target);
    put_rule(buf, &d.rule);
}

pub(crate) fn put_payload(buf: &mut BytesMut, p: &Payload) {
    match p {
        Payload::Facts {
            kind,
            additions,
            retractions,
        } => {
            buf.put_u8(0);
            buf.put_u8(match kind {
                FactKind::Persistent => 0,
                FactKind::Derived => 1,
            });
            buf.put_u32_le(additions.len() as u32);
            for f in additions {
                put_fact(buf, f);
            }
            buf.put_u32_le(retractions.len() as u32);
            for f in retractions {
                put_fact(buf, f);
            }
        }
        Payload::Delegate(ds) => {
            buf.put_u8(1);
            buf.put_u32_le(ds.len() as u32);
            for d in ds {
                put_delegation(buf, d);
            }
        }
        Payload::Revoke(ids) => {
            buf.put_u8(2);
            buf.put_u32_le(ids.len() as u32);
            for id in ids {
                buf.put_u64_le(id.raw());
            }
        }
        Payload::Session(bytes) => {
            buf.put_u8(3);
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
    }
}

fn cmpop_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Concat => 5,
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked cursor over an encoded buffer. Every accessor returns
/// [`NetError::Codec`] on truncation or malformed data — the decoder is
/// total, never panicking on adversarial input. Public for the same reason
/// as [`put_value`]: the storage engine decodes its file formats with the
/// same primitives.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.pos + n > self.data.len() {
            return Err(NetError::Codec(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, NetError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, NetError> {
        let mut b = self.take(8)?;
        Ok(b.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, NetError> {
        let mut b = self.take(8)?;
        Ok(b.get_i64_le())
    }

    /// Reads a `u32` length field, rejecting lengths beyond the buffer.
    /// (`len` decodes a field; it is not a size accessor, so there is no
    /// `is_empty` counterpart.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, NetError> {
        let n = self.u32()? as usize;
        // Defensive cap: a single field may not claim more than the frame.
        if n > self.data.len() {
            return Err(NetError::Codec(format!("length {n} exceeds frame size")));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, NetError> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?)
            .map_err(|e| NetError::Codec(format!("invalid utf8: {e}")))
    }

    /// Reads a length-prefixed string and interns it as a [`Symbol`].
    pub fn symbol(&mut self) -> Result<Symbol, NetError> {
        Ok(Symbol::intern(self.str()?))
    }

    /// Reads a [`Value`] written by [`put_value`].
    pub fn value(&mut self) -> Result<Value, NetError> {
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::Bool(self.u8()? != 0)),
            2 => Ok(Value::str(self.str()?)),
            3 => {
                let n = self.len()?;
                Ok(Value::bytes(self.take(n)?))
            }
            t => Err(NetError::Codec(format!("bad value tag {t}"))),
        }
    }

    pub(crate) fn term(&mut self) -> Result<Term, NetError> {
        match self.u8()? {
            0 => Ok(Term::Var(self.symbol()?)),
            1 => Ok(Term::Const(self.value()?)),
            t => Err(NetError::Codec(format!("bad term tag {t}"))),
        }
    }

    pub(crate) fn name_term(&mut self) -> Result<NameTerm, NetError> {
        match self.u8()? {
            0 => Ok(NameTerm::Name(self.symbol()?)),
            1 => Ok(NameTerm::Var(self.symbol()?)),
            t => Err(NetError::Codec(format!("bad name-term tag {t}"))),
        }
    }

    pub(crate) fn atom(&mut self) -> Result<WAtom, NetError> {
        let rel = self.name_term()?;
        let peer = self.name_term()?;
        let n = self.len()?;
        let mut args = Vec::with_capacity(n);
        for _ in 0..n {
            args.push(self.term()?);
        }
        Ok(WAtom::new(rel, peer, args))
    }

    pub(crate) fn expr(&mut self) -> Result<Expr, NetError> {
        self.expr_at(0)
    }

    fn expr_at(&mut self, depth: usize) -> Result<Expr, NetError> {
        // Expressions decode recursively; cap the nesting so an
        // adversarial (or corrupted) frame degrades to a clean error
        // instead of exhausting the stack.
        if depth > MAX_EXPR_DEPTH {
            return Err(NetError::Codec(format!(
                "expression nests deeper than {MAX_EXPR_DEPTH}"
            )));
        }
        match self.u8()? {
            0 => Ok(Expr::Term(self.term()?)),
            1 => {
                let op = binop_from(self.u8()?)?;
                let l = self.expr_at(depth + 1)?;
                let r = self.expr_at(depth + 1)?;
                Ok(Expr::bin(op, l, r))
            }
            t => Err(NetError::Codec(format!("bad expr tag {t}"))),
        }
    }

    pub(crate) fn body_item(&mut self) -> Result<WBodyItem, NetError> {
        match self.u8()? {
            0 => {
                let negated = self.u8()? != 0;
                let atom = self.atom()?;
                Ok(WBodyItem::Literal(if negated {
                    WLiteral::neg(atom)
                } else {
                    WLiteral::pos(atom)
                }))
            }
            1 => {
                let op = cmpop_from(self.u8()?)?;
                let lhs = self.term()?;
                let rhs = self.term()?;
                Ok(WBodyItem::Cmp { op, lhs, rhs })
            }
            2 => {
                let var = self.symbol()?;
                let expr = self.expr()?;
                Ok(WBodyItem::Assign { var, expr })
            }
            t => Err(NetError::Codec(format!("bad body-item tag {t}"))),
        }
    }

    pub(crate) fn rule(&mut self) -> Result<WRule, NetError> {
        let head = self.atom()?;
        let n = self.len()?;
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(self.body_item()?);
        }
        Ok(WRule::new(head, body))
    }

    pub(crate) fn fact(&mut self) -> Result<WFact, NetError> {
        let rel = self.symbol()?;
        let peer = self.symbol()?;
        let n = self.len()?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        Ok(WFact::new(rel, peer, values))
    }

    pub(crate) fn delegation(&mut self) -> Result<Delegation, NetError> {
        let wire_id = self.u64()?;
        let origin = self.symbol()?;
        let target = self.symbol()?;
        let rule = self.rule()?;
        let d = Delegation::new(origin, target, rule);
        // The id is content-addressed; recomputing it validates integrity.
        if d.id.raw() != wire_id {
            return Err(NetError::Codec(format!(
                "delegation id mismatch: wire {wire_id:#x}, recomputed {:#x}",
                d.id.raw()
            )));
        }
        Ok(d)
    }

    pub(crate) fn payload(&mut self) -> Result<Payload, NetError> {
        match self.u8()? {
            0 => {
                let kind = match self.u8()? {
                    0 => FactKind::Persistent,
                    1 => FactKind::Derived,
                    t => return Err(NetError::Codec(format!("bad fact kind {t}"))),
                };
                let n = self.len()?;
                let mut additions = Vec::with_capacity(n);
                for _ in 0..n {
                    additions.push(self.fact()?);
                }
                let n = self.len()?;
                let mut retractions = Vec::with_capacity(n);
                for _ in 0..n {
                    retractions.push(self.fact()?);
                }
                Ok(Payload::Facts {
                    kind,
                    additions,
                    retractions,
                })
            }
            1 => {
                let n = self.len()?;
                let mut ds = Vec::with_capacity(n);
                for _ in 0..n {
                    ds.push(self.delegation()?);
                }
                Ok(Payload::Delegate(ds))
            }
            2 => {
                let n = self.len()?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(delegation_id_from_raw(self.u64()?));
                }
                Ok(Payload::Revoke(ids))
            }
            3 => {
                let n = self.len()?;
                Ok(Payload::Session(self.take(n)?.to_vec()))
            }
            t => Err(NetError::Codec(format!("bad payload tag {t}"))),
        }
    }

    /// Asserts the buffer is fully consumed (trailing bytes are an error).
    pub fn expect_end(&self) -> Result<(), NetError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(NetError::Codec(format!(
                "{} trailing bytes after message",
                self.data.len() - self.pos
            )))
        }
    }
}

fn cmpop_from(t: u8) -> Result<CmpOp, NetError> {
    Ok(match t {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(NetError::Codec(format!("bad cmp op {t}"))),
    })
}

fn binop_from(t: u8) -> Result<BinOp, NetError> {
    Ok(match t {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Concat,
        _ => return Err(NetError::Codec(format!("bad bin op {t}"))),
    })
}

/// Reconstructs a [`DelegationId`] from its raw wire value (revocations ship
/// ids without the rule body, so the receiver cannot recompute them).
fn delegation_id_from_raw(raw: u64) -> DelegationId {
    DelegationId::from_raw(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn sample_fact() -> WFact {
        WFact::new(
            "pictures",
            "sigmod",
            vec![
                Value::from(32),
                Value::from("sea.jpg"),
                Value::from("Émilien"),
                Value::bytes(&[1, 0, 0, 255]),
                Value::Bool(true),
            ],
        )
    }

    #[test]
    fn fact_message_round_trip() {
        let msg = Message::new(
            sym("emilien"),
            sym("sigmod"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![sample_fact()],
                retractions: vec![WFact::new("r", "sigmod", vec![Value::from(-9)])],
            },
        );
        let bytes = encode(&msg);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn delegation_message_round_trip() {
        let rule = WRule::example_attendee_pictures("Jules");
        let d = Delegation::new(sym("Jules"), sym("Emilien"), rule);
        let msg = Message::new(
            sym("Jules"),
            sym("Emilien"),
            Payload::Delegate(vec![d.clone()]),
        );
        let back = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
        if let Payload::Delegate(ds) = back.payload {
            assert_eq!(ds[0].id, d.id);
        }
    }

    #[test]
    fn revoke_message_round_trip() {
        let rule = WRule::example_attendee_pictures("Jules");
        let d = Delegation::new(sym("a"), sym("b"), rule);
        let msg = Message::new(sym("a"), sym("b"), Payload::Revoke(vec![d.id]));
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn complex_rule_round_trip() {
        let r = wdl_parser::parse_rule(
            "out@p($y) :- n@p($x), $x >= 2, not blocked@p($x), $y := ($x * 3) ++ \"\";",
        );
        // The rule above is type-nonsense but structurally valid — if the
        // parser rejects it, build structurally instead.
        let rule = match r {
            Ok(rule) => rule,
            Err(_) => WRule::example_attendee_pictures("p"),
        };
        let d = Delegation::new(sym("x"), sym("y"), rule);
        let msg = Message::new(sym("x"), sym("y"), Payload::Delegate(vec![d]));
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn session_frame_round_trip() {
        let msg = Message::new(
            sym("a"),
            sym("b"),
            Payload::Session(vec![7, 0, 0, 1, 2, 3, 0xFF]),
        );
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        let empty = Message::new(sym("a"), sym("b"), Payload::Session(vec![]));
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn truncated_frames_error() {
        let msg = Message::new(sym("a"), sym("b"), Payload::Revoke(vec![]));
        let bytes = encode(&msg);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let msg = Message::new(sym("a"), sym("b"), Payload::Revoke(vec![]));
        let mut bytes = encode(&msg).to_vec();
        bytes[0] = 99;
        assert!(matches!(decode(&bytes), Err(NetError::Codec(_))));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let msg = Message::new(sym("a"), sym("b"), Payload::Revoke(vec![]));
        let mut bytes = encode(&msg).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn corrupted_delegation_id_detected() {
        let rule = WRule::example_attendee_pictures("Jules");
        let d = Delegation::new(sym("a"), sym("b"), rule);
        let msg = Message::new(sym("a"), sym("b"), Payload::Delegate(vec![d]));
        let mut bytes = encode(&msg).to_vec();
        // Flip one bit in the 8-byte id that follows the payload tag+count.
        // Layout: version(1) from(4+1) to(4+1) tag(1) count(4) id(8).
        let id_offset = 1 + 5 + 5 + 1 + 4;
        bytes[id_offset] ^= 0xff;
        assert!(decode(&bytes).is_err());
    }

    /// One message per payload variant, collectively covering every value,
    /// term, name-term, body-item and expression shape the wire knows.
    fn fuzz_corpus() -> Vec<Message> {
        let all_values_fact = sample_fact();
        let facts_persistent = Message::new(
            sym("fz-a"),
            sym("fz-b"),
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![all_values_fact.clone()],
                retractions: vec![WFact::new("r", "fz-b", vec![Value::from(i64::MIN)])],
            },
        );
        let facts_derived = Message::new(
            sym("fz-b"),
            sym("fz-a"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![],
                retractions: vec![all_values_fact],
            },
        );
        // A rule with a negated literal, a comparison, an assignment with a
        // nested binary expression, and peer/relation variables.
        let rule = WRule::new(
            WAtom::new(
                wdl_core::NameTerm::var("rel"),
                wdl_core::NameTerm::var("peer"),
                vec![Term::var("y")],
            ),
            vec![
                WBodyItem::Literal(WLiteral::pos(WAtom::at("n", "p", vec![Term::var("x")]))),
                WBodyItem::Literal(WLiteral::neg(WAtom::at(
                    "blocked",
                    "p",
                    vec![Term::var("x")],
                ))),
                WBodyItem::Cmp {
                    op: CmpOp::Ge,
                    lhs: Term::var("x"),
                    rhs: Term::Const(Value::from(2)),
                },
                WBodyItem::Assign {
                    var: Symbol::intern("y"),
                    expr: Expr::bin(
                        BinOp::Concat,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::Term(Term::var("x")),
                            Expr::Term(Term::Const(Value::from(3))),
                        ),
                        Expr::Term(Term::Const(Value::str(""))),
                    ),
                },
            ],
        );
        let d1 = Delegation::new(sym("fz-a"), sym("fz-b"), rule);
        let d2 = Delegation::new(
            sym("fz-b"),
            sym("fz-a"),
            WRule::example_attendee_pictures("fz-a"),
        );
        let delegate = Message::new(
            sym("fz-a"),
            sym("fz-b"),
            Payload::Delegate(vec![d1, d2.clone()]),
        );
        let revoke = Message::new(sym("fz-b"), sym("fz-a"), Payload::Revoke(vec![d2.id]));
        let session = Message::new(
            sym("fz-a"),
            sym("fz-b"),
            Payload::Session(vec![0x5E, 0x55, 0x10, 0, 1, 2, 3, 255]),
        );
        vec![facts_persistent, facts_derived, delegate, revoke, session]
    }

    /// The decoder must be total: whatever bytes arrive, the result is a
    /// clean `Ok` or `NetError::Codec` — never a panic, never a different
    /// error class. Seeded, so any failure replays.
    #[test]
    fn mutation_fuzz_decodes_cleanly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0DEC);
        let check = |bytes: &[u8], what: &str| match decode(bytes) {
            Ok(_) | Err(NetError::Codec(_)) => {}
            Err(other) => panic!("{what}: unexpected error class: {other}"),
        };
        for msg in fuzz_corpus() {
            let bytes = encode(&msg).to_vec();
            // Every truncation point.
            for cut in 0..bytes.len() {
                check(&bytes[..cut], "truncation");
            }
            // Random bit flips, 1–4 bytes at a time.
            for _ in 0..300 {
                let mut b = bytes.clone();
                for _ in 0..rng.gen_range(1..=4usize) {
                    let i = rng.gen_range(0..b.len());
                    b[i] ^= 1 << rng.gen_range(0..8u32);
                }
                check(&b, "bit flip");
            }
            // Random splices: overwrite a window with random bytes, or
            // insert/remove a small chunk.
            for _ in 0..150 {
                let mut b = bytes.clone();
                match rng.gen_range(0..3u8) {
                    0 => {
                        let start = rng.gen_range(0..b.len());
                        let len = rng.gen_range(1..=8usize).min(b.len() - start);
                        for x in &mut b[start..start + len] {
                            *x = rng.gen::<u8>();
                        }
                    }
                    1 => {
                        let at = rng.gen_range(0..=b.len());
                        let chunk: Vec<u8> = (0..rng.gen_range(1..=6usize))
                            .map(|_| rng.gen::<u8>())
                            .collect();
                        b.splice(at..at, chunk);
                    }
                    _ => {
                        let at = rng.gen_range(0..b.len());
                        let len = rng.gen_range(1..=6usize).min(b.len() - at);
                        b.drain(at..at + len);
                    }
                }
                check(&b, "splice");
            }
        }
    }

    /// An adversarial frame nesting expressions past the cap is rejected
    /// cleanly instead of blowing the decoder's stack.
    #[test]
    fn deep_expression_nesting_is_rejected() {
        let mut buf = BytesMut::with_capacity(256);
        buf.put_u8(WIRE_VERSION);
        put_symbol(&mut buf, sym("deep-a"));
        put_symbol(&mut buf, sym("deep-b"));
        buf.put_u8(1); // Payload::Delegate
        buf.put_u32_le(1);
        buf.put_u64_le(0); // id (never reached)
        put_symbol(&mut buf, sym("deep-a"));
        put_symbol(&mut buf, sym("deep-b"));
        // Rule head.
        put_atom(&mut buf, &WAtom::at("h", "deep-a", vec![Term::var("x")]));
        buf.put_u32_le(1); // one body item
        buf.put_u8(2); // Assign
        put_symbol(&mut buf, sym("x"));
        for _ in 0..(MAX_EXPR_DEPTH + 8) {
            buf.put_u8(1); // Expr::Bin
            buf.put_u8(0); // Add
        }
        let err = decode(&buf).unwrap_err();
        assert!(
            err.to_string().contains("nests deeper"),
            "wanted the depth error, got: {err}"
        );
    }

    #[test]
    fn unicode_symbols_survive() {
        let msg = Message::new(
            sym("Émilien"),
            sym("sigmod"),
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![WFact::new("amis", "sigmod", vec![Value::from("Émilien")])],
                retractions: vec![],
            },
        );
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }
}
