//! Error type for transports and the wire codec.

use std::fmt;

/// Errors raised by transports.
#[derive(Debug)]
pub enum NetError {
    /// Malformed or truncated wire data.
    Codec(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The target peer is not known to this transport.
    UnknownPeer(String),
    /// The peer already has an endpoint on this network.
    DuplicateEndpoint(String),
    /// The transport has been shut down.
    Closed,
    /// The peer is currently unreachable (link down or the bounded
    /// outbox is full). Recoverable: retry the send on a later step.
    PeerUnreachable(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(m) => write!(f, "codec error: {m}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::UnknownPeer(p) => write!(f, "unknown peer: {p}"),
            NetError::DuplicateEndpoint(p) => {
                write!(f, "endpoint for {p} already exists")
            }
            NetError::Closed => write!(f, "transport closed"),
            NetError::PeerUnreachable(p) => {
                write!(f, "peer {p} unreachable (retry later)")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::Codec("x".into()).to_string().contains("codec"));
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::UnknownPeer("p".into()).to_string().contains('p'));
        assert!(NetError::DuplicateEndpoint("p".into())
            .to_string()
            .contains("already exists"));
        assert!(NetError::PeerUnreachable("p".into())
            .to_string()
            .contains("unreachable"));
    }
}
