//! # wdl-net — transports for WebdamLog peers
//!
//! The original system ran peers on attendee laptops, smartphones and the
//! Webdam cloud (Figure 2). This crate provides the two substrates our
//! reproduction runs on:
//!
//! * [`memory`] — a deterministic in-process network (crossbeam channels)
//!   with optional failure injection, used by tests and benches;
//! * [`tcp`] — a real TCP transport (std::net + threads) with
//!   length-prefixed binary frames, proving the engine is genuinely
//!   distributed across processes;
//! * [`codec`] — the compact hand-rolled binary wire format shared by both
//!   (the offline dependency allowlist has no serde *format* crate, so the
//!   codec is written here, over `bytes`);
//! * [`node`] — glue that drives a [`wdl_core::Peer`] over any
//!   [`Transport`];
//! * [`session`] — a reliable delivery layer over any transport:
//!   incarnation-tagged sessions, acks + retransmission, exactly-once
//!   in-order delivery, liveness, backpressure, and durable watermarks
//!   for crash-proof convergence;
//! * [`sim`] — a deterministic seeded discrete-event network simulator
//!   (drop/duplicate/reorder/delay/partition/crash) with a convergence
//!   oracle, for conformance testing the full peer stack;
//! * [`chaos`] — a seeded loopback TCP chaos proxy (drop / delay / sever /
//!   torn frames) for exercising the session layer over real sockets.
//!
//! Stage semantics are transport-independent: a peer ingests whatever
//! messages arrived since its previous stage, wherever they came from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod codec;
mod error;
pub mod memory;
pub mod node;
pub mod session;
pub mod sim;
pub mod snapshot;
pub mod tcp;
mod transport;

pub use error::NetError;
pub use transport::{Transport, TransportEvent, WatermarkNote};
