//! Per-remote link state: both directions of one session.

use std::collections::BTreeMap;

/// Liveness verdict for a remote peer.
///
/// Driven by silence while traffic toward the peer is outstanding; any
/// frame received from the peer snaps it back to [`PeerHealth::Up`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum PeerHealth {
    /// Responding (or nothing is outstanding to judge it by).
    Up,
    /// Silent past the suspicion window; a probe was sent.
    Suspect,
    /// Silent past the down threshold; still probed at the capped
    /// backoff so recovery is detected.
    Down,
}

/// One unacknowledged outbound frame.
pub(crate) struct OutFrame {
    /// Encoded application message (replaced by an empty derived-facts
    /// diff if the remote restarts before acking — see
    /// [`Link::blank_derived`]).
    pub bytes: Vec<u8>,
    /// Whether the payload is a derived-facts diff, invalid to replay
    /// across a remote restart.
    pub derived: bool,
    /// Retransmission attempts so far.
    pub attempts: u32,
    /// Virtual/wall time (µs) of the next retransmission.
    pub next_retry: u64,
    /// Selectively acked: buffered out-of-order at the receiver, so
    /// retransmission is skipped — but the frame is only dropped once the
    /// cumulative ack passes it (a receiver restart empties its buffer,
    /// which clears this flag via [`Link::note_remote_incarnation`]).
    pub sacked: bool,
}

/// What an incoming frame's incarnation tag told us about the remote.
pub(crate) enum IncVerdict {
    /// Older than an incarnation we have already seen: a ghost from a
    /// dead process. Drop the frame.
    Stale,
    /// The incarnation we know.
    Current,
    /// First word from this peer. The caller surfaces
    /// [`crate::TransportEvent::PeerRestarted`] conservatively: the
    /// sender cannot know what an unseen incarnation already holds (it
    /// may have crashed and recovered before ever reaching us), so a
    /// full resync is the safe default. Queued frames are *not* blanked
    /// — in-order delivery applies their retractions correctly.
    FirstContact,
    /// A higher incarnation: the remote crashed and came back. Inbound
    /// state was reset; the caller must blank queued derived diffs and
    /// surface [`crate::TransportEvent::PeerRestarted`].
    Restarted,
}

/// Session state for one remote peer (both directions).
pub(crate) struct Link {
    /// Highest remote incarnation seen (seeded from the durable
    /// delivered-watermark on recovery; `None` before first contact).
    pub remote_inc: Option<u64>,

    // Outbound ---------------------------------------------------------
    /// Next sequence number to assign (first frame is 1).
    pub next_seq: u64,
    /// Sent-but-unacked frames by sequence number.
    pub unacked: BTreeMap<u64, OutFrame>,
    /// Highest cumulative ack received for our current incarnation.
    pub acked_cum: u64,
    /// `acked_cum` as of the last watermark note handed to the peer.
    pub noted_acked: u64,

    // Inbound ----------------------------------------------------------
    /// Contiguous prefix handed to the application.
    pub delivered_cum: u64,
    /// Contiguous prefix the application has durably committed — what
    /// acks advertise. Never ahead of `delivered_cum`.
    pub committed_cum: u64,
    /// `delivered_cum` as of the last watermark note.
    pub noted_delivered: u64,
    /// Out-of-order frames buffered above `delivered_cum`, as
    /// `(echo, encoded message)`.
    pub ooo: BTreeMap<u64, (u64, Vec<u8>)>,
    /// An ack should be sent at the next flush point.
    pub ack_dirty: bool,

    // Liveness ---------------------------------------------------------
    pub health: PeerHealth,
    /// Time (µs) of the last frame received from the remote (link
    /// creation time before first contact).
    pub last_heard: u64,
    /// Time (µs) of the last frame sent to the remote.
    pub last_tx: u64,
    /// A recovery `Hello` announcement is owed (set when the link was
    /// rebuilt from durable watermarks after a restart).
    pub needs_hello: bool,

    // Stats -------------------------------------------------------------
    pub retransmits: u64,
    pub dup_drops: u64,
}

impl Link {
    pub(crate) fn new(now: u64) -> Link {
        Link {
            remote_inc: None,
            next_seq: 1,
            unacked: BTreeMap::new(),
            acked_cum: 0,
            noted_acked: 0,
            delivered_cum: 0,
            committed_cum: 0,
            noted_delivered: 0,
            ooo: BTreeMap::new(),
            ack_dirty: false,
            health: PeerHealth::Up,
            last_heard: now,
            last_tx: now,
            needs_hello: false,
            retransmits: 0,
            dup_drops: 0,
        }
    }

    /// A link rebuilt from the durable delivered-watermark after this
    /// peer restarted: dedup floor seeded, announcement owed.
    pub(crate) fn recovered(now: u64, remote_inc: u64, committed: u64) -> Link {
        let mut l = Link::new(now);
        l.remote_inc = Some(remote_inc);
        l.delivered_cum = committed;
        l.committed_cum = committed;
        l.noted_delivered = committed;
        l.needs_hello = true;
        l
    }

    /// Classifies an incoming frame's incarnation and, on a restart,
    /// resets inbound state (the new incarnation numbers from 1) and
    /// clears selective-ack flags (the restarted remote lost its
    /// out-of-order buffer, so "already buffered" no longer holds).
    pub(crate) fn note_remote_incarnation(&mut self, inc: u64) -> IncVerdict {
        match self.remote_inc {
            Some(seen) if inc < seen => IncVerdict::Stale,
            Some(seen) if inc == seen => IncVerdict::Current,
            Some(_) => {
                self.remote_inc = Some(inc);
                self.delivered_cum = 0;
                self.committed_cum = 0;
                self.noted_delivered = 0;
                self.ooo.clear();
                self.ack_dirty = true;
                for f in self.unacked.values_mut() {
                    f.sacked = false;
                }
                IncVerdict::Restarted
            }
            None => {
                self.remote_inc = Some(inc);
                IncVerdict::FirstContact
            }
        }
    }

    /// Replaces queued derived-facts diffs with empty ones (same
    /// sequence numbers, so the cumulative ack still advances). Called
    /// when the remote restarts: its transient derived contributions are
    /// gone, and replaying a diff against state that no longer exists
    /// could resurrect retracted derivations. The application re-sends
    /// the full derived state instead (see
    /// [`wdl_core::Peer::resync_target`]).
    pub(crate) fn blank_derived(&mut self, blank: impl Fn() -> Vec<u8>) {
        for f in self.unacked.values_mut() {
            if f.derived {
                f.bytes = blank();
                f.derived = false;
            }
        }
    }

    /// Protocol work still in flight on this link.
    pub(crate) fn pending_work(&self) -> usize {
        self.unacked.len()
            + self.ooo.len()
            + usize::from(self.ack_dirty)
            + usize::from(self.delivered_cum > self.committed_cum)
            + usize::from(self.needs_hello)
    }
}
