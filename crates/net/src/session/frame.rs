//! Wire format of the three session frames.
//!
//! Frames travel inside [`wdl_core::Payload::Session`] envelopes, encoded
//! with the same little-endian primitives as the rest of the codec. The
//! protocol needs exactly three shapes — the handshake is implicit in the
//! incarnation tag every frame carries, so there is no separate SYN
//! exchange and the first data frame already does useful work.

use crate::codec::Reader;
use crate::NetError;
use bytes::{BufMut, BytesMut};

/// One session-layer frame.
#[derive(Clone, Debug, Eq, PartialEq)]
pub(crate) enum SessionFrame {
    /// A sequenced application message. `bytes` is the codec encoding of
    /// the wrapped [`wdl_core::Message`].
    Data {
        /// Sender's incarnation.
        inc: u64,
        /// The receiver incarnation the sender had seen when it
        /// *transmitted* this copy, offset by one (`0` = never heard from
        /// the receiver). A receiver at a higher incarnation knows a
        /// derived-facts payload predates its restart and blanks it
        /// locally — closing the race where retransmissions of stale
        /// diffs arrive before the sender detects the restart.
        echo: u64,
        /// Sequence number under that incarnation (first frame is 1).
        seq: u64,
        /// Encoded application message.
        bytes: Vec<u8>,
    },
    /// Acknowledgement. `inc` is the *receiver's* incarnation (so acks
    /// also detect receiver restarts); `data_inc` names the sender
    /// incarnation whose sequence space `cum`/`selective` refer to.
    Ack {
        /// Acking peer's incarnation.
        inc: u64,
        /// Incarnation of the data stream being acknowledged.
        data_inc: u64,
        /// Every seq ≤ `cum` is durably committed at the receiver.
        cum: u64,
        /// Out-of-order frames buffered above `cum` (no need to resend).
        selective: Vec<u64>,
    },
    /// Announcement / probe / heartbeat: "this is my incarnation, tell me
    /// your watermark". The receiver replies with an `Ack` built from its
    /// stored state.
    Hello {
        /// Sender's incarnation.
        inc: u64,
    },
}

impl SessionFrame {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            SessionFrame::Data {
                inc,
                echo,
                seq,
                bytes,
            } => {
                buf.put_u8(0);
                buf.put_u64_le(*inc);
                buf.put_u64_le(*echo);
                buf.put_u64_le(*seq);
                buf.put_u32_le(bytes.len() as u32);
                buf.put_slice(bytes);
            }
            SessionFrame::Ack {
                inc,
                data_inc,
                cum,
                selective,
            } => {
                buf.put_u8(1);
                buf.put_u64_le(*inc);
                buf.put_u64_le(*data_inc);
                buf.put_u64_le(*cum);
                buf.put_u32_le(selective.len() as u32);
                for s in selective {
                    buf.put_u64_le(*s);
                }
            }
            SessionFrame::Hello { inc } => {
                buf.put_u8(2);
                buf.put_u64_le(*inc);
            }
        }
        buf.to_vec()
    }

    pub(crate) fn decode(data: &[u8]) -> Result<SessionFrame, NetError> {
        let mut r = Reader::new(data);
        let frame = match r.u8()? {
            0 => {
                let inc = r.u64()?;
                let echo = r.u64()?;
                let seq = r.u64()?;
                let n = r.len()?;
                SessionFrame::Data {
                    inc,
                    echo,
                    seq,
                    bytes: r.take(n)?.to_vec(),
                }
            }
            1 => {
                let inc = r.u64()?;
                let data_inc = r.u64()?;
                let cum = r.u64()?;
                let n = r.len()?;
                let mut selective = Vec::with_capacity(n);
                for _ in 0..n {
                    selective.push(r.u64()?);
                }
                SessionFrame::Ack {
                    inc,
                    data_inc,
                    cum,
                    selective,
                }
            }
            2 => SessionFrame::Hello { inc: r.u64()? },
            t => {
                return Err(NetError::Codec(format!("bad session frame tag {t}")));
            }
        };
        r.expect_end()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = [
            SessionFrame::Data {
                inc: 3,
                echo: 5,
                seq: 17,
                bytes: vec![1, 2, 3, 255, 0],
            },
            SessionFrame::Data {
                inc: 0,
                echo: 0,
                seq: 1,
                bytes: vec![],
            },
            SessionFrame::Ack {
                inc: 9,
                data_inc: 2,
                cum: 41,
                selective: vec![43, 44, 47],
            },
            SessionFrame::Ack {
                inc: 0,
                data_inc: 0,
                cum: 0,
                selective: vec![],
            },
            SessionFrame::Hello { inc: u64::MAX },
        ];
        for f in frames {
            assert_eq!(SessionFrame::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn bad_tag_and_truncation_error() {
        assert!(SessionFrame::decode(&[9]).is_err());
        assert!(SessionFrame::decode(&[]).is_err());
        let good = SessionFrame::Hello { inc: 7 }.encode();
        for cut in 0..good.len() {
            assert!(SessionFrame::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected, not ignored.
        let mut padded = good;
        padded.push(0);
        assert!(SessionFrame::decode(&padded).is_err());
    }
}
