//! The session endpoint: a [`Transport`] wrapper adding reliability.

use super::frame::SessionFrame;
use super::link::{IncVerdict, Link, OutFrame, PeerHealth};
use super::{Clock, SessionConfig, WallClock};
use crate::{codec, NetError, Transport, TransportEvent, WatermarkNote};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use wdl_core::{FactKind, Message, Payload};
use wdl_datalog::Symbol;

/// Aggregate counters across every link of one endpoint.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct SessionStats {
    /// Data frames retransmitted.
    pub retransmits: u64,
    /// Duplicate data frames dropped by the dedup window.
    pub dup_drops: u64,
    /// Frames (or wrapped messages) that failed to decode.
    pub decode_errors: u64,
    /// Derived-facts payloads blanked on delivery because they were
    /// transmitted before the sender learned of this peer's restart.
    pub stale_derived_dropped: u64,
    /// Live links.
    pub links: usize,
    /// Frames currently awaiting acknowledgement, across all links.
    pub unacked: usize,
}

/// Reliable-delivery wrapper around any raw [`Transport`].
///
/// See the [module docs](crate::session) for the protocol. The wrapper is
/// transparent to unsessioned correspondents: non-session payloads drain
/// straight through, and a raw peer simply ignores session frames (the
/// stage loop counts them as rejected).
pub struct SessionEndpoint<T: Transport> {
    inner: T,
    me: Symbol,
    inc: u64,
    cfg: SessionConfig,
    clock: Box<dyn Clock>,
    links: BTreeMap<Symbol, Link>,
    rng: StdRng,
    events: Vec<TransportEvent>,
    decode_errors: u64,
    stale_derived_dropped: u64,
    /// Per-remote retransmit counts since the last
    /// [`Transport::take_retransmit_counts`] (bounded by link count).
    retrans_trace: BTreeMap<Symbol, u64>,
}

/// FNV-1a over the peer's *name string* — stable across runs, unlike
/// interned symbol ids, so simulation replays are seed-exact.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<T: Transport> SessionEndpoint<T> {
    /// Wraps `inner` with a fresh session state under `incarnation`,
    /// using wall time for retransmission and liveness.
    pub fn new(inner: T, incarnation: u64, cfg: SessionConfig) -> SessionEndpoint<T> {
        Self::with_clock(inner, incarnation, cfg, Box::new(WallClock::new()))
    }

    /// Like [`SessionEndpoint::new`] with an injected clock (the
    /// simulator passes its virtual clock).
    pub fn with_clock(
        inner: T,
        incarnation: u64,
        cfg: SessionConfig,
        clock: Box<dyn Clock>,
    ) -> SessionEndpoint<T> {
        let me = inner.peer_name();
        let rng = StdRng::seed_from_u64(fnv1a(me.as_str()) ^ cfg.seed);
        SessionEndpoint {
            inner,
            me,
            inc: incarnation,
            cfg,
            clock,
            links: BTreeMap::new(),
            rng,
            events: Vec::new(),
            decode_errors: 0,
            stale_derived_dropped: 0,
            retrans_trace: BTreeMap::new(),
        }
    }

    /// Rebuilds sessions after a crash from the peer's durable
    /// watermarks (see [`wdl_core::Peer::session_watermarks`]).
    /// `incarnation` must exceed every incarnation this peer has used
    /// before. Each correspondent's delivered-watermark seeds the dedup
    /// floor (frames the previous life durably committed are dropped,
    /// not re-applied), and every correspondent is owed a `Hello`
    /// announcing the new incarnation on the first tick.
    pub fn recover(
        inner: T,
        incarnation: u64,
        cfg: SessionConfig,
        clock: Box<dyn Clock>,
        watermarks: &BTreeMap<(Symbol, u8), (u64, u64)>,
    ) -> SessionEndpoint<T> {
        let mut ep = Self::with_clock(inner, incarnation, cfg, clock);
        let now = ep.clock.now_micros();
        for (&(remote, dir), &(inc, seq)) in watermarks {
            if dir == 0 {
                ep.links.insert(remote, Link::recovered(now, inc, seq));
            } else {
                // Acked-by watermarks only tell us who we were talking
                // to (the new incarnation renumbers outbound anyway) —
                // still worth a Hello so they detect the restart.
                ep.links
                    .entry(remote)
                    .or_insert_with(|| Link::new(now))
                    .needs_hello = true;
            }
        }
        ep
    }

    /// This endpoint's incarnation.
    pub fn incarnation(&self) -> u64 {
        self.inc
    }

    /// The wrapped raw transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped raw transport, mutably.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps, discarding session state.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Current liveness verdict for `remote` (`None` before any link).
    pub fn health_of(&self, remote: Symbol) -> Option<PeerHealth> {
        self.links.get(&remote).map(|l| l.health)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SessionStats {
        let mut s = SessionStats {
            decode_errors: self.decode_errors,
            stale_derived_dropped: self.stale_derived_dropped,
            links: self.links.len(),
            ..SessionStats::default()
        };
        for l in self.links.values() {
            s.retransmits += l.retransmits;
            s.dup_drops += l.dup_drops;
            s.unacked += l.unacked.len();
        }
        s
    }

    fn backoff(cfg: &SessionConfig, rng: &mut StdRng, attempts: u32) -> u64 {
        let pow = attempts.min(6);
        let base = cfg
            .backoff_base_micros
            .saturating_mul(1u64 << pow)
            .min(cfg.backoff_cap_micros);
        let jitter = rng.gen_range(750..=1250u64);
        (base.saturating_mul(jitter) / 1000)
            .min(cfg.backoff_cap_micros)
            .max(1)
    }

    /// `echo` value for frames transmitted now: the remote incarnation we
    /// have seen, shifted so 0 means "never heard from them".
    fn echo_for(link: &Link) -> u64 {
        link.remote_inc.map_or(0, |i| i + 1)
    }

    /// Sends owed recovery/announcement Hellos.
    fn announce(&mut self, now: u64) {
        let mut hellos = Vec::new();
        for (&remote, link) in self.links.iter_mut() {
            if link.needs_hello {
                link.needs_hello = false;
                link.last_tx = now;
                hellos.push(remote);
            }
        }
        if hellos.is_empty() {
            return;
        }
        let frame = SessionFrame::Hello { inc: self.inc }.encode();
        for remote in hellos {
            let _ = self.inner.send(Message::new(
                self.me,
                remote,
                Payload::Session(frame.clone()),
            ));
        }
    }

    fn deliver(
        bytes: &[u8],
        echo: u64,
        my_inc: u64,
        out: &mut Vec<Message>,
        decode_errors: &mut u64,
        stale_drops: &mut u64,
    ) {
        match codec::decode(bytes) {
            Ok(m) => {
                // A derived diff transmitted before the sender saw our
                // current incarnation was computed against contributions
                // we lost in the crash; applying it could resurrect
                // retracted derivations. The sender blanks and resyncs
                // once it learns of the restart — blank locally until
                // then. Persistent payloads are idempotent set ops over
                // durable state and apply regardless.
                let stale = echo > 0 && echo - 1 < my_inc;
                if stale
                    && matches!(
                        m.payload,
                        Payload::Facts {
                            kind: FactKind::Derived,
                            ..
                        }
                    )
                {
                    *stale_drops += 1;
                } else {
                    out.push(m);
                }
            }
            Err(_) => *decode_errors += 1,
        }
    }

    fn handle_frame(
        &mut self,
        from: Symbol,
        frame: SessionFrame,
        now: u64,
        delivered: &mut Vec<Message>,
    ) {
        let me = self.me;
        let my_inc = self.inc;
        let inc = match &frame {
            SessionFrame::Data { inc, .. }
            | SessionFrame::Ack { inc, .. }
            | SessionFrame::Hello { inc } => *inc,
        };
        let link = self.links.entry(from).or_insert_with(|| Link::new(now));
        link.last_heard = now;
        link.health = PeerHealth::Up;
        match link.note_remote_incarnation(inc) {
            IncVerdict::Stale => return,
            IncVerdict::Current => {}
            IncVerdict::FirstContact => {
                // Conservative resync: we cannot know what this
                // incarnation holds (it may have recovered from a crash
                // that ate our earlier diffs before ever answering us).
                self.events.push(TransportEvent::PeerRestarted(from));
            }
            IncVerdict::Restarted => {
                link.blank_derived(|| {
                    codec::encode(&Message::new(
                        me,
                        from,
                        Payload::Facts {
                            kind: FactKind::Derived,
                            additions: Vec::new(),
                            retractions: Vec::new(),
                        },
                    ))
                    .to_vec()
                });
                self.events.push(TransportEvent::PeerRestarted(from));
            }
        }
        let link = self.links.get_mut(&from).expect("link just touched");
        match frame {
            SessionFrame::Data {
                echo, seq, bytes, ..
            } => {
                if seq <= link.delivered_cum {
                    link.dup_drops += 1;
                    link.ack_dirty = true;
                } else if seq == link.delivered_cum + 1 {
                    link.delivered_cum = seq;
                    Self::deliver(
                        &bytes,
                        echo,
                        my_inc,
                        delivered,
                        &mut self.decode_errors,
                        &mut self.stale_derived_dropped,
                    );
                    while let Some((e, b)) = link.ooo.remove(&(link.delivered_cum + 1)) {
                        link.delivered_cum += 1;
                        Self::deliver(
                            &b,
                            e,
                            my_inc,
                            delivered,
                            &mut self.decode_errors,
                            &mut self.stale_derived_dropped,
                        );
                    }
                    link.ack_dirty = true;
                } else {
                    link.ooo.entry(seq).or_insert((echo, bytes));
                    link.ack_dirty = true;
                }
            }
            SessionFrame::Ack {
                data_inc,
                cum,
                selective,
                ..
            } => {
                // Acks for a previous incarnation of ours reference a
                // sequence space we no longer use.
                if data_inc == my_inc {
                    if cum > link.acked_cum {
                        link.acked_cum = cum;
                        let keep = link.unacked.split_off(&(cum + 1));
                        link.unacked = keep;
                    }
                    for s in selective {
                        if let Some(f) = link.unacked.get_mut(&s) {
                            f.sacked = true;
                        }
                    }
                }
            }
            SessionFrame::Hello { .. } => {
                // Probe/announcement: answer with our stored watermark.
                link.ack_dirty = true;
            }
        }
    }

    fn retransmit_pass(&mut self, now: u64) {
        let mut out: Vec<(Symbol, Vec<u8>)> = Vec::new();
        for (&remote, link) in self.links.iter_mut() {
            let echo = link.remote_inc.map_or(0, |i| i + 1);
            let mut resent = 0u64;
            for (&seq, f) in link.unacked.iter_mut() {
                if f.sacked || now < f.next_retry {
                    continue;
                }
                f.attempts += 1;
                f.next_retry = now + Self::backoff(&self.cfg, &mut self.rng, f.attempts);
                resent += 1;
                out.push((
                    remote,
                    SessionFrame::Data {
                        inc: self.inc,
                        echo,
                        seq,
                        bytes: f.bytes.clone(),
                    }
                    .encode(),
                ));
            }
            if resent > 0 {
                link.retransmits += resent;
                link.last_tx = now;
                *self.retrans_trace.entry(remote).or_insert(0) += resent;
            }
        }
        for (remote, fb) in out {
            let _ = self
                .inner
                .send(Message::new(self.me, remote, Payload::Session(fb)));
        }
    }

    fn liveness_pass(&mut self, now: u64) {
        let mut probes = Vec::new();
        for (&remote, link) in self.links.iter_mut() {
            if !link.unacked.is_empty() {
                let silent = now.saturating_sub(link.last_heard);
                if silent >= self.cfg.down_after_micros {
                    if link.health != PeerHealth::Down {
                        link.health = PeerHealth::Down;
                        self.events.push(TransportEvent::Down(remote));
                    }
                } else if silent >= self.cfg.suspect_after_micros && link.health == PeerHealth::Up {
                    link.health = PeerHealth::Suspect;
                    self.events.push(TransportEvent::Suspect(remote));
                    probes.push(remote);
                    link.last_tx = now;
                }
            } else if self.cfg.idle_heartbeats
                && link.remote_inc.is_some()
                && now.saturating_sub(link.last_tx) >= self.cfg.heartbeat_every_micros
            {
                probes.push(remote);
                link.last_tx = now;
            }
        }
        if probes.is_empty() {
            return;
        }
        let frame = SessionFrame::Hello { inc: self.inc }.encode();
        for remote in probes {
            let _ = self.inner.send(Message::new(
                self.me,
                remote,
                Payload::Session(frame.clone()),
            ));
        }
    }

    fn flush_acks(&mut self, after_commit: bool, now: u64) {
        let mut acks = Vec::new();
        for (&remote, link) in self.links.iter_mut() {
            if !link.ack_dirty {
                continue;
            }
            // Fresh deliveries await the group commit; the ack
            // advertising them goes out from `commit_delivered` so acks
            // never outrun durability.
            if !after_commit && link.delivered_cum > link.committed_cum {
                continue;
            }
            let Some(data_inc) = link.remote_inc else {
                continue;
            };
            link.ack_dirty = false;
            link.last_tx = now;
            acks.push((
                remote,
                SessionFrame::Ack {
                    inc: self.inc,
                    data_inc,
                    cum: link.committed_cum,
                    selective: link.ooo.keys().copied().collect(),
                }
                .encode(),
            ));
        }
        for (remote, fb) in acks {
            let _ = self
                .inner
                .send(Message::new(self.me, remote, Payload::Session(fb)));
        }
    }
}

impl<T: Transport> Transport for SessionEndpoint<T> {
    fn peer_name(&self) -> Symbol {
        self.me
    }

    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        let now = self.clock.now_micros();
        let to = msg.to;
        let link = self.links.entry(to).or_insert_with(|| Link::new(now));
        if link.unacked.len() >= self.cfg.max_unacked {
            return Err(NetError::PeerUnreachable(to.to_string()));
        }
        let derived = matches!(
            msg.payload,
            Payload::Facts {
                kind: FactKind::Derived,
                ..
            }
        );
        let bytes = codec::encode(&msg).to_vec();
        let seq = link.next_seq;
        let envelope = Message::new(
            self.me,
            to,
            Payload::Session(
                SessionFrame::Data {
                    inc: self.inc,
                    echo: Self::echo_for(link),
                    seq,
                    bytes: bytes.clone(),
                }
                .encode(),
            ),
        );
        match self.inner.send(envelope) {
            // A target the transport has never heard of is the caller's
            // problem; a target we have a session with is just away —
            // queue and let retransmission find it.
            Err(NetError::UnknownPeer(p)) if link.remote_inc.is_none() => {
                return Err(NetError::UnknownPeer(p));
            }
            _ => {}
        }
        link.next_seq += 1;
        link.last_tx = now;
        let wait = Self::backoff(&self.cfg, &mut self.rng, 0);
        link.unacked.insert(
            seq,
            OutFrame {
                bytes,
                derived,
                attempts: 0,
                next_retry: now + wait,
                sacked: false,
            },
        );
        Ok(())
    }

    fn drain(&mut self) -> Vec<Message> {
        let now = self.clock.now_micros();
        self.announce(now);
        let mut delivered = Vec::new();
        for msg in self.inner.drain() {
            let from = msg.from;
            match msg.payload {
                Payload::Session(bytes) => match SessionFrame::decode(&bytes) {
                    Ok(frame) => self.handle_frame(from, frame, now, &mut delivered),
                    Err(_) => self.decode_errors += 1,
                },
                // An unsessioned correspondent: pass through untouched.
                _ => delivered.push(msg),
            }
        }
        self.retransmit_pass(now);
        self.liveness_pass(now);
        self.flush_acks(false, now);
        delivered
    }

    fn poll_events(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.events)
    }

    fn pending_work(&self) -> usize {
        self.links.values().map(Link::pending_work).sum()
    }

    fn watermarks(&mut self) -> Vec<WatermarkNote> {
        let mut out = Vec::new();
        for (&remote, link) in self.links.iter_mut() {
            if link.delivered_cum > link.noted_delivered {
                link.noted_delivered = link.delivered_cum;
                out.push(WatermarkNote {
                    remote,
                    dir: 0,
                    inc: link.remote_inc.unwrap_or(0),
                    seq: link.delivered_cum,
                });
            }
            if link.acked_cum > link.noted_acked {
                link.noted_acked = link.acked_cum;
                out.push(WatermarkNote {
                    remote,
                    dir: 1,
                    inc: self.inc,
                    seq: link.acked_cum,
                });
            }
        }
        out
    }

    fn commit_delivered(&mut self) {
        let now = self.clock.now_micros();
        for link in self.links.values_mut() {
            if link.delivered_cum > link.committed_cum {
                link.committed_cum = link.delivered_cum;
                link.ack_dirty = true;
            }
        }
        self.flush_acks(true, now);
    }

    fn take_retransmit_counts(&mut self) -> Vec<(Symbol, u64)> {
        if self.retrans_trace.is_empty() {
            return Vec::new();
        }
        std::mem::take(&mut self.retrans_trace)
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{FaultPlan, InMemoryNetwork};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use wdl_core::WFact;
    use wdl_datalog::Value;

    struct TestClock(Arc<AtomicU64>);

    impl Clock for TestClock {
        fn now_micros(&self) -> u64 {
            self.0.load(Ordering::SeqCst)
        }
    }

    fn pair(
        net: &InMemoryNetwork,
        a: &str,
        b: &str,
        cfg: SessionConfig,
        clock: &Arc<AtomicU64>,
    ) -> (
        SessionEndpoint<crate::memory::MemoryEndpoint>,
        SessionEndpoint<crate::memory::MemoryEndpoint>,
    ) {
        let ea = SessionEndpoint::with_clock(
            net.endpoint(a).unwrap(),
            0,
            cfg,
            Box::new(TestClock(Arc::clone(clock))),
        );
        let eb = SessionEndpoint::with_clock(
            net.endpoint(b).unwrap(),
            0,
            cfg,
            Box::new(TestClock(Arc::clone(clock))),
        );
        (ea, eb)
    }

    fn fact_msg(from: &str, to: &str, kind: FactKind, v: i64) -> Message {
        Message::new(
            Symbol::intern(from),
            Symbol::intern(to),
            Payload::Facts {
                kind,
                additions: vec![WFact::new("r", to, vec![Value::from(v)])],
                retractions: vec![],
            },
        )
    }

    fn payload_value(m: &Message) -> i64 {
        match &m.payload {
            Payload::Facts { additions, .. } => match additions[0].tuple[0] {
                Value::Int(i) => i,
                _ => panic!("unexpected value"),
            },
            p => panic!("unexpected payload {p:?}"),
        }
    }

    #[test]
    fn lossless_in_order_exactly_once() {
        let net = InMemoryNetwork::new();
        let clock = Arc::new(AtomicU64::new(0));
        let (mut a, mut b) = pair(&net, "sa", "sb", SessionConfig::default(), &clock);
        for i in 0..20 {
            a.send(fact_msg("sa", "sb", FactKind::Persistent, i))
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..6 {
            got.extend(b.drain());
            b.commit_delivered();
            let back = a.drain();
            assert!(back.is_empty(), "acks must not surface as app messages");
            a.commit_delivered();
            clock.fetch_add(1_000, Ordering::SeqCst);
        }
        assert_eq!(got.len(), 20);
        for (i, m) in got.iter().enumerate() {
            assert_eq!(payload_value(m), i as i64);
        }
        assert_eq!(a.pending_work(), 0, "all frames acked");
        assert_eq!(b.pending_work(), 0, "nothing buffered or unflushed");
        assert_eq!(
            a.stats().retransmits,
            0,
            "lossless link retransmits nothing"
        );
    }

    #[test]
    fn retransmission_recovers_from_drops() {
        let net = InMemoryNetwork::new();
        net.set_faults(FaultPlan {
            drop_every_nth: Some(3),
        });
        let clock = Arc::new(AtomicU64::new(0));
        let (mut a, mut b) = pair(&net, "ra", "rb", SessionConfig::default(), &clock);
        for i in 0..10 {
            a.send(fact_msg("ra", "rb", FactKind::Persistent, i))
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..200 {
            got.extend(b.drain());
            b.commit_delivered();
            got.extend(a.drain());
            a.commit_delivered();
            clock.fetch_add(2_000, Ordering::SeqCst);
            if got.len() == 10 && a.pending_work() == 0 && b.pending_work() == 0 {
                break;
            }
        }
        assert_eq!(got.len(), 10, "every message delivered exactly once");
        for (i, m) in got.iter().enumerate() {
            assert_eq!(payload_value(m), i as i64, "in order despite drops");
        }
        assert!(a.stats().retransmits > 0, "drops forced retransmissions");
        assert_eq!(a.pending_work(), 0);
        assert_eq!(b.pending_work(), 0);
    }

    #[test]
    fn bounded_outbox_surfaces_peer_unreachable() {
        let net = InMemoryNetwork::new();
        let clock = Arc::new(AtomicU64::new(0));
        let cfg = SessionConfig {
            max_unacked: 4,
            ..SessionConfig::default()
        };
        let (mut a, _b) = pair(&net, "ba", "bb", cfg, &clock);
        for i in 0..4 {
            a.send(fact_msg("ba", "bb", FactKind::Persistent, i))
                .unwrap();
        }
        assert!(matches!(
            a.send(fact_msg("ba", "bb", FactKind::Persistent, 99)),
            Err(NetError::PeerUnreachable(_))
        ));
    }

    #[test]
    fn unknown_peer_still_errors_before_first_contact() {
        let net = InMemoryNetwork::new();
        let clock = Arc::new(AtomicU64::new(0));
        let mut a = SessionEndpoint::with_clock(
            net.endpoint("ua").unwrap(),
            0,
            SessionConfig::default(),
            Box::new(TestClock(clock)),
        );
        assert!(matches!(
            a.send(fact_msg("ua", "ghost", FactKind::Persistent, 1)),
            Err(NetError::UnknownPeer(_))
        ));
        assert_eq!(a.pending_work(), 0, "nothing queued for an unknown target");
    }

    #[test]
    fn first_contact_triggers_conservative_resync_event() {
        let net = InMemoryNetwork::new();
        let clock = Arc::new(AtomicU64::new(0));
        let (mut a, mut b) = pair(&net, "fa", "fb", SessionConfig::default(), &clock);
        a.send(fact_msg("fa", "fb", FactKind::Persistent, 1))
            .unwrap();
        let _ = b.drain();
        b.commit_delivered();
        assert_eq!(
            b.poll_events(),
            vec![TransportEvent::PeerRestarted(Symbol::intern("fa"))]
        );
        let _ = a.drain(); // processes b's ack — first word from b
        assert_eq!(
            a.poll_events(),
            vec![TransportEvent::PeerRestarted(Symbol::intern("fb"))]
        );
        // Known incarnations do not re-trigger.
        a.send(fact_msg("fa", "fb", FactKind::Persistent, 2))
            .unwrap();
        let _ = b.drain();
        assert!(b.poll_events().is_empty());
    }

    #[test]
    fn receiver_restart_blanks_stale_derived_and_replays_persistent() {
        let net = InMemoryNetwork::new();
        let clock = Arc::new(AtomicU64::new(0));
        let (mut a, mut b) = pair(&net, "xa", "xb", SessionConfig::default(), &clock);

        // Establish the session both ways first.
        a.send(fact_msg("xa", "xb", FactKind::Persistent, 0))
            .unwrap();
        let est = b.drain();
        assert_eq!(est.len(), 1);
        b.commit_delivered();
        let _ = a.drain();
        let _ = a.poll_events();
        let _ = b.poll_events();

        // Queue a derived diff and a persistent fact; they reach b's
        // inbox but b "crashes" before draining them.
        a.send(fact_msg("xa", "xb", FactKind::Derived, 1)).unwrap();
        a.send(fact_msg("xa", "xb", FactKind::Persistent, 2))
            .unwrap();

        // b restarts under a higher incarnation, rebuilding its session
        // state from the durable delivered-watermark (seq 1 committed
        // under a's incarnation 0). The surviving inbox plays the role
        // of frames still in flight across the restart.
        let mut wm = BTreeMap::new();
        wm.insert((Symbol::intern("xa"), 0u8), (0u64, 1u64));
        let mut b = SessionEndpoint::recover(
            b.into_inner(),
            1,
            SessionConfig::default(),
            Box::new(TestClock(Arc::clone(&clock))),
            &wm,
        );

        // b's first tick announces the new incarnation, dedups nothing
        // (seqs 2 and 3 are above the durable floor), but blanks the
        // derived diff locally: its echo says a had only seen b's dead
        // incarnation when the frame was sent.
        let delivered = b.drain();
        b.commit_delivered();
        assert_eq!(delivered.len(), 1, "derived blanked, persistent kept");
        assert_eq!(payload_value(&delivered[0]), 2);
        assert_eq!(b.stats().stale_derived_dropped, 1);

        // a hears the Hello (restart detected → resync event, queued
        // derived blanked) and the post-commit ack (everything acked).
        let _ = a.drain();
        a.commit_delivered();
        assert!(
            a.poll_events()
                .contains(&TransportEvent::PeerRestarted(Symbol::intern("xb"))),
            "a saw b's restart"
        );
        assert_eq!(a.pending_work(), 0, "acks under the new incarnation land");
        // And nothing was ever delivered twice: the committed seq 1
        // stayed deduplicated.
        assert_eq!(b.stats().dup_drops, 0);
    }

    #[test]
    fn liveness_degrades_to_suspect_then_down_and_recovers() {
        let net = InMemoryNetwork::new();
        let clock = Arc::new(AtomicU64::new(0));
        let (mut a, mut b) = pair(&net, "la", "lb", SessionConfig::default(), &clock);
        a.send(fact_msg("la", "lb", FactKind::Persistent, 1))
            .unwrap();
        // b never drains; advance past the suspicion window.
        clock.fetch_add(10_000, Ordering::SeqCst);
        let _ = a.drain();
        assert_eq!(a.health_of(Symbol::intern("lb")), Some(PeerHealth::Suspect));
        assert!(a
            .poll_events()
            .contains(&TransportEvent::Suspect(Symbol::intern("lb"))));
        // Past the down threshold.
        clock.fetch_add(25_000, Ordering::SeqCst);
        let _ = a.drain();
        assert_eq!(a.health_of(Symbol::intern("lb")), Some(PeerHealth::Down));
        assert!(a
            .poll_events()
            .contains(&TransportEvent::Down(Symbol::intern("lb"))));
        // b finally answers: back to Up, frame delivered exactly once.
        let got = b.drain();
        assert_eq!(got.len(), 1);
        b.commit_delivered();
        let _ = a.drain();
        assert_eq!(a.health_of(Symbol::intern("lb")), Some(PeerHealth::Up));
        assert_eq!(a.pending_work(), 0);
    }

    #[test]
    fn watermarks_surface_delivery_and_ack_progress() {
        let net = InMemoryNetwork::new();
        let clock = Arc::new(AtomicU64::new(0));
        let (mut a, mut b) = pair(&net, "wa", "wb", SessionConfig::default(), &clock);
        for i in 0..3 {
            a.send(fact_msg("wa", "wb", FactKind::Persistent, i))
                .unwrap();
        }
        let got = b.drain();
        assert_eq!(got.len(), 3);
        let notes = b.watermarks();
        assert!(
            notes.contains(&WatermarkNote {
                remote: Symbol::intern("wa"),
                dir: 0,
                inc: 0,
                seq: 3
            }),
            "delivered watermark noted before commit: {notes:?}"
        );
        b.commit_delivered();
        let _ = a.drain();
        let notes = a.watermarks();
        assert!(
            notes.contains(&WatermarkNote {
                remote: Symbol::intern("wb"),
                dir: 1,
                inc: 0,
                seq: 3
            }),
            "acked watermark noted on the sender: {notes:?}"
        );
        // No progress → no new notes.
        assert!(b.watermarks().is_empty());
        assert!(a.watermarks().is_empty());
    }
}
