//! Global value interner: the engine's dense integer data plane.
//!
//! Joins dominate WebdamLog evaluation, and every join step used to pay a
//! deep [`Value`] hash (string/byte content) plus heap traffic for probe
//! keys and substitutions. Interning maps each distinct `Value` to a dense
//! `u32`-backed [`ValueId`] once, at the boundary where data enters the
//! engine; everything inside — tuple arenas, index keys, membership tables,
//! register-file substitutions — then works on flat integer slices, where
//! equality is one compare and hashing is a few multiplies.
//!
//! The design mirrors [`crate::Symbol`]: process-global, append-only,
//! read-mostly behind an `RwLock`. Two ids are equal iff the values they
//! intern are equal, so id comparison is value comparison. Append-only
//! means interned values are never reclaimed — unlike symbols (program
//! text) the value universe is data-sized, so workloads churning over
//! ever-fresh values grow the table monotonically; reclamation is on the
//! ROADMAP before long-lived production deployments. Ids are **not**
//! ordered like values (they are assigned in first-intern order) and are
//! **never serialized**: [`ValueId`] deliberately implements neither
//! `Serialize` nor `Deserialize`, so interning cannot leak onto the wire or
//! into snapshots by construction — boundaries resolve back to [`Value`].

use crate::{Tuple, Value};
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// A dense handle for an interned [`Value`]. `Copy`, 4 bytes, equality and
/// hashing are O(1) regardless of the value's size. Stable for the process
/// lifetime only — resolve with [`ValueId::value`] before anything leaves
/// the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

struct Interner {
    values: Vec<Value>,
    table: HashMap<Value, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            values: Vec::with_capacity(4096),
            table: HashMap::with_capacity(4096),
        })
    })
}

impl ValueId {
    /// Interns `value`, returning its id. Idempotent; values are compared
    /// structurally, so `intern` of equal values always returns equal ids.
    pub fn intern(value: &Value) -> ValueId {
        {
            let guard = interner().read().expect("value interner poisoned");
            if let Some(&id) = guard.table.get(value) {
                return ValueId(id);
            }
        }
        let mut guard = interner().write().expect("value interner poisoned");
        if let Some(&id) = guard.table.get(value) {
            return ValueId(id);
        }
        let id = u32::try_from(guard.values.len()).expect("value interner overflow");
        // `Value`'s heavy variants are `Arc`-backed, so keeping the value in
        // both the vector (id -> value) and the map (value -> id) costs two
        // refcounts, not two copies of the payload.
        guard.values.push(value.clone());
        guard.table.insert(value.clone(), id);
        ValueId(id)
    }

    /// Returns the id of `value` if it was ever interned, without
    /// inserting. A miss proves no relation in the process stores `value`
    /// (everything stored went through [`ValueId::intern`]), which lets
    /// probes for never-seen constants fail without growing the table.
    pub fn lookup(value: &Value) -> Option<ValueId> {
        interner()
            .read()
            .expect("value interner poisoned")
            .table
            .get(value)
            .copied()
            .map(ValueId)
    }

    /// Resolves the id back to its value (cheap: ints/bools copy, strings
    /// and blobs bump an `Arc`).
    pub fn value(self) -> Value {
        interner().read().expect("value interner poisoned").values[self.0 as usize].clone()
    }

    /// The raw id; stable within a process only. Exposed for accounting
    /// assertions and debugging — never persist or transmit it.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for ValueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}={}", self.0, self.value())
    }
}

/// Interns every value of `row` under a single lock acquisition (two when
/// the row contains values not seen before), appending the ids to `out`.
pub fn intern_row(row: &[Value], out: &mut Vec<ValueId>) {
    let base = out.len();
    {
        let guard = interner().read().expect("value interner poisoned");
        for v in row {
            match guard.table.get(v) {
                Some(&id) => out.push(ValueId(id)),
                None => break,
            }
        }
        if out.len() - base == row.len() {
            return;
        }
    }
    // Slow path: at least one fresh value. `out` holds ids for a prefix of
    // `row`; take the write lock once for the remainder.
    let start = out.len() - base;
    let mut guard = interner().write().expect("value interner poisoned");
    for v in &row[start..] {
        let id = match guard.table.get(v) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(guard.values.len()).expect("value interner overflow");
                guard.values.push(v.clone());
                guard.table.insert(v.clone(), id);
                id
            }
        };
        out.push(ValueId(id));
    }
}

/// Looks up every value of `row` without inserting; returns `false` (and
/// leaves `out` truncated to its original length) if any value was never
/// interned — in which case no stored tuple can equal `row`.
pub fn lookup_row(row: &[Value], out: &mut Vec<ValueId>) -> bool {
    let base = out.len();
    let guard = interner().read().expect("value interner poisoned");
    for v in row {
        match guard.table.get(v) {
            Some(&id) => out.push(ValueId(id)),
            None => {
                drop(guard);
                out.truncate(base);
                return false;
            }
        }
    }
    true
}

/// Resolves a row of ids back to an owned [`Tuple`] under a single lock
/// acquisition.
pub fn resolve_row(ids: &[ValueId]) -> Tuple {
    let guard = interner().read().expect("value interner poisoned");
    ids.iter()
        .map(|id| guard.values[id.0 as usize].clone())
        .collect()
}

/// Number of distinct values interned so far (observability/tests).
pub fn interned_count() -> usize {
    interner()
        .read()
        .expect("value interner poisoned")
        .values
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_structural() {
        let a = ValueId::intern(&Value::from("wdl-intern-test-a"));
        let b = ValueId::intern(&Value::from("wdl-intern-test-a"));
        assert_eq!(a, b);
        assert_eq!(a.value(), Value::from("wdl-intern-test-a"));
        let c = ValueId::intern(&Value::from("wdl-intern-test-b"));
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_types_distinct_ids() {
        // 1i64, true: equality across types is false, so ids must differ.
        let i = ValueId::intern(&Value::from(1));
        let b = ValueId::intern(&Value::from(true));
        assert_ne!(i, b);
        assert_eq!(i.value(), Value::from(1));
        assert_eq!(b.value(), Value::from(true));
    }

    #[test]
    fn lookup_does_not_insert() {
        let before = interned_count();
        assert_eq!(
            ValueId::lookup(&Value::from("wdl-never-interned-xyzzy")),
            None
        );
        assert_eq!(interned_count(), before);
        let id = ValueId::intern(&Value::from("wdl-now-interned-xyzzy"));
        assert_eq!(
            ValueId::lookup(&Value::from("wdl-now-interned-xyzzy")),
            Some(id)
        );
    }

    #[test]
    fn row_helpers_round_trip() {
        let row = vec![
            Value::from(42),
            Value::from("wdl-row-helper"),
            Value::bytes(&[1, 2, 3]),
        ];
        let mut ids = Vec::new();
        intern_row(&row, &mut ids);
        assert_eq!(ids.len(), 3);
        let back = resolve_row(&ids);
        assert_eq!(back.as_ref(), row.as_slice());
        let mut looked = Vec::new();
        assert!(lookup_row(&row, &mut looked));
        assert_eq!(looked, ids);
        let mut missing = Vec::new();
        assert!(!lookup_row(
            &[Value::from(42), Value::from("wdl-row-helper-missing")],
            &mut missing
        ));
        assert!(missing.is_empty());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let v = Value::from(format!("concurrent-value-{}", i % 2));
                    ValueId::intern(&v)
                })
            })
            .collect();
        let ids: Vec<ValueId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                id.value(),
                Value::from(format!("concurrent-value-{}", i % 2))
            );
        }
    }
}
