//! Terms: constants and variables.

use crate::{Subst, Symbol, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A term is a constant data value or a variable.
///
/// In WebdamLog surface syntax variables start with `$` (e.g. `$x`); the `$`
/// is not part of the interned name.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable, e.g. `$owner`.
    Var(Symbol),
    /// A constant, e.g. `"sea.jpg"` or `5`.
    Const(Value),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::Var(name.into())
    }

    /// Builds a constant term.
    pub fn cst(value: impl Into<Value>) -> Term {
        Term::Const(value.into())
    }

    /// Returns the variable name if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant value if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }

    /// True iff this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Applies a substitution: a bound variable becomes its constant, an
    /// unbound variable or a constant is returned unchanged.
    pub fn apply(&self, subst: &Subst) -> Term {
        match self {
            Term::Var(v) => match subst.get(*v) {
                Some(val) => Term::Const(val.clone()),
                None => self.clone(),
            },
            Term::Const(_) => self.clone(),
        }
    }

    /// Resolves the term to a value under `subst`, if fully bound.
    pub fn resolve(&self, subst: &Subst) -> Option<Value> {
        match self {
            Term::Var(v) => subst.get(*v).cloned(),
            Term::Const(c) => Some(c.clone()),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "${v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_binds_variables() {
        let x = Symbol::intern("x");
        let mut s = Subst::new();
        s.bind(x, Value::from(3));
        assert_eq!(Term::var(x).apply(&s), Term::cst(3));
        assert_eq!(Term::var("y-unbound").apply(&s), Term::var("y-unbound"));
        assert_eq!(Term::cst("k").apply(&s), Term::cst("k"));
    }

    #[test]
    fn resolve_requires_binding() {
        let s = Subst::new();
        assert_eq!(Term::var("nope").resolve(&s), None);
        assert_eq!(Term::cst(9).resolve(&s), Some(Value::from(9)));
    }

    #[test]
    fn display_uses_dollar_for_vars() {
        assert_eq!(Term::var("owner").to_string(), "$owner");
        assert_eq!(Term::cst(5).to_string(), "5");
    }
}
