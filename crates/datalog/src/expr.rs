//! Builtin expressions: comparisons and arithmetic over bound terms.
//!
//! WebdamLog rule bodies are evaluated left to right (paper §2), so builtins
//! may assume every variable they mention was bound by an earlier atom; the
//! safety check in [`crate::Rule::check_safety`] enforces this.

use crate::{DatalogError, Result, Subst, Term, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators usable in rule bodies, e.g. `rate@$owner($id, $r), $r >= 4`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two values.
    ///
    /// Ordering comparisons require both sides to have the same runtime type;
    /// equality is defined across types (and is false across types).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> Result<bool> {
        match self {
            CmpOp::Eq => Ok(lhs == rhs),
            CmpOp::Ne => Ok(lhs != rhs),
            _ => {
                if std::mem::discriminant(lhs) != std::mem::discriminant(rhs) {
                    return Err(DatalogError::TypeError(format!(
                        "cannot order {} against {}",
                        lhs.type_name(),
                        rhs.type_name()
                    )));
                }
                Ok(match self {
                    CmpOp::Lt => lhs < rhs,
                    CmpOp::Le => lhs <= rhs,
                    CmpOp::Gt => lhs > rhs,
                    CmpOp::Ge => lhs >= rhs,
                    CmpOp::Eq | CmpOp::Ne => unreachable!(),
                })
            }
        }
    }

    /// The surface-syntax token.
    pub fn token(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Binary arithmetic / string operators for assignment expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (errors on division by zero).
    Div,
    /// Integer remainder (errors on division by zero).
    Mod,
    /// String concatenation.
    Concat,
}

impl BinOp {
    /// The surface-syntax token.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "++",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// An expression tree over terms, used on the right-hand side of an
/// assignment builtin (`$x := $y + 1`).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A leaf term (variable or constant).
    Term(Term),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A leaf expression.
    pub fn term(t: impl Into<Term>) -> Expr {
        Expr::Term(t.into())
    }

    /// A binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluates under `subst`; all mentioned variables must be bound.
    pub fn eval(&self, subst: &Subst) -> Result<Value> {
        self.eval_with(&|v| subst.get(v).cloned())
    }

    /// Evaluates against an arbitrary variable lookup — the compiled
    /// register-file evaluator resolves variables from numbered slots
    /// instead of a symbol-keyed substitution.
    pub fn eval_with(&self, lookup: &dyn Fn(crate::Symbol) -> Option<Value>) -> Result<Value> {
        match self {
            Expr::Term(t) => match t {
                Term::Const(c) => Ok(c.clone()),
                Term::Var(v) => lookup(*v).ok_or_else(|| {
                    DatalogError::UnboundVariable(format!("{t} in arithmetic expression"))
                }),
            },
            Expr::Bin(op, lhs, rhs) => {
                let l = lhs.eval_with(lookup)?;
                let r = rhs.eval_with(lookup)?;
                apply_binop(*op, &l, &r)
            }
        }
    }

    /// Collects the variables mentioned by the expression into `out`.
    pub fn variables(&self, out: &mut Vec<crate::Symbol>) {
        match self {
            Expr::Term(Term::Var(v)) => out.push(*v),
            Expr::Term(Term::Const(_)) => {}
            Expr::Bin(_, l, r) => {
                l.variables(out);
                r.variables(out);
            }
        }
    }
}

fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match op {
        BinOp::Concat => match (l, r) {
            (Value::Str(a), Value::Str(b)) => {
                let mut s = String::with_capacity(a.len() + b.len());
                s.push_str(a);
                s.push_str(b);
                Ok(Value::from(s))
            }
            _ => Err(DatalogError::TypeError(format!(
                "++ expects strings, got {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        },
        _ => {
            let (a, b) = match (l.as_int(), r.as_int()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(DatalogError::TypeError(format!(
                        "{op} expects ints, got {} and {}",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(DatalogError::Arithmetic("division by zero".into()));
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(DatalogError::Arithmetic("modulo by zero".into()));
                    }
                    a.checked_rem(b)
                }
                BinOp::Concat => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| DatalogError::Arithmetic("integer overflow".into()))
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Symbol;

    fn subst(pairs: &[(&str, Value)]) -> Subst {
        pairs
            .iter()
            .map(|(n, v)| (Symbol::intern(n), v.clone()))
            .collect()
    }

    #[test]
    fn comparisons_on_ints() {
        assert!(CmpOp::Lt.eval(&Value::from(1), &Value::from(2)).unwrap());
        assert!(!CmpOp::Gt.eval(&Value::from(1), &Value::from(2)).unwrap());
        assert!(CmpOp::Ge.eval(&Value::from(2), &Value::from(2)).unwrap());
    }

    #[test]
    fn equality_across_types_is_false_not_error() {
        assert!(!CmpOp::Eq.eval(&Value::from(1), &Value::from("1")).unwrap());
        assert!(CmpOp::Ne.eval(&Value::from(1), &Value::from("1")).unwrap());
    }

    #[test]
    fn ordering_across_types_errors() {
        assert!(CmpOp::Lt.eval(&Value::from(1), &Value::from("a")).is_err());
    }

    #[test]
    fn arithmetic_evaluates() {
        let s = subst(&[("x", Value::from(10)), ("y", Value::from(3))]);
        let e = Expr::bin(
            BinOp::Add,
            Expr::term(Term::var("x")),
            Expr::bin(
                BinOp::Mul,
                Expr::term(Term::var("y")),
                Expr::term(Term::cst(2)),
            ),
        );
        assert_eq!(e.eval(&s).unwrap(), Value::from(16));
    }

    #[test]
    fn division_by_zero_errors() {
        let s = subst(&[]);
        let e = Expr::bin(
            BinOp::Div,
            Expr::term(Term::cst(1)),
            Expr::term(Term::cst(0)),
        );
        assert!(matches!(e.eval(&s), Err(DatalogError::Arithmetic(_))));
        let e = Expr::bin(
            BinOp::Mod,
            Expr::term(Term::cst(1)),
            Expr::term(Term::cst(0)),
        );
        assert!(e.eval(&s).is_err());
    }

    #[test]
    fn overflow_errors_rather_than_wrapping() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::term(Term::cst(i64::MAX)),
            Expr::term(Term::cst(1)),
        );
        assert!(e.eval(&Subst::new()).is_err());
    }

    #[test]
    fn concat_strings() {
        let e = Expr::bin(
            BinOp::Concat,
            Expr::term(Term::cst("sea")),
            Expr::term(Term::cst(".jpg")),
        );
        assert_eq!(e.eval(&Subst::new()).unwrap(), Value::from("sea.jpg"));
    }

    #[test]
    fn unbound_variable_errors() {
        let e = Expr::term(Term::var("missing-var"));
        assert!(matches!(
            e.eval(&Subst::new()),
            Err(DatalogError::UnboundVariable(_))
        ));
    }

    #[test]
    fn variables_are_collected() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::term(Term::var("a")),
            Expr::term(Term::var("b")),
        );
        let mut vs = Vec::new();
        e.variables(&mut vs);
        assert_eq!(vs, vec![Symbol::intern("a"), Symbol::intern("b")]);
    }
}
