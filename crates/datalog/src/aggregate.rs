//! Grouped aggregation over relations and rule bodies.
//!
//! Classical datalog has no aggregates; the Wepic application needs them
//! ("select and *rank* photos based on their annotations", §3.5). This
//! module provides one-shot grouped aggregation — evaluated *after* the
//! fixpoint, never inside recursion, which keeps the semantics simple and
//! monotone-safe (the same restriction Bloom/Bud imposes on non-monotone
//! operations).

use crate::eval::evaluate_body;
use crate::{BodyItem, Database, DatalogError, Result, Subst, Symbol, Value};
use std::collections::HashMap;

/// An aggregate function over the bound values of one variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of matching substitutions (duplicates across group keys are
    /// *not* collapsed — a substitution is a derivation).
    Count,
    /// Sum of an integer variable.
    Sum,
    /// Minimum value (any totally ordered type).
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean of an integer variable, rounded toward zero.
    Avg,
}

/// A grouped aggregation query: evaluate `body`, group the resulting
/// substitutions by `group_by`, and fold `func` over `over` in each group.
///
/// ```
/// use wdl_datalog::{aggregate::*, Atom, Database, Term, Value, Symbol};
///
/// let mut db = Database::new();
/// for (pic, rating) in [(1, 5), (1, 3), (2, 4)] {
///     db.insert_values("rate", vec![Value::from(pic), Value::from(rating)]).unwrap();
/// }
/// // avg rating per picture: rate($pic, $r) GROUP BY $pic AGG avg($r)
/// let q = AggQuery {
///     body: vec![Atom::new("rate", vec![Term::var("pic"), Term::var("r")]).into()],
///     group_by: vec![Symbol::intern("pic")],
///     func: AggFunc::Avg,
///     over: Some(Symbol::intern("r")),
/// };
/// let rows = q.eval(&db).unwrap();
/// assert_eq!(rows.len(), 2);
/// let pic1 = rows.iter().find(|r| r.key[0] == Value::from(1)).unwrap();
/// assert_eq!(pic1.value, Value::from(4)); // (5+3)/2
/// ```
#[derive(Clone, Debug)]
pub struct AggQuery {
    /// Body items, evaluated left to right (same matcher as rules).
    pub body: Vec<BodyItem>,
    /// Grouping variables (may be empty: one global group).
    pub group_by: Vec<Symbol>,
    /// The fold.
    pub func: AggFunc,
    /// The aggregated variable. `None` is only legal for `Count`.
    pub over: Option<Symbol>,
}

/// One output row of an aggregation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggRow {
    /// Values of the `group_by` variables, in declaration order.
    pub key: Vec<Value>,
    /// The aggregate value.
    pub value: Value,
}

impl AggQuery {
    /// Runs the aggregation against `db`.
    pub fn eval(&self, db: &Database) -> Result<Vec<AggRow>> {
        if self.over.is_none() && self.func != AggFunc::Count {
            return Err(DatalogError::UnboundVariable(
                "aggregate over() variable required for non-count aggregates".into(),
            ));
        }
        let substs = evaluate_body(db, &self.body, Subst::new())?;
        let mut groups: HashMap<Vec<Value>, Vec<Option<Value>>> = HashMap::new();
        for s in &substs {
            let key = self.group_key(s)?;
            let sample = match self.over {
                Some(var) => Some(s.get(var).cloned().ok_or_else(|| {
                    DatalogError::UnboundVariable(format!(
                        "aggregate variable ${var} unbound by body"
                    ))
                })?),
                None => None,
            };
            groups.entry(key).or_default().push(sample);
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, samples) in groups {
            rows.push(AggRow {
                key,
                value: fold(self.func, &samples)?,
            });
        }
        // Deterministic output order: sort by key.
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(rows)
    }

    fn group_key(&self, s: &Subst) -> Result<Vec<Value>> {
        self.group_by
            .iter()
            .map(|v| {
                s.get(*v).cloned().ok_or_else(|| {
                    DatalogError::UnboundVariable(format!("group-by variable ${v} unbound"))
                })
            })
            .collect()
    }
}

fn fold(func: AggFunc, samples: &[Option<Value>]) -> Result<Value> {
    match func {
        AggFunc::Count => Ok(Value::Int(samples.len() as i64)),
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for s in samples {
                let v = s.as_ref().expect("checked in eval");
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take = if func == AggFunc::Min { v < b } else { v > b };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.cloned()
                .ok_or_else(|| DatalogError::Arithmetic("min/max of empty group".into()))
        }
        AggFunc::Sum | AggFunc::Avg => {
            let mut total: i64 = 0;
            let mut n: i64 = 0;
            for s in samples {
                let v = s.as_ref().expect("checked in eval");
                let i = v.as_int().ok_or_else(|| {
                    DatalogError::TypeError(format!("sum/avg needs ints, found {}", v.type_name()))
                })?;
                total = total
                    .checked_add(i)
                    .ok_or_else(|| DatalogError::Arithmetic("sum overflow".into()))?;
                n += 1;
            }
            if func == AggFunc::Sum {
                Ok(Value::Int(total))
            } else if n == 0 {
                Err(DatalogError::Arithmetic("avg of empty group".into()))
            } else {
                Ok(Value::Int(total / n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, CmpOp, Term};

    fn rating_db() -> Database {
        let mut db = Database::new();
        for (pic, rater, r) in [
            (1, "a", 5),
            (1, "b", 4),
            (2, "a", 3),
            (2, "b", 3),
            (2, "c", 5),
            (3, "a", 1),
        ] {
            db.insert_values(
                "rated",
                vec![Value::from(pic), Value::from(rater), Value::from(r)],
            )
            .unwrap();
        }
        db
    }

    fn body() -> Vec<BodyItem> {
        vec![Atom::new(
            "rated",
            vec![Term::var("pic"), Term::var("who"), Term::var("r")],
        )
        .into()]
    }

    #[test]
    fn count_per_group() {
        let q = AggQuery {
            body: body(),
            group_by: vec![Symbol::intern("pic")],
            func: AggFunc::Count,
            over: None,
        };
        let rows = q.eval(&rating_db()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            AggRow {
                key: vec![Value::from(1)],
                value: Value::from(2)
            }
        );
        assert_eq!(rows[1].value, Value::from(3));
        assert_eq!(rows[2].value, Value::from(1));
    }

    #[test]
    fn sum_min_max_avg() {
        let mk = |func| AggQuery {
            body: body(),
            group_by: vec![Symbol::intern("pic")],
            func,
            over: Some(Symbol::intern("r")),
        };
        let db = rating_db();
        let sums = mk(AggFunc::Sum).eval(&db).unwrap();
        assert_eq!(sums[1].value, Value::from(11)); // pic 2: 3+3+5
        let mins = mk(AggFunc::Min).eval(&db).unwrap();
        assert_eq!(mins[1].value, Value::from(3));
        let maxs = mk(AggFunc::Max).eval(&db).unwrap();
        assert_eq!(maxs[1].value, Value::from(5));
        let avgs = mk(AggFunc::Avg).eval(&db).unwrap();
        assert_eq!(avgs[0].value, Value::from(4)); // pic 1: (5+4)/2
    }

    #[test]
    fn global_group() {
        let q = AggQuery {
            body: body(),
            group_by: vec![],
            func: AggFunc::Count,
            over: None,
        };
        let rows = q.eval(&rating_db()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, Value::from(6));
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let q = AggQuery {
            body: body(),
            group_by: vec![Symbol::intern("pic")],
            func: AggFunc::Count,
            over: None,
        };
        let rows = q.eval(&Database::new()).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn filtered_aggregation() {
        // count of ratings >= 4 per picture
        let mut b = body();
        b.push(BodyItem::cmp(CmpOp::Ge, Term::var("r"), Term::cst(4)));
        let q = AggQuery {
            body: b,
            group_by: vec![Symbol::intern("pic")],
            func: AggFunc::Count,
            over: None,
        };
        let rows = q.eval(&rating_db()).unwrap();
        // pic 1: 2 ratings >= 4; pic 2: 1; pic 3: none (no group).
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, Value::from(2));
        assert_eq!(rows[1].value, Value::from(1));
    }

    #[test]
    fn non_count_requires_over() {
        let q = AggQuery {
            body: body(),
            group_by: vec![],
            func: AggFunc::Sum,
            over: None,
        };
        assert!(q.eval(&rating_db()).is_err());
    }

    #[test]
    fn sum_of_strings_is_type_error() {
        let q = AggQuery {
            body: body(),
            group_by: vec![],
            func: AggFunc::Sum,
            over: Some(Symbol::intern("who")),
        };
        assert!(matches!(
            q.eval(&rating_db()),
            Err(DatalogError::TypeError(_))
        ));
    }

    #[test]
    fn min_max_on_strings_work() {
        let q = AggQuery {
            body: body(),
            group_by: vec![],
            func: AggFunc::Max,
            over: Some(Symbol::intern("who")),
        };
        assert_eq!(q.eval(&rating_db()).unwrap()[0].value, Value::from("c"));
    }
}
