//! Why-provenance (lineage) for derived facts.
//!
//! The paper's sketched access-control model derives a view's default
//! policy "automatically from the provenance of the base relations" (§2).
//! This module supplies that foundation: an evaluation mode that records,
//! for every derived fact, which facts each derivation consumed, and can
//! resolve that support down to base (EDB) facts.
//!
//! Lineage here is the union over all derivations of the positive body
//! facts used (negated literals contribute no positive support, the
//! standard convention). Recorded support is *direct*; [`Provenance::
//! base_lineage`] chases it transitively to the base facts.

use crate::eval::{match_atom, stratify};
use crate::{Atom, BodyItem, Database, DatalogError, Fact, Program, Result, Subst, Symbol, Term};
use std::collections::{HashMap, HashSet};

/// Lineage records for one evaluation.
#[derive(Debug, Default, Clone)]
pub struct Provenance {
    /// Direct support: derived fact → facts used by its derivations.
    direct: HashMap<Fact, HashSet<Fact>>,
}

impl Provenance {
    /// Direct support set of `fact` (empty for base facts).
    pub fn direct_support(&self, fact: &Fact) -> Option<&HashSet<Fact>> {
        self.direct.get(fact)
    }

    /// True iff `fact` was derived by a rule (vs. being a base fact).
    pub fn is_derived(&self, fact: &Fact) -> bool {
        self.direct.contains_key(fact)
    }

    /// All *base* facts transitively supporting `fact`. A base fact's
    /// lineage is itself.
    pub fn base_lineage(&self, fact: &Fact) -> HashSet<Fact> {
        let mut out = HashSet::new();
        let mut stack = vec![fact.clone()];
        let mut seen = HashSet::new();
        while let Some(f) = stack.pop() {
            if !seen.insert(f.clone()) {
                continue;
            }
            match self.direct.get(&f) {
                Some(support) => stack.extend(support.iter().cloned()),
                None => {
                    out.insert(f);
                }
            }
        }
        out
    }

    /// The set of base *relations* (predicate names) feeding `fact` — the
    /// relation-level provenance the default view policy uses.
    pub fn base_relations(&self, fact: &Fact) -> HashSet<Symbol> {
        self.base_lineage(fact)
            .into_iter()
            .map(|f| f.pred)
            .collect()
    }

    /// Number of derived facts tracked.
    pub fn len(&self) -> usize {
        self.direct.len()
    }

    /// True iff nothing was derived.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty()
    }

    fn record(&mut self, head: Fact, support: impl IntoIterator<Item = Fact>) {
        self.direct.entry(head).or_default().extend(support);
    }
}

/// Evaluates `program` over `db`, recording lineage.
///
/// Uses a naive per-stratum loop (provenance is an offline/audit path, not
/// the hot path; the seminaive engine remains lineage-free).
pub fn eval_with_provenance(program: &Program, db: &Database) -> Result<(Database, Provenance)> {
    let mut work = db.clone();
    let mut prov = Provenance::default();
    let strata = stratify(program.rules())?;
    for rule_ids in &strata.rule_strata {
        loop {
            let mut new_facts: Vec<(Fact, Vec<Fact>)> = Vec::new();
            for &ri in rule_ids {
                let rule = &program.rules()[ri];
                walk_with_support(
                    &work,
                    &rule.body,
                    0,
                    Subst::new(),
                    &mut Vec::new(),
                    &mut |subst, support| {
                        let head = rule.head.ground(subst).ok_or_else(|| {
                            DatalogError::UnboundVariable(format!("head of {rule} not fully bound"))
                        })?;
                        new_facts.push((head, support.to_vec()));
                        Ok(())
                    },
                )?;
            }
            let mut changed = false;
            for (head, support) in new_facts {
                let fresh = work.insert(head.clone())?;
                prov.record(head, support);
                changed |= fresh;
            }
            if !changed {
                break;
            }
        }
    }
    Ok((work, prov))
}

/// Left-to-right walk that threads the list of facts matched so far.
fn walk_with_support(
    db: &Database,
    body: &[BodyItem],
    idx: usize,
    subst: Subst,
    support: &mut Vec<Fact>,
    emit: &mut dyn FnMut(&Subst, &[Fact]) -> Result<()>,
) -> Result<()> {
    let Some(item) = body.get(idx) else {
        return emit(&subst, support);
    };
    match item {
        BodyItem::Literal(l) if !l.negated => {
            let matches = match_atom(db, &l.atom, &subst)?;
            for s in matches {
                let fact = ground_atom(&l.atom, &s)?;
                support.push(fact);
                walk_with_support(db, body, idx + 1, s, support, emit)?;
                support.pop();
            }
            Ok(())
        }
        BodyItem::Literal(l) => {
            let fact = l.atom.ground(&subst).ok_or_else(|| {
                DatalogError::UnboundVariable(format!("negated atom {} unbound", l.atom))
            })?;
            if !db.contains(&fact) {
                walk_with_support(db, body, idx + 1, subst, support, emit)?;
            }
            Ok(())
        }
        BodyItem::Cmp { op, lhs, rhs } => {
            let l = resolve(lhs, &subst)?;
            let r = resolve(rhs, &subst)?;
            if op.eval(&l, &r)? {
                walk_with_support(db, body, idx + 1, subst, support, emit)?;
            }
            Ok(())
        }
        BodyItem::Assign { var, expr } => {
            let value = expr.eval(&subst)?;
            let mut s = subst;
            if !s.unify_var(*var, &value) {
                return Ok(());
            }
            walk_with_support(db, body, idx + 1, s, support, emit)
        }
    }
}

fn ground_atom(atom: &Atom, subst: &Subst) -> Result<Fact> {
    atom.ground(subst)
        .ok_or_else(|| DatalogError::UnboundVariable(format!("atom {atom} not ground after match")))
}

fn resolve(term: &Term, subst: &Subst) -> Result<crate::Value> {
    term.resolve(subst)
        .ok_or_else(|| DatalogError::UnboundVariable(format!("{term} unbound in comparison")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rule, Value};

    fn atom(p: &str, vs: &[&str]) -> Atom {
        Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect())
    }

    fn fact(p: &str, vals: &[i64]) -> Fact {
        Fact::new(p, vals.iter().map(|&v| Value::from(v)))
    }

    #[test]
    fn single_step_lineage() {
        let program = Program::new(vec![Rule::new(
            atom("view", &["x"]),
            vec![atom("base", &["x"]).into()],
        )])
        .unwrap();
        let mut db = Database::new();
        db.insert(fact("base", &[1])).unwrap();
        let (out, prov) = eval_with_provenance(&program, &db).unwrap();
        assert!(out.contains(&fact("view", &[1])));
        let lineage = prov.base_lineage(&fact("view", &[1]));
        assert_eq!(lineage.len(), 1);
        assert!(lineage.contains(&fact("base", &[1])));
        assert!(prov.is_derived(&fact("view", &[1])));
        assert!(!prov.is_derived(&fact("base", &[1])));
    }

    #[test]
    fn join_lineage_includes_both_sides() {
        let program = Program::new(vec![Rule::new(
            atom("out", &["x", "z"]),
            vec![atom("r", &["x", "y"]).into(), atom("s", &["y", "z"]).into()],
        )])
        .unwrap();
        let mut db = Database::new();
        db.insert(fact("r", &[1, 2])).unwrap();
        db.insert(fact("s", &[2, 3])).unwrap();
        let (_, prov) = eval_with_provenance(&program, &db).unwrap();
        let lineage = prov.base_lineage(&fact("out", &[1, 3]));
        assert!(lineage.contains(&fact("r", &[1, 2])));
        assert!(lineage.contains(&fact("s", &[2, 3])));
        assert_eq!(
            prov.base_relations(&fact("out", &[1, 3])),
            [Symbol::intern("r"), Symbol::intern("s")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn recursive_lineage_chases_to_base() {
        let program = Program::new(vec![
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ])
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(fact("edge", &[a, b])).unwrap();
        }
        let (out, prov) = eval_with_provenance(&program, &db).unwrap();
        assert_eq!(out.relation("path").unwrap().len(), 6);
        let lineage = prov.base_lineage(&fact("path", &[1, 4]));
        // path(1,4) ultimately rests on all three edges.
        assert_eq!(lineage.len(), 3);
        assert!(lineage.iter().all(|f| f.pred == Symbol::intern("edge")));
    }

    #[test]
    fn lineage_merges_multiple_derivations() {
        // out(1) derivable from a(1) and from b(1): lineage is the union.
        let program = Program::new(vec![
            Rule::new(atom("out", &["x"]), vec![atom("a", &["x"]).into()]),
            Rule::new(atom("out", &["x"]), vec![atom("b", &["x"]).into()]),
        ])
        .unwrap();
        let mut db = Database::new();
        db.insert(fact("a", &[1])).unwrap();
        db.insert(fact("b", &[1])).unwrap();
        let (_, prov) = eval_with_provenance(&program, &db).unwrap();
        let lineage = prov.base_lineage(&fact("out", &[1]));
        assert_eq!(lineage.len(), 2);
    }

    #[test]
    fn provenance_agrees_with_plain_eval() {
        let program = Program::new(vec![
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ])
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            db.insert(fact("edge", &[a, b])).unwrap();
        }
        let (with_prov, _) = eval_with_provenance(&program, &db).unwrap();
        let plain = program.eval(&db).unwrap();
        assert_eq!(
            with_prov.relation("path").unwrap(),
            plain.relation("path").unwrap()
        );
    }

    #[test]
    fn base_fact_lineage_is_itself() {
        let prov = Provenance::default();
        let f = fact("edge", &[1, 2]);
        let lineage = prov.base_lineage(&f);
        assert_eq!(lineage.len(), 1);
        assert!(lineage.contains(&f));
    }
}
