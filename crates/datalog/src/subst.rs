//! Variable substitutions (valuations).

use crate::{Symbol, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A substitution maps variables to constant values.
///
/// Rule bodies bind at most a handful of variables, so the representation is
/// a small sorted-by-insertion vector: linear probing over ≤ ~10 entries
/// beats a hash map in both time and allocation (perf-book: prefer compact
/// collections for tiny cardinalities).
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subst {
    bindings: Vec<(Symbol, Value)>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Looks up the binding for `var`.
    pub fn get(&self, var: Symbol) -> Option<&Value> {
        self.bindings
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, val)| val)
    }

    /// True iff `var` is bound.
    pub fn contains(&self, var: Symbol) -> bool {
        self.get(var).is_some()
    }

    /// Binds `var` to `value`. Panics in debug builds if already bound to a
    /// different value — unification must use [`Subst::unify_var`].
    pub fn bind(&mut self, var: Symbol, value: Value) {
        debug_assert!(
            self.get(var).is_none_or(|v| *v == value),
            "rebinding {var} to a different value"
        );
        if !self.contains(var) {
            self.bindings.push((var, value));
        }
    }

    /// Unifies `var` with `value`: binds if free, succeeds iff consistent.
    pub fn unify_var(&mut self, var: Symbol, value: &Value) -> bool {
        match self.get(var) {
            Some(existing) => existing == value,
            None => {
                self.bindings.push((var, value.clone()));
                true
            }
        }
    }

    /// Id-plane variant of [`Subst::unify_var`]: the candidate arrives as an
    /// interned id from the storage layer and is only resolved when it
    /// actually binds (or needs comparing against an existing binding).
    pub(crate) fn unify_var_id(&mut self, var: Symbol, id: crate::intern::ValueId) -> bool {
        match self.get(var) {
            Some(existing) => *existing == id.value(),
            None => {
                self.bindings.push((var, id.value()));
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True iff nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.bindings.iter().map(|(v, val)| (*v, val))
    }

    /// Restricts the substitution to the given variables (projection).
    pub fn project(&self, vars: &[Symbol]) -> Subst {
        Subst {
            bindings: self
                .bindings
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .cloned()
                .collect(),
        }
    }

    /// A canonical (sorted) form usable as a deduplication key across peers.
    pub fn canonical(&self) -> Vec<(Symbol, Value)> {
        let mut v = self.bindings.clone();
        v.sort_by_key(|(sym, _)| *sym);
        v
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, val)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "${var} -> {val}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Symbol, Value)> for Subst {
    fn from_iter<I: IntoIterator<Item = (Symbol, Value)>>(iter: I) -> Self {
        let mut s = Subst::new();
        for (var, val) in iter {
            s.bind(var, val);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn bind_and_get() {
        let mut s = Subst::new();
        assert!(s.is_empty());
        s.bind(sym("a"), Value::from(1));
        assert_eq!(s.get(sym("a")), Some(&Value::from(1)));
        assert_eq!(s.len(), 1);
        assert!(!s.contains(sym("b")));
    }

    #[test]
    fn unify_consistent_and_conflicting() {
        let mut s = Subst::new();
        assert!(s.unify_var(sym("x"), &Value::from("v")));
        assert!(s.unify_var(sym("x"), &Value::from("v")));
        assert!(!s.unify_var(sym("x"), &Value::from("w")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn project_keeps_only_named_vars() {
        let s: Subst = [
            (sym("a"), Value::from(1)),
            (sym("b"), Value::from(2)),
            (sym("c"), Value::from(3)),
        ]
        .into_iter()
        .collect();
        let p = s.project(&[sym("a"), sym("c")]);
        assert_eq!(p.len(), 2);
        assert!(p.contains(sym("a")));
        assert!(!p.contains(sym("b")));
    }

    #[test]
    fn canonical_is_order_independent() {
        let s1: Subst = [(sym("p"), Value::from(1)), (sym("q"), Value::from(2))]
            .into_iter()
            .collect();
        let s2: Subst = [(sym("q"), Value::from(2)), (sym("p"), Value::from(1))]
            .into_iter()
            .collect();
        assert_eq!(s1.canonical(), s2.canonical());
    }

    #[test]
    fn rebinding_same_value_is_noop() {
        let mut s = Subst::new();
        s.bind(sym("z"), Value::from(1));
        s.bind(sym("z"), Value::from(1));
        assert_eq!(s.len(), 1);
    }
}
