//! Join-order optimization for rule bodies.
//!
//! The paper's pitch (§1): "The declarative approach alleviates the
//! conceptual complexity on the user while, at the same time, allowing for
//! powerful performance optimizations on the part of the system." This
//! module is one such optimization: a greedy, statistics-aware reordering
//! of rule bodies for the left-to-right matcher.
//!
//! Scope note: in *WebdamLog* body order is semantically significant — it
//! decides where the delegation split falls (§2). Reordering therefore only
//! applies to bodies the engine knows are fully local: the datalog kernel's
//! own programs, and the local segments the WebdamLog engine evaluates. For
//! those, positive-atom joins commute, so any safe order computes the same
//! substitutions (property-tested in `tests/`).
//!
//! Strategy (classic greedy "bound-is-easier" + smallest-relation-first):
//! repeatedly pick the cheapest *eligible* item —
//!
//! 1. filters (comparisons, negations, assignments) as soon as their inputs
//!    are bound: they only prune;
//! 2. otherwise the positive atom with the fewest unbound variables,
//!    breaking ties by smaller relation cardinality.

use crate::{BodyItem, Database, Rule, Symbol, Term};

/// Cardinality estimates for relations; defaults to 0 for unknown
/// relations (treats them as empty — they sort first, which is right:
/// an empty relation prunes everything immediately).
pub trait Cardinality {
    /// Estimated number of tuples in `rel`.
    fn cardinality(&self, rel: Symbol) -> usize;
}

impl Cardinality for Database {
    fn cardinality(&self, rel: Symbol) -> usize {
        self.relation(rel).map(|r| r.len()).unwrap_or(0)
    }
}

/// Uniform estimates (no statistics): only the bound-variable heuristic
/// applies.
pub struct NoStats;

impl Cardinality for NoStats {
    fn cardinality(&self, _rel: Symbol) -> usize {
        1
    }
}

/// Returns a reordered copy of `body` (same multiset of items) that the
/// left-to-right matcher can evaluate more cheaply. The order is safe:
/// every item is placed only after the items that bind its required
/// variables.
pub fn reorder_body(body: &[BodyItem], stats: &dyn Cardinality) -> Vec<BodyItem> {
    let mut remaining: Vec<BodyItem> = body.to_vec();
    let mut out = Vec::with_capacity(body.len());
    let mut bound: Vec<Symbol> = Vec::new();

    while !remaining.is_empty() {
        // 1. Any eligible filter goes first.
        if let Some(pos) = remaining
            .iter()
            .position(|item| is_filter(item) && inputs_bound(item, &bound))
        {
            let item = remaining.remove(pos);
            bind_outputs(&item, &mut bound);
            out.push(item);
            continue;
        }
        // 2. Cheapest eligible positive atom.
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, item)| item.as_positive_atom().is_some())
            .min_by_key(|(_, item)| {
                let atom = item.as_positive_atom().expect("filtered");
                let unbound = atom
                    .args
                    .iter()
                    .filter(|t| matches!(t, Term::Var(v) if !bound.contains(v)))
                    .count();
                (unbound, stats.cardinality(atom.pred))
            })
            .map(|(i, _)| i);
        match best {
            Some(pos) => {
                let item = remaining.remove(pos);
                bind_outputs(&item, &mut bound);
                out.push(item);
            }
            None => {
                // Only ineligible filters remain (an unsafe body): preserve
                // the original relative order and bail out — the safety
                // check will reject it downstream with a precise error.
                out.append(&mut remaining);
            }
        }
    }
    out
}

/// Reorders every rule body of `rules` against `stats`.
pub fn reorder_rules(rules: &[Rule], stats: &dyn Cardinality) -> Vec<Rule> {
    rules
        .iter()
        .map(|r| Rule::new(r.head.clone(), reorder_body(&r.body, stats)))
        .collect()
}

fn is_filter(item: &BodyItem) -> bool {
    match item {
        BodyItem::Literal(l) => l.negated,
        BodyItem::Cmp { .. } | BodyItem::Assign { .. } => true,
    }
}

fn inputs_bound(item: &BodyItem, bound: &[Symbol]) -> bool {
    let mut reads = Vec::new();
    match item {
        BodyItem::Literal(l) => l.atom.variables(&mut reads),
        BodyItem::Cmp { lhs, rhs, .. } => {
            for t in [lhs, rhs] {
                if let Term::Var(v) = t {
                    reads.push(*v);
                }
            }
        }
        BodyItem::Assign { expr, .. } => expr.variables(&mut reads),
    }
    reads.iter().all(|v| bound.contains(v))
}

fn bind_outputs(item: &BodyItem, bound: &mut Vec<Symbol>) {
    match item {
        BodyItem::Literal(l) if !l.negated => {
            for t in &l.atom.args {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        bound.push(*v);
                    }
                }
            }
        }
        BodyItem::Assign { var, .. } if !bound.contains(var) => {
            bound.push(*var);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, CmpOp, Fact, Program, Subst, Value};

    fn atom(p: &str, vs: &[&str]) -> Atom {
        Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn filters_move_right_after_their_bindings() {
        // original: big(x,y), small(y,z), x > 0
        // expected: the comparison runs as soon as x is bound.
        let body = vec![
            atom("big", &["x", "y"]).into(),
            atom("small", &["y", "z"]).into(),
            BodyItem::cmp(CmpOp::Gt, Term::var("x"), Term::cst(0)),
        ];
        let mut db = Database::new();
        for i in 0..10 {
            db.insert(Fact::new("big", vec![Value::from(i), Value::from(i)]))
                .unwrap();
        }
        db.insert(Fact::new("small", vec![Value::from(1), Value::from(2)]))
            .unwrap();
        let ordered = reorder_body(&body, &db);
        // small first (cardinality 1), then the filter cannot run (x unbound)
        // until big binds x... verify shape: first item is `small`.
        let first = ordered[0].as_positive_atom().unwrap();
        assert_eq!(first.pred, Symbol::intern("small"));
        // The comparison is last-but-consistent: it appears after `big`.
        let big_pos = ordered
            .iter()
            .position(|i| {
                i.as_positive_atom()
                    .is_some_and(|a| a.pred == Symbol::intern("big"))
            })
            .unwrap();
        let cmp_pos = ordered
            .iter()
            .position(|i| matches!(i, BodyItem::Cmp { .. }))
            .unwrap();
        assert!(cmp_pos > big_pos);
    }

    #[test]
    fn negation_stays_after_bindings() {
        let body = vec![
            BodyItem::not_atom(atom("blocked", &["x"])),
            atom("item", &["x"]).into(),
        ];
        let ordered = reorder_body(&body, &NoStats);
        // The negation needs x: it must come second now.
        assert!(ordered[0].as_positive_atom().is_some());
        assert!(matches!(&ordered[1], BodyItem::Literal(l) if l.negated));
        // And the reordered rule passes the safety check the original fails.
        let rule = Rule::new(atom("out", &["x"]), ordered);
        rule.check_safety().unwrap();
    }

    #[test]
    fn reordering_preserves_results() {
        // Random-ish program evaluated under original and reordered bodies.
        let mut db = Database::new();
        for i in 0..30i64 {
            db.insert(Fact::new("r", vec![Value::from(i % 5), Value::from(i)]))
                .unwrap();
            db.insert(Fact::new("s", vec![Value::from(i), Value::from(i % 3)]))
                .unwrap();
        }
        db.insert(Fact::new("t", vec![Value::from(0)])).unwrap();
        let body: Vec<BodyItem> = vec![
            atom("r", &["a", "b"]).into(),
            atom("s", &["b", "c"]).into(),
            atom("t", &["c"]).into(),
            BodyItem::cmp(CmpOp::Ge, Term::var("b"), Term::cst(3)),
        ];
        let original = crate::eval::evaluate_body(&db, &body, Subst::new()).unwrap();
        let ordered = reorder_body(&body, &db);
        let optimized = crate::eval::evaluate_body(&db, &ordered, Subst::new()).unwrap();
        let canon = |v: &[Subst]| {
            let mut c: Vec<Vec<(Symbol, Value)>> = v.iter().map(|s| s.canonical()).collect();
            c.sort();
            c
        };
        assert_eq!(canon(&original), canon(&optimized));
    }

    #[test]
    fn reorder_rules_preserves_program_semantics() {
        let rules = vec![
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("path", &["y", "z"]).into(),
                    atom("edge", &["x", "y"]).into(),
                ],
            ),
        ];
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        let plain = Program::new(rules.clone()).unwrap().eval(&db).unwrap();
        let optimized = Program::new(reorder_rules(&rules, &db))
            .unwrap()
            .eval(&db)
            .unwrap();
        assert_eq!(
            plain.relation("path").unwrap(),
            optimized.relation("path").unwrap()
        );
    }

    #[test]
    fn unsafe_leftovers_preserved_not_dropped() {
        // A body that is unsafe no matter the order: the comparison's var
        // never gets bound.
        let body = vec![BodyItem::cmp(CmpOp::Gt, Term::var("ghost"), Term::cst(0))];
        let ordered = reorder_body(&body, &NoStats);
        assert_eq!(ordered.len(), 1);
    }

    #[test]
    fn empty_body_is_noop() {
        assert!(reorder_body(&[], &NoStats).is_empty());
    }
}
