//! Indexed in-memory relation storage over a flat interned-tuple arena.
//!
//! A [`Relation`] stores its tuples as one `arity`-strided `Vec<ValueId>`
//! arena — row `i` is the slice `arena[i*arity .. (i+1)*arity]` — rather
//! than one heap allocation per tuple. Values are interned once at the
//! boundary ([`crate::intern`]); everything below works on dense `u32` ids,
//! where tuple equality is a slice compare and hashing is a few integer
//! multiplies instead of a walk over string/byte payloads.
//!
//! Membership and every secondary index share one shape: a map from a
//! 64-bit **slice hash** to the posting list of row ids whose (masked)
//! columns hash there. There is no second copy of any tuple — the arena is
//! the single canonical store, and probes verify candidates against it
//! (collisions are possible but only cost an extra compare). Index keys
//! that used to be `Box<[Value]>` per entry are gone entirely; probe keys
//! are integer slices in caller-provided buffers, so lookups allocate
//! nothing.
//!
//! A join like `pictures($id, $n, $owner, $d), rate($owner, 5)` probes
//! `rate` with column 0 bound: the first such probe builds the index for
//! that *binding pattern* (the [`ColMask`] of bound columns) and later
//! probes are O(1) per matching tuple. Indexes are cached behind an
//! `RwLock` so lookups work through `&Relation` (evaluation holds shared
//! references to the database) and are maintained in place by insertion
//! and removal — single-tuple removal sits on the incremental maintenance
//! hot path, where dropping the cache would turn an O(change) step into an
//! O(database) rebuild.

use crate::intern::{self, ValueId};
use crate::{Result, Tuple, Value};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, RwLock};

/// A binding pattern: bit `i` set means column `i` is bound at the lookup.
/// 64 bits wide, so every supported arity ([`MAX_ARITY`]) indexes without
/// aliasing — with a narrower mask, columns ≥ the width would silently
/// collide into the same index slots.
pub type ColMask = u64;

/// The widest relation the index masks can address.
pub const MAX_ARITY: usize = ColMask::BITS as usize;

/// Hashes a slice of interned ids (fxhash-style multiply-rotate-xor).
/// Quality only affects collision rates — every lookup verifies candidates
/// against the arena, so a collision costs a compare, never a wrong match.
#[inline]
pub(crate) fn hash_ids(ids: &[ValueId]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h: u64 = ids.len() as u64;
    for id in ids {
        h = (h.rotate_left(5) ^ u64::from(id.raw())).wrapping_mul(K);
    }
    h
}

/// Pass-through hasher for keys that are already well-mixed 64-bit slice
/// hashes; avoids re-hashing them through SipHash on every map operation.
#[derive(Default, Clone)]
pub(crate) struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed with this; keep a fallback anyway.
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
}

type IdTable = HashMap<u64, Vec<u32>, BuildHasherDefault<PreHashed>>;

/// A stored relation: a set of same-arity tuples in a flat arena with lazy
/// secondary indexes.
pub struct Relation {
    arity: usize,
    /// Number of rows; tracked explicitly so arity-0 relations work.
    len: usize,
    /// Flat `arity`-strided tuple storage — the single canonical copy.
    arena: Vec<ValueId>,
    /// Full-row hash → row ids with that hash (usually exactly one).
    membership: IdTable,
    /// Binding pattern → (masked-columns hash → row ids). Each index sits
    /// behind an `Arc` so probes iterate a refcounted snapshot instead of
    /// holding the map's read guard across their callback — a nested probe
    /// of the *same* relation with a not-yet-built mask takes the write
    /// lock to install its index, which would self-deadlock against an
    /// outer probe's held read guard (the regression
    /// `nested_same_relation_probe_with_fresh_index_mask` pins this).
    /// In-place index maintenance on `&mut self` uses `Arc::make_mut`,
    /// which never copies there: exclusive access means no probe snapshot
    /// is alive.
    indexes: RwLock<HashMap<ColMask, Arc<IdTable>>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    ///
    /// # Panics
    /// Panics when `arity` exceeds [`MAX_ARITY`]; use [`Relation::try_new`]
    /// for a recoverable error (the [`crate::Database`] entry points do).
    pub fn new(arity: usize) -> Relation {
        Relation::try_new(arity).expect("relation arity exceeds MAX_ARITY")
    }

    /// Creates an empty relation, rejecting arities the index masks cannot
    /// address ([`MAX_ARITY`]) with [`DatalogError::UnsupportedArity`].
    ///
    /// [`DatalogError::UnsupportedArity`]: crate::DatalogError::UnsupportedArity
    pub fn try_new(arity: usize) -> Result<Relation> {
        if arity > MAX_ARITY {
            return Err(crate::DatalogError::UnsupportedArity {
                arity,
                max: MAX_ARITY,
            });
        }
        Ok(Relation {
            arity,
            len: 0,
            arena: Vec::new(),
            membership: IdTable::default(),
            indexes: RwLock::new(HashMap::new()),
        })
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `id` as an id slice.
    #[inline]
    pub(crate) fn row(&self, id: u32) -> &[ValueId] {
        let start = id as usize * self.arity;
        &self.arena[start..start + self.arity]
    }

    /// Total `ValueId` slots held by the arena. Exposed so tests can assert
    /// the one-canonical-copy invariant: always exactly `len() * arity()` —
    /// no shadow copies in membership or index structures.
    pub fn arena_slots(&self) -> usize {
        self.arena.len()
    }

    /// The row id storing `ids`, if present.
    #[inline]
    pub(crate) fn find(&self, ids: &[ValueId]) -> Option<u32> {
        let candidates = self.membership.get(&hash_ids(ids))?;
        candidates.iter().copied().find(|&id| self.row(id) == ids)
    }

    /// Membership test on interned ids.
    pub(crate) fn contains_ids(&self, ids: &[ValueId]) -> bool {
        ids.len() == self.arity && self.find(ids).is_some()
    }

    /// Membership test. A tuple containing a never-interned value cannot be
    /// stored here (storage interns on insert), so it is absent by
    /// construction.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        let mut ids = Vec::with_capacity(tuple.len());
        intern::lookup_row(tuple, &mut ids) && self.find(&ids).is_some()
    }

    /// Iterates over all tuples in insertion order, resolving each row back
    /// to owned values.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.len).map(move |i| intern::resolve_row(self.row(i as u32)))
    }

    /// Iterates over all rows as id slices, in insertion order.
    pub(crate) fn iter_ids(&self) -> impl Iterator<Item = &[ValueId]> + '_ {
        (0..self.len).map(move |i| self.row(i as u32))
    }

    /// Inserts a tuple; returns `true` if it was new. Values are interned
    /// here — the single boundary where data enters the id plane.
    ///
    /// Existing indexes are updated incrementally so a fixpoint loop that
    /// inserts into a derived relation does not keep invalidating them.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.check_arity(tuple.len())?;
        let mut ids = Vec::with_capacity(tuple.len());
        intern::intern_row(&tuple, &mut ids);
        self.insert_ids(&ids)
    }

    /// Id-native insert (same semantics as [`Relation::insert`]).
    pub(crate) fn insert_ids(&mut self, ids: &[ValueId]) -> Result<bool> {
        self.check_arity(ids.len())?;
        let h = hash_ids(ids);
        if let Some(candidates) = self.membership.get(&h) {
            if candidates.iter().any(|&id| self.row(id) == ids) {
                return Ok(false);
            }
        }
        let id = u32::try_from(self.len).map_err(|_| {
            // Row ids are u32 to keep postings compact; a relation at 2^32
            // tuples fails recoverably instead of panicking.
            crate::DatalogError::CapacityExceeded {
                capacity: u64::from(u32::MAX) + 1,
            }
        })?;
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let mut key: Vec<ValueId> = Vec::new();
        for (&mask, index) in indexes.iter_mut() {
            key.clear();
            masked_key(ids, mask, &mut key);
            Arc::make_mut(index)
                .entry(hash_ids(&key))
                .or_default()
                .push(id);
        }
        drop(indexes);
        self.membership.entry(h).or_default().push(id);
        self.arena.extend_from_slice(ids);
        self.len += 1;
        Ok(true)
    }

    /// Appends a row assuming it is distinct and no indexes are cached yet
    /// — the parallel evaluator builds per-worker delta shards from already
    /// deduplicated facts, and shards only ever serve probe lookups (which
    /// index off the arena), so paying for membership would be pure
    /// overhead. Note: such rows are invisible to [`Relation::contains`].
    pub(crate) fn push_distinct_ids(&mut self, ids: &[ValueId]) {
        debug_assert_eq!(ids.len(), self.arity);
        debug_assert!(self.indexes.read().expect("index lock poisoned").is_empty());
        self.arena.extend_from_slice(ids);
        self.len += 1;
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        if tuple.len() != self.arity {
            return false;
        }
        let mut ids = Vec::with_capacity(tuple.len());
        if !intern::lookup_row(tuple, &mut ids) {
            return false;
        }
        self.remove_ids(&ids)
    }

    /// Id-native removal (same semantics as [`Relation::remove`]).
    ///
    /// Cached indexes are updated in place — the incremental maintenance
    /// engine deletes single tuples on its hot path, so dropping the whole
    /// cache (and rebuilding it on the next probe) would turn an O(change)
    /// maintenance step back into an O(database) one. Removal swap-fills
    /// the vacated arena slot with the last row, so every posting naming
    /// the old last id is remapped to the vacated id.
    pub(crate) fn remove_ids(&mut self, ids: &[ValueId]) -> bool {
        let Some(id) = self.find(ids) else {
            return false;
        };
        let last = (self.len - 1) as u32;
        // Membership: drop the removed row's posting, remap the moved row.
        remove_posting(&mut self.membership, hash_ids(ids), id);
        if id != last {
            let last_hash = hash_ids(self.row(last));
            remap_posting(&mut self.membership, last_hash, last, id);
        }
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let mut key: Vec<ValueId> = Vec::new();
        for (&mask, index) in indexes.iter_mut() {
            let index = Arc::make_mut(index);
            key.clear();
            masked_key(ids, mask, &mut key);
            remove_posting(index, hash_ids(&key), id);
            if id != last {
                key.clear();
                masked_key(self.row(last), mask, &mut key);
                remap_posting(index, hash_ids(&key), last, id);
            }
        }
        drop(indexes);
        // Arena: swap-fill the hole with the last row, then truncate.
        if id != last {
            let (dst, src) = (id as usize * self.arity, last as usize * self.arity);
            self.arena.copy_within(src..src + self.arity, dst);
        }
        self.arena.truncate(last as usize * self.arity);
        self.len -= 1;
        true
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.len = 0;
        self.membership.clear();
        self.indexes.write().expect("index lock poisoned").clear();
    }

    /// Looks up rows matching `key` on the columns of `mask`, building the
    /// index for `mask` on first use, and passes each matching row (as an
    /// id slice) to `f`; `f` returns `false` to stop early. A zero mask
    /// visits every row. Probing allocates nothing: the key is hashed as a
    /// slice and candidates are verified against the arena.
    pub(crate) fn for_each_match_ids(
        &self,
        mask: ColMask,
        key: &[ValueId],
        mut f: impl FnMut(&[ValueId]) -> bool,
    ) {
        if mask == 0 {
            for i in 0..self.len {
                if !f(self.row(i as u32)) {
                    return;
                }
            }
            return;
        }
        // Iterate a refcounted snapshot, NOT under the map's read guard:
        // `f` may recursively probe this same relation with a mask whose
        // index is not built yet, and installing that index takes the
        // write lock — held-guard iteration would self-deadlock.
        let index = self.index_for(mask);
        if let Some(ids) = index.get(&hash_ids(key)) {
            for &id in ids {
                let row = self.row(id);
                if masked_eq(row, mask, key) && !f(row) {
                    return;
                }
            }
        }
    }

    /// Value-facing variant of [`Relation::for_each_match_ids`]: the key is
    /// looked up in the interner (a never-interned value cannot match) and
    /// each matching row is resolved for the callback.
    pub fn for_each_match(&self, mask: ColMask, key: &[Value], mut f: impl FnMut(&[Value])) {
        let mut key_ids = Vec::with_capacity(key.len());
        if !intern::lookup_row(key, &mut key_ids) {
            return;
        }
        self.for_each_match_ids(mask, &key_ids, |row| {
            f(&intern::resolve_row(row));
            true
        });
    }

    /// Like [`Relation::for_each_match`] but collects matches (test helper).
    pub fn matches(&self, mask: ColMask, key: &[Value]) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.for_each_match(mask, key, |t| out.push(t.iter().cloned().collect()));
        out
    }

    /// Number of index structures currently cached (observability/tests).
    pub fn cached_indexes(&self) -> usize {
        self.indexes.read().expect("index lock poisoned").len()
    }

    /// Returns the index for `mask`, building it on first use. No lock is
    /// held on return — the caller iterates the `Arc` snapshot freely.
    fn index_for(&self, mask: ColMask) -> Arc<IdTable> {
        {
            let indexes = self.indexes.read().expect("index lock poisoned");
            if let Some(index) = indexes.get(&mask) {
                return Arc::clone(index);
            }
        }
        let mut index = IdTable::default();
        let mut key: Vec<ValueId> = Vec::new();
        for id in 0..self.len as u32 {
            key.clear();
            masked_key(self.row(id), mask, &mut key);
            index.entry(hash_ids(&key)).or_default().push(id);
        }
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        Arc::clone(indexes.entry(mask).or_insert_with(|| Arc::new(index)))
    }

    fn check_arity(&self, found: usize) -> Result<()> {
        if found != self.arity {
            return Err(crate::DatalogError::ArityMismatch {
                relation: "<relation>".into(),
                expected: self.arity,
                found,
            });
        }
        Ok(())
    }
}

/// A process-independent column dump of a relation, for persistence.
///
/// [`ValueId`]s are process-local and deliberately non-serializable; a dump
/// therefore carries the referenced values themselves (each distinct value
/// once, in first-use order) plus the rows as `u32` indexes into that local
/// slice. Loading re-interns the values and remaps the local indexes onto
/// whatever ids the destination process assigns, so a segment written by one
/// process loads correctly into another whose interner assigned the same
/// values entirely different ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnExport {
    /// Number of columns.
    pub arity: usize,
    /// Number of rows (explicit so nullary relations round-trip).
    pub rows: usize,
    /// Distinct referenced values, in first-use (row-major) order.
    pub values: Vec<Value>,
    /// `rows * arity` local indexes into `values`, row-major.
    pub cells: Vec<u32>,
}

impl ColumnExport {
    /// Rebuilds a relation in this process, re-interning every referenced
    /// value and remapping the local cell indexes onto the fresh ids.
    /// Malformed dumps (cell out of range, cell count not `rows * arity`)
    /// are rejected recoverably with [`DatalogError::CorruptExport`].
    ///
    /// [`DatalogError::CorruptExport`]: crate::DatalogError::CorruptExport
    pub fn into_relation(&self) -> Result<Relation> {
        if self.cells.len() != self.rows * self.arity {
            return Err(crate::DatalogError::CorruptExport(format!(
                "cell count {} != rows {} * arity {}",
                self.cells.len(),
                self.rows,
                self.arity
            )));
        }
        if let Some(&bad) = self
            .cells
            .iter()
            .find(|&&c| c as usize >= self.values.len())
        {
            return Err(crate::DatalogError::CorruptExport(format!(
                "cell index {bad} out of range for {} values",
                self.values.len()
            )));
        }
        let ids: Vec<ValueId> = self.values.iter().map(ValueId::intern).collect();
        let mut rel = Relation::try_new(self.arity)?;
        let mut row: Vec<ValueId> = Vec::with_capacity(self.arity);
        for r in 0..self.rows {
            row.clear();
            row.extend(
                self.cells[r * self.arity..(r + 1) * self.arity]
                    .iter()
                    .map(|&c| ids[c as usize]),
            );
            rel.insert_ids(&row)?;
        }
        Ok(rel)
    }
}

impl Relation {
    /// Dumps the relation as process-independent columns (see
    /// [`ColumnExport`]): rows in insertion order, each distinct value
    /// emitted once at its first use.
    pub fn export_columns(&self) -> ColumnExport {
        let mut local: HashMap<ValueId, u32> = HashMap::with_capacity(64);
        let mut values: Vec<Value> = Vec::new();
        let mut cells: Vec<u32> = Vec::with_capacity(self.arena.len());
        for &id in &self.arena {
            let next = u32::try_from(values.len()).expect("column export value overflow");
            let ix = *local.entry(id).or_insert_with(|| {
                values.push(id.value());
                next
            });
            cells.push(ix);
        }
        ColumnExport {
            arity: self.arity,
            rows: self.len,
            values,
            cells,
        }
    }
}

/// Extracts the masked columns of `row` (in column order) into `key`.
#[inline]
fn masked_key(row: &[ValueId], mask: ColMask, key: &mut Vec<ValueId>) {
    let mut m = mask;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        key.push(row[col]);
        m &= m - 1;
    }
}

/// True iff `row`'s masked columns equal `key` (in column order).
#[inline]
fn masked_eq(row: &[ValueId], mask: ColMask, key: &[ValueId]) -> bool {
    let mut m = mask;
    let mut i = 0;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        if row[col] != key[i] {
            return false;
        }
        i += 1;
        m &= m - 1;
    }
    true
}

fn remove_posting(table: &mut IdTable, hash: u64, id: u32) {
    if let Some(ids) = table.get_mut(&hash) {
        if let Some(pos) = ids.iter().position(|&x| x == id) {
            ids.swap_remove(pos);
        }
        if ids.is_empty() {
            table.remove(&hash);
        }
    }
}

fn remap_posting(table: &mut IdTable, hash: u64, from: u32, to: u32) {
    if let Some(ids) = table.get_mut(&hash) {
        if let Some(pos) = ids.iter().position(|&x| x == from) {
            ids[pos] = to;
        }
    }
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            len: self.len,
            arena: self.arena.clone(),
            membership: self.membership.clone(),
            // Index caches are rebuilt on demand in the clone.
            indexes: RwLock::new(HashMap::new()),
        }
    }
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relation")
            .field("arity", &self.arity)
            .field("len", &self.len)
            .finish()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.len == other.len
            && self.iter_ids().all(|row| other.contains_ids(row))
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::from(v)).collect()
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])).unwrap());
        assert!(!r.insert(t(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t(&[1, 2])));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1])).is_err());
    }

    #[test]
    fn remove_and_membership_stay_consistent() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.insert(t(&[i])).unwrap();
        }
        assert!(r.remove(&t(&[3])));
        assert!(!r.remove(&t(&[3])));
        assert_eq!(r.len(), 9);
        // After swap_remove, every remaining tuple must still be findable.
        for i in 0..10 {
            assert_eq!(r.contains(&t(&[i])), i != 3);
        }
    }

    #[test]
    fn indexed_lookup_matches_scan() {
        let mut r = Relation::new(2);
        for i in 0..100i64 {
            r.insert(t(&[i % 10, i])).unwrap();
        }
        // bound column 0 == 3
        let key = [Value::from(3)];
        let hits = r.matches(0b01, &key);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|tu| tu[0] == Value::from(3)));
        assert_eq!(r.cached_indexes(), 1);
        // Index updated incrementally on insert.
        r.insert(t(&[3, 1000])).unwrap();
        assert_eq!(r.matches(0b01, &key).len(), 11);
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3])).unwrap();
        r.insert(t(&[1, 2, 4])).unwrap();
        r.insert(t(&[1, 5, 3])).unwrap();
        let hits = r.matches(0b011, &[Value::from(1), Value::from(2)]);
        assert_eq!(hits.len(), 2);
        let hits = r.matches(0b101, &[Value::from(1), Value::from(3)]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn zero_mask_scans_everything() {
        let mut r = Relation::new(1);
        for i in 0..5 {
            r.insert(t(&[i])).unwrap();
        }
        assert_eq!(r.matches(0, &[]).len(), 5);
        assert_eq!(r.cached_indexes(), 0);
    }

    #[test]
    fn removal_updates_indexes_in_place() {
        let mut r = Relation::new(1);
        r.insert(t(&[1])).unwrap();
        r.insert(t(&[2])).unwrap();
        assert_eq!(r.matches(0b1, &[Value::from(1)]).len(), 1);
        assert_eq!(r.cached_indexes(), 1);
        r.remove(&t(&[1]));
        // The index survives the removal (no cache drop) and stays correct.
        assert_eq!(r.cached_indexes(), 1);
        assert_eq!(r.matches(0b1, &[Value::from(1)]).len(), 0);
        assert_eq!(r.matches(0b1, &[Value::from(2)]).len(), 1);
    }

    /// Regression: the swap-fill in `remove` moves the last row into the
    /// vacated slot; a stale posting would then resolve probes of the moved
    /// tuple to the wrong row (or past the end).
    #[test]
    fn remove_remaps_swapped_tuple_in_indexes() {
        let mut r = Relation::new(2);
        for i in 0..6i64 {
            r.insert(t(&[i, i * 10])).unwrap();
        }
        // Build two indexes with different masks.
        assert_eq!(r.matches(0b01, &[Value::from(5)]).len(), 1);
        assert_eq!(r.matches(0b11, &[Value::from(5), Value::from(50)]).len(), 1);
        // Removing row 0 swap-fills slot 0 with row 5.
        assert!(r.remove(&t(&[0, 0])));
        assert_eq!(r.cached_indexes(), 2);
        let hits = r.matches(0b01, &[Value::from(5)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][1], Value::from(50));
        assert_eq!(r.matches(0b11, &[Value::from(5), Value::from(50)]).len(), 1);
        // Every remaining tuple is still findable through the index.
        for i in 1..6i64 {
            assert_eq!(r.matches(0b01, &[Value::from(i)]).len(), 1, "probe {i}");
        }
        assert_eq!(r.matches(0b01, &[Value::from(0)]).len(), 0);
    }

    /// Interleaved inserts and removes keep index probes identical to full
    /// scans, including duplicate-key buckets.
    #[test]
    fn interleaved_mutation_keeps_indexes_consistent() {
        let mut r = Relation::new(2);
        // Touch the index early so every later mutation maintains it.
        let _ = r.matches(0b01, &[Value::from(0)]);
        let ops: &[(bool, i64, i64)] = &[
            (true, 1, 1),
            (true, 1, 2),
            (true, 2, 1),
            (false, 1, 1),
            (true, 3, 3),
            (false, 2, 1),
            (true, 1, 1),
            (false, 1, 2),
            (false, 3, 3),
        ];
        for &(insert, a, b) in ops {
            if insert {
                r.insert(t(&[a, b])).unwrap();
            } else {
                r.remove(&t(&[a, b]));
            }
            for probe in 0..4i64 {
                let via_index = r.matches(0b01, &[Value::from(probe)]);
                let via_scan: Vec<_> = r.iter().filter(|tu| tu[0] == Value::from(probe)).collect();
                assert_eq!(
                    via_index.len(),
                    via_scan.len(),
                    "probe {probe} after {ops:?}"
                );
            }
        }
        assert_eq!(r.cached_indexes(), 1);
    }

    #[test]
    fn clone_preserves_tuples_not_caches() {
        let mut r = Relation::new(1);
        r.insert(t(&[7])).unwrap();
        let _ = r.matches(0b1, &[Value::from(7)]);
        assert_eq!(r.cached_indexes(), 1);
        let c = r.clone();
        assert_eq!(c.cached_indexes(), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(r, c);
    }

    /// Regression: masks are 64-bit, so columns ≥ 32 index without
    /// aliasing (a u32 mask would have collided `1 << 35` into low bits),
    /// and arities beyond [`MAX_ARITY`] are rejected recoverably rather
    /// than corrupting index slots.
    #[test]
    fn wide_arities_index_high_columns_without_aliasing() {
        let mut r = Relation::try_new(40).unwrap();
        // Two tuples differing only in column 35.
        let mut a: Vec<Value> = (0..40i64).map(Value::from).collect();
        let mut b = a.clone();
        a[35] = Value::from(1000);
        b[35] = Value::from(2000);
        r.insert(a.clone().into()).unwrap();
        r.insert(b.into()).unwrap();
        let mask: ColMask = 1 << 35;
        let hits = r.matches(mask, &[Value::from(1000)]);
        assert_eq!(hits.len(), 1, "column 35 must discriminate");
        assert_eq!(hits[0][35], Value::from(1000));
        // The widest supported arity works end to end…
        let mut widest = Relation::try_new(MAX_ARITY).unwrap();
        let t: Vec<Value> = (0..MAX_ARITY as i64).map(Value::from).collect();
        widest.insert(t.into()).unwrap();
        let top: ColMask = 1 << (MAX_ARITY - 1);
        assert_eq!(
            widest
                .matches(top, &[Value::from(MAX_ARITY as i64 - 1)])
                .len(),
            1
        );
        // …and one past it is a recoverable error, not a panic.
        assert!(matches!(
            Relation::try_new(MAX_ARITY + 1),
            Err(crate::DatalogError::UnsupportedArity { arity: 65, max: 64 })
        ));
    }

    /// The database entry points surface the arity bound as an error too.
    #[test]
    fn database_rejects_oversized_arity_recoverably() {
        let mut db = crate::Database::new();
        assert!(matches!(
            db.declare("wide", MAX_ARITY + 3),
            Err(crate::DatalogError::UnsupportedArity { .. })
        ));
        let tuple: Tuple = (0..(MAX_ARITY as i64 + 1)).map(Value::from).collect();
        assert!(matches!(
            db.insert_tuple(crate::Symbol::intern("wide2"), tuple),
            Err(crate::DatalogError::UnsupportedArity { .. })
        ));
        // A failed insert must not leave a half-created relation behind.
        assert!(db.relation("wide2").is_none());
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        let mut b = Relation::new(1);
        a.insert(t(&[1])).unwrap();
        a.insert(t(&[2])).unwrap();
        b.insert(t(&[2])).unwrap();
        b.insert(t(&[1])).unwrap();
        assert_eq!(a, b);
    }

    /// The arena is the single canonical copy: exactly `len * arity` value
    /// ids are stored, through inserts, duplicate inserts and removals —
    /// the membership structure keys rows by hash and holds row ids only
    /// (the double-storage `HashMap<Tuple, id>` of the old layout is gone).
    #[test]
    fn one_canonical_copy_per_tuple() {
        let mut r = Relation::new(3);
        for i in 0..50i64 {
            assert!(r.insert(t(&[i, i * 2, i % 7])).unwrap());
            assert!(!r.insert(t(&[i, i * 2, i % 7])).unwrap(), "dup rejected");
            assert_eq!(r.arena_slots(), r.len() * r.arity());
        }
        // Build an index, then mutate: the invariant must survive in-place
        // index maintenance and swap-fill removals.
        assert_eq!(r.matches(0b100, &[Value::from(3)]).len(), 7);
        for i in (0..50i64).step_by(3) {
            assert!(r.remove(&t(&[i, i * 2, i % 7])));
            assert_eq!(r.arena_slots(), r.len() * r.arity());
        }
        assert_eq!(r.len(), 33);
        assert_eq!(r.arena_slots(), 33 * 3);
    }

    /// Column export round-trips through the value plane: the dump names
    /// values (not ids), each distinct value exactly once, and reloading
    /// re-interns + remaps so the rebuilt relation equals the original even
    /// when the destination interner assigned different ids.
    #[test]
    fn column_export_round_trips() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::from("col-export-a"), Value::from(1)].into())
            .unwrap();
        r.insert(vec![Value::from("col-export-b"), Value::from(1)].into())
            .unwrap();
        r.insert(vec![Value::from("col-export-a"), Value::from(2)].into())
            .unwrap();
        let dump = r.export_columns();
        assert_eq!(dump.rows, 3);
        assert_eq!(dump.cells.len(), 6);
        // Distinct values only: a, 1, b, 2 — in first-use order.
        assert_eq!(dump.values.len(), 4);
        assert_eq!(dump.values[0], Value::from("col-export-a"));
        assert_eq!(dump.values[1], Value::from(1));
        // Skew the interner between dump and load; remap must absorb it.
        for i in 0..32 {
            ValueId::intern(&Value::from(format!("col-export-skew-{i}")));
        }
        let back = dump.into_relation().unwrap();
        assert_eq!(back, r);
    }

    /// Malformed dumps fail recoverably, never panic.
    #[test]
    fn column_export_rejects_corruption() {
        let mut r = Relation::new(1);
        r.insert(t(&[9])).unwrap();
        let mut dump = r.export_columns();
        dump.cells[0] = 99; // out of range
        assert!(matches!(
            dump.into_relation(),
            Err(crate::DatalogError::CorruptExport(_))
        ));
        let mut dump2 = r.export_columns();
        dump2.rows = 7; // cells.len() no longer rows * arity
        assert!(matches!(
            dump2.into_relation(),
            Err(crate::DatalogError::CorruptExport(_))
        ));
        // Nullary relations round-trip via the explicit row count.
        let mut n = Relation::new(0);
        n.insert(t(&[])).unwrap();
        let nd = n.export_columns();
        assert_eq!((nd.rows, nd.cells.len()), (1, 0));
        assert_eq!(nd.into_relation().unwrap().len(), 1);
    }

    /// Nullary relations (zero columns) hold at most the empty tuple and
    /// survive the arena layout (no division by arity anywhere).
    #[test]
    fn nullary_relation_works() {
        let mut r = Relation::new(0);
        assert!(r.insert(t(&[])).unwrap());
        assert!(!r.insert(t(&[])).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.iter().count(), 1);
        assert_eq!(r.matches(0, &[]).len(), 1);
        assert!(r.remove(&[]));
        assert!(r.is_empty());
    }
}
