//! Indexed in-memory relation storage.
//!
//! A [`Relation`] stores a set of tuples plus lazily built hash indexes, one
//! per *binding pattern* (the set of columns that are bound at a lookup). A
//! join like `pictures($id, $n, $owner, $d), rate($owner, 5)` probes `rate`
//! with its first column bound; the first such probe builds an index keyed on
//! column 0 and later probes are O(1) per matching tuple.
//!
//! Indexes are cached behind an `RwLock` so lookups work through `&Relation`
//! (evaluation holds shared references to the database). Both insertion and
//! removal update cached indexes in place — single-tuple removal sits on
//! the incremental maintenance hot path, where dropping the cache would
//! turn an O(change) step into an O(database) rebuild.

use crate::{Result, Tuple, Value};
use std::collections::HashMap;
use std::sync::RwLock;

/// A binding pattern: bit `i` set means column `i` is bound at the lookup.
/// 64 bits wide, so every supported arity ([`MAX_ARITY`]) indexes without
/// aliasing — with a narrower mask, columns ≥ the width would silently
/// collide into the same index slots.
pub type ColMask = u64;

/// The widest relation the index masks can address.
pub const MAX_ARITY: usize = ColMask::BITS as usize;

type Index = HashMap<Box<[Value]>, Vec<u32>>;

/// A stored relation: a set of same-arity tuples with lazy secondary indexes.
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    membership: HashMap<Tuple, u32>,
    indexes: RwLock<HashMap<ColMask, Index>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    ///
    /// # Panics
    /// Panics when `arity` exceeds [`MAX_ARITY`]; use [`Relation::try_new`]
    /// for a recoverable error (the [`crate::Database`] entry points do).
    pub fn new(arity: usize) -> Relation {
        Relation::try_new(arity).expect("relation arity exceeds MAX_ARITY")
    }

    /// Creates an empty relation, rejecting arities the index masks cannot
    /// address ([`MAX_ARITY`]) with [`DatalogError::UnsupportedArity`].
    ///
    /// [`DatalogError::UnsupportedArity`]: crate::DatalogError::UnsupportedArity
    pub fn try_new(arity: usize) -> Result<Relation> {
        if arity > MAX_ARITY {
            return Err(crate::DatalogError::UnsupportedArity {
                arity,
                max: MAX_ARITY,
            });
        }
        Ok(Relation {
            arity,
            tuples: Vec::new(),
            membership: HashMap::new(),
            indexes: RwLock::new(HashMap::new()),
        })
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.membership.contains_key(tuple)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// Existing indexes are updated incrementally so a fixpoint loop that
    /// inserts into a derived relation does not keep invalidating them.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.check_arity(tuple.len())?;
        if self.membership.contains_key(&tuple) {
            return Ok(false);
        }
        let id = u32::try_from(self.tuples.len()).map_err(|_| {
            // Tuple ids are u32 to keep index postings compact; a relation
            // at 2^32 tuples fails recoverably instead of panicking.
            crate::DatalogError::CapacityExceeded {
                capacity: u64::from(u32::MAX) + 1,
            }
        })?;
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        for (&mask, index) in indexes.iter_mut() {
            let key = key_for(&tuple, mask);
            index.entry(key).or_default().push(id);
        }
        drop(indexes);
        self.membership.insert(tuple.clone(), id);
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Appends a tuple assuming it is distinct and no indexes are cached
    /// yet — the parallel evaluator builds per-worker delta shards from
    /// already-deduplicated facts, and shards only ever serve
    /// [`Relation::for_each_match`] probes (which index off the tuple
    /// vector), so paying for the membership map would be pure overhead.
    pub(crate) fn push_distinct(&mut self, tuple: Tuple) {
        debug_assert_eq!(tuple.len(), self.arity);
        debug_assert!(self
            .indexes
            .get_mut()
            .expect("index lock poisoned")
            .is_empty());
        self.tuples.push(tuple);
    }

    /// Removes a tuple; returns `true` if it was present.
    ///
    /// Cached indexes are updated in place — the incremental maintenance
    /// engine deletes single tuples on its hot path, so dropping the whole
    /// cache (and rebuilding it on the next probe) would turn an O(change)
    /// maintenance step back into an O(database) one. Removal swap-fills
    /// the vacated slot with the last tuple, so every index entry naming
    /// the old last id is remapped to the vacated id.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        let Some(id) = self.membership.remove(tuple) else {
            return false;
        };
        let id = id as usize;
        let last = self.tuples.len() - 1;
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        for (&mask, index) in indexes.iter_mut() {
            // Drop the removed tuple's posting.
            let key = key_for(tuple, mask);
            if let Some(ids) = index.get_mut(&key) {
                if let Some(pos) = ids.iter().position(|&x| x == id as u32) {
                    ids.swap_remove(pos);
                }
                if ids.is_empty() {
                    index.remove(&key);
                }
            }
            // Remap the tuple that swap_remove moves into slot `id`.
            if id != last {
                let moved_key = key_for(&self.tuples[last], mask);
                if let Some(ids) = index.get_mut(&moved_key) {
                    if let Some(pos) = ids.iter().position(|&x| x == last as u32) {
                        ids[pos] = id as u32;
                    }
                }
            }
        }
        drop(indexes);
        self.tuples.swap_remove(id);
        if id < self.tuples.len() {
            // The former last tuple moved into slot `id`.
            let moved = self.tuples[id].clone();
            self.membership.insert(moved, id as u32);
        }
        true
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.membership.clear();
        self.indexes.write().expect("index lock poisoned").clear();
    }

    /// Looks up tuple ids matching `key` on the columns of `mask`, building
    /// the index for `mask` on first use, and passes each matching tuple to
    /// `f`. A zero mask visits every tuple.
    pub fn for_each_match(&self, mask: ColMask, key: &[Value], mut f: impl FnMut(&Tuple)) {
        if mask == 0 {
            for t in &self.tuples {
                f(t);
            }
            return;
        }
        self.ensure_index(mask);
        let indexes = self.indexes.read().expect("index lock poisoned");
        let index = indexes.get(&mask).expect("index just ensured");
        if let Some(ids) = index.get(key) {
            for &id in ids {
                f(&self.tuples[id as usize]);
            }
        }
    }

    /// Like [`Relation::for_each_match`] but collects matches (test helper).
    pub fn matches(&self, mask: ColMask, key: &[Value]) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.for_each_match(mask, key, |t| out.push(t.clone()));
        out
    }

    /// Number of index structures currently cached (observability/tests).
    pub fn cached_indexes(&self) -> usize {
        self.indexes.read().expect("index lock poisoned").len()
    }

    fn ensure_index(&self, mask: ColMask) {
        {
            let indexes = self.indexes.read().expect("index lock poisoned");
            if indexes.contains_key(&mask) {
                return;
            }
        }
        let mut index: Index = HashMap::with_capacity(self.tuples.len());
        for (id, tuple) in self.tuples.iter().enumerate() {
            index
                .entry(key_for(tuple, mask))
                .or_default()
                .push(id as u32);
        }
        self.indexes
            .write()
            .expect("index lock poisoned")
            .entry(mask)
            .or_insert(index);
    }

    fn check_arity(&self, found: usize) -> Result<()> {
        if found != self.arity {
            return Err(crate::DatalogError::ArityMismatch {
                relation: "<relation>".into(),
                expected: self.arity,
                found,
            });
        }
        Ok(())
    }
}

/// Extracts the index key: the values at the set bits of `mask`, in column order.
fn key_for(tuple: &[Value], mask: ColMask) -> Box<[Value]> {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    for (col, v) in tuple.iter().enumerate() {
        if mask & (1u64 << col) != 0 {
            key.push(v.clone());
        }
    }
    key.into()
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            tuples: self.tuples.clone(),
            membership: self.membership.clone(),
            // Index caches are rebuilt on demand in the clone.
            indexes: RwLock::new(HashMap::new()),
        }
    }
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relation")
            .field("arity", &self.arity)
            .field("len", &self.tuples.len())
            .finish()
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.tuples.len() == other.tuples.len()
            && self.tuples.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::from(v)).collect()
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])).unwrap());
        assert!(!r.insert(t(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t(&[1, 2])));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1])).is_err());
    }

    #[test]
    fn remove_and_membership_stay_consistent() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.insert(t(&[i])).unwrap();
        }
        assert!(r.remove(&t(&[3])));
        assert!(!r.remove(&t(&[3])));
        assert_eq!(r.len(), 9);
        // After swap_remove, every remaining tuple must still be findable.
        for i in 0..10 {
            assert_eq!(r.contains(&t(&[i])), i != 3);
        }
    }

    #[test]
    fn indexed_lookup_matches_scan() {
        let mut r = Relation::new(2);
        for i in 0..100i64 {
            r.insert(t(&[i % 10, i])).unwrap();
        }
        // bound column 0 == 3
        let key = [Value::from(3)];
        let hits = r.matches(0b01, &key);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|tu| tu[0] == Value::from(3)));
        assert_eq!(r.cached_indexes(), 1);
        // Index updated incrementally on insert.
        r.insert(t(&[3, 1000])).unwrap();
        assert_eq!(r.matches(0b01, &key).len(), 11);
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3])).unwrap();
        r.insert(t(&[1, 2, 4])).unwrap();
        r.insert(t(&[1, 5, 3])).unwrap();
        let hits = r.matches(0b011, &[Value::from(1), Value::from(2)]);
        assert_eq!(hits.len(), 2);
        let hits = r.matches(0b101, &[Value::from(1), Value::from(3)]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn zero_mask_scans_everything() {
        let mut r = Relation::new(1);
        for i in 0..5 {
            r.insert(t(&[i])).unwrap();
        }
        assert_eq!(r.matches(0, &[]).len(), 5);
        assert_eq!(r.cached_indexes(), 0);
    }

    #[test]
    fn removal_updates_indexes_in_place() {
        let mut r = Relation::new(1);
        r.insert(t(&[1])).unwrap();
        r.insert(t(&[2])).unwrap();
        assert_eq!(r.matches(0b1, &[Value::from(1)]).len(), 1);
        assert_eq!(r.cached_indexes(), 1);
        r.remove(&t(&[1]));
        // The index survives the removal (no cache drop) and stays correct.
        assert_eq!(r.cached_indexes(), 1);
        assert_eq!(r.matches(0b1, &[Value::from(1)]).len(), 0);
        assert_eq!(r.matches(0b1, &[Value::from(2)]).len(), 1);
    }

    /// Regression: the swap-fill in `remove` moves the last tuple into the
    /// vacated slot; a stale index entry would then resolve probes of the
    /// moved tuple to the wrong row (or past the end).
    #[test]
    fn remove_remaps_swapped_tuple_in_indexes() {
        let mut r = Relation::new(2);
        for i in 0..6i64 {
            r.insert(t(&[i, i * 10])).unwrap();
        }
        // Build two indexes with different masks.
        assert_eq!(r.matches(0b01, &[Value::from(5)]).len(), 1);
        assert_eq!(r.matches(0b11, &[Value::from(5), Value::from(50)]).len(), 1);
        // Removing row 0 swap-fills slot 0 with row 5.
        assert!(r.remove(&t(&[0, 0])));
        assert_eq!(r.cached_indexes(), 2);
        let hits = r.matches(0b01, &[Value::from(5)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][1], Value::from(50));
        assert_eq!(r.matches(0b11, &[Value::from(5), Value::from(50)]).len(), 1);
        // Every remaining tuple is still findable through the index.
        for i in 1..6i64 {
            assert_eq!(r.matches(0b01, &[Value::from(i)]).len(), 1, "probe {i}");
        }
        assert_eq!(r.matches(0b01, &[Value::from(0)]).len(), 0);
    }

    /// Interleaved inserts and removes keep index probes identical to full
    /// scans, including duplicate-key buckets.
    #[test]
    fn interleaved_mutation_keeps_indexes_consistent() {
        let mut r = Relation::new(2);
        // Touch the index early so every later mutation maintains it.
        let _ = r.matches(0b01, &[Value::from(0)]);
        let ops: &[(bool, i64, i64)] = &[
            (true, 1, 1),
            (true, 1, 2),
            (true, 2, 1),
            (false, 1, 1),
            (true, 3, 3),
            (false, 2, 1),
            (true, 1, 1),
            (false, 1, 2),
            (false, 3, 3),
        ];
        for &(insert, a, b) in ops {
            if insert {
                r.insert(t(&[a, b])).unwrap();
            } else {
                r.remove(&t(&[a, b]));
            }
            for probe in 0..4i64 {
                let via_index = r.matches(0b01, &[Value::from(probe)]);
                let via_scan: Vec<_> = r
                    .iter()
                    .filter(|tu| tu[0] == Value::from(probe))
                    .cloned()
                    .collect();
                assert_eq!(
                    via_index.len(),
                    via_scan.len(),
                    "probe {probe} after {ops:?}"
                );
            }
        }
        assert_eq!(r.cached_indexes(), 1);
    }

    #[test]
    fn clone_preserves_tuples_not_caches() {
        let mut r = Relation::new(1);
        r.insert(t(&[7])).unwrap();
        let _ = r.matches(0b1, &[Value::from(7)]);
        assert_eq!(r.cached_indexes(), 1);
        let c = r.clone();
        assert_eq!(c.cached_indexes(), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(r, c);
    }

    /// Regression: masks are 64-bit, so columns ≥ 32 index without
    /// aliasing (a u32 mask would have collided `1 << 35` into low bits),
    /// and arities beyond [`MAX_ARITY`] are rejected recoverably rather
    /// than corrupting index slots.
    #[test]
    fn wide_arities_index_high_columns_without_aliasing() {
        let mut r = Relation::try_new(40).unwrap();
        // Two tuples differing only in column 35.
        let mut a: Vec<Value> = (0..40i64).map(Value::from).collect();
        let mut b = a.clone();
        a[35] = Value::from(1000);
        b[35] = Value::from(2000);
        r.insert(a.clone().into()).unwrap();
        r.insert(b.into()).unwrap();
        let mask: ColMask = 1 << 35;
        let hits = r.matches(mask, &[Value::from(1000)]);
        assert_eq!(hits.len(), 1, "column 35 must discriminate");
        assert_eq!(hits[0][35], Value::from(1000));
        // The widest supported arity works end to end…
        let mut widest = Relation::try_new(MAX_ARITY).unwrap();
        let t: Vec<Value> = (0..MAX_ARITY as i64).map(Value::from).collect();
        widest.insert(t.into()).unwrap();
        let top: ColMask = 1 << (MAX_ARITY - 1);
        assert_eq!(
            widest
                .matches(top, &[Value::from(MAX_ARITY as i64 - 1)])
                .len(),
            1
        );
        // …and one past it is a recoverable error, not a panic.
        assert!(matches!(
            Relation::try_new(MAX_ARITY + 1),
            Err(crate::DatalogError::UnsupportedArity { arity: 65, max: 64 })
        ));
    }

    /// The database entry points surface the arity bound as an error too.
    #[test]
    fn database_rejects_oversized_arity_recoverably() {
        let mut db = crate::Database::new();
        assert!(matches!(
            db.declare("wide", MAX_ARITY + 3),
            Err(crate::DatalogError::UnsupportedArity { .. })
        ));
        let tuple: Tuple = (0..(MAX_ARITY as i64 + 1)).map(Value::from).collect();
        assert!(matches!(
            db.insert_tuple(crate::Symbol::intern("wide2"), tuple),
            Err(crate::DatalogError::UnsupportedArity { .. })
        ));
        // A failed insert must not leave a half-created relation behind.
        assert!(db.relation("wide2").is_none());
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        let mut b = Relation::new(1);
        a.insert(t(&[1])).unwrap();
        a.insert(t(&[2])).unwrap();
        b.insert(t(&[2])).unwrap();
        b.insert(t(&[1])).unwrap();
        assert_eq!(a, b);
    }
}
