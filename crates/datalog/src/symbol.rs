//! Global string interner.
//!
//! Relation names, peer names and variable names appear on every hot path of
//! the engine (joins, index keys, message headers). Interning them to a
//! `u32`-backed [`Symbol`] makes comparisons and hashing O(1) and keeps
//! tuples compact, following the type-size guidance of the Rust perf book.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Two `Symbol`s are equal iff the strings they intern are equal. Symbols are
/// process-global: they stay valid for the lifetime of the process and may be
/// freely copied across threads. On the wire (serde) a symbol travels as its
/// string, so peers in different processes agree on meaning, not on ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::with_capacity(1024),
            table: HashMap::with_capacity(1024),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(name: &str) -> Symbol {
        {
            let guard = interner().read().expect("interner poisoned");
            if let Some(&id) = guard.table.get(name) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("interner poisoned");
        if let Some(&id) = guard.table.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(guard.names.len()).expect("interner overflow");
        // Leaking is the standard trade-off for a process-global interner:
        // the set of distinct names (relations, peers, variables) is small
        // and bounded by program text, not by data volume.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        guard.names.push(leaked);
        guard.table.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").names[self.0 as usize]
    }

    /// The raw id; stable within a process only. Exposed for index keys.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

impl Serialize for Symbol {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Symbol {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("pictures");
        let b = Symbol::intern("pictures");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "pictures");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("alice-xyzzy"), Symbol::intern("bob-xyzzy"));
    }

    #[test]
    fn display_matches_source() {
        let s = Symbol::intern("attendeePictures");
        assert_eq!(s.to_string(), "attendeePictures");
        assert_eq!(format!("{s:?}"), "attendeePictures");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent-test-name")))
            .collect();
        let ids: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_string_interns() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
    }
}
