//! Counting maintenance for non-self-reading strata.
//!
//! Every fact of such a stratum is supported by a well-defined, finite
//! number of derivations over *settled* inputs (lower strata plus base
//! relations), so maintenance is bookkeeping: exact differential matching
//! computes how many derivations each head fact gained or lost, and a fact
//! enters or leaves the materialization exactly when its total support —
//! derivation count plus one unit of external support if it is also a base
//! fact — crosses zero.
//!
//! Exactness of the per-rule differencing comes from the
//! prefix-new/suffix-old evaluation — compiled differential plans
//! ([`crate::Program`] pre-compiles one per (rule, literal), see
//! `eval::plan`) on the default path, [`crate::eval::match_body_at_slot`]
//! on the interpreted reference path; see `eval::diff` for why self-joins
//! on changed relations are counted exactly once. Negated literals
//! contribute with flipped sign: an insertion into a negated input
//! destroys derivations, a deletion creates them. All bookkeeping stays in
//! the interned id plane ([`IdFact`]).

use super::{Changes, IdFact, StratumInfo};
use crate::eval::{match_body_at_slot, run_plan, DiffCtx, DiffSide, Scratch};
use crate::{BodyItem, Database, Program, Result};
use std::collections::HashMap;

/// Maintains one counting stratum in place.
///
/// * `db` — the materialization; inputs below this stratum are already in
///   their new state, this stratum's own predicates are untouched.
/// * `changes` — net input changes so far; this stratum's own net output
///   changes are appended before returning.
/// * `ext` — external-support adjustments: base facts of this stratum's
///   own predicates that were inserted (`true`) or deleted (`false`); the
///   base database itself has already been updated.
#[allow(clippy::too_many_arguments)]
pub(super) fn maintain(
    program: &Program,
    info: &StratumInfo,
    db: &mut Database,
    base: &Database,
    counts: &mut HashMap<IdFact, u64>,
    changes: &mut Changes,
    ext: &[(&crate::Fact, bool)],
    mut profile: Option<&mut crate::profile::RuleProfile>,
) -> Result<()> {
    let compiled = program.eval_config().compiled;
    // One scratch reused across every plan invocation of this pass.
    let mut scratch = Scratch::new();
    // Signed change in the number of derivations, per head fact.
    let mut deriv_delta: HashMap<IdFact, i64> = HashMap::new();
    // Input-delta size, computed once (profiled passes only).
    let delta_in = profile
        .as_ref()
        .map(|_| (changes.ins.fact_count() + changes.del.fact_count()) as u64);

    for &ri in &info.rules {
        let rule = &program.rules()[ri];
        let t0 = profile.as_ref().map(|_| std::time::Instant::now());
        // Signed derivation-delta contributions this rule produced.
        let mut fired = 0u64;
        let mut slot = 0usize;
        for item in &rule.body {
            let BodyItem::Literal(lit) = item else {
                continue;
            };
            let pred = lit.atom.pred;
            // (delta source, sign of a derivation appearing through it)
            let halves: [(&Database, i64); 2] = if lit.negated {
                [(&changes.ins, -1), (&changes.del, 1)]
            } else {
                [(&changes.ins, 1), (&changes.del, -1)]
            };
            for (delta_db, sign) in halves {
                if delta_db.relation(pred).is_some_and(|r| !r.is_empty()) {
                    if compiled {
                        let plan = program.diff_plan(ri, slot);
                        let ctx = DiffCtx {
                            db,
                            ins: &changes.ins,
                            del: &changes.del,
                            side: DiffSide::PrefixNewSuffixOld,
                            slot,
                            delta: delta_db,
                        };
                        run_plan(plan, &ctx, &mut scratch, &mut |row| {
                            *deriv_delta
                                .entry(IdFact::new(plan.head_pred, row))
                                .or_insert(0) += sign;
                            fired += 1;
                            Ok(())
                        })?;
                    } else {
                        match_body_at_slot(
                            db,
                            &changes.as_net(),
                            DiffSide::PrefixNewSuffixOld,
                            &rule.body,
                            slot,
                            delta_db,
                            &mut |s| {
                                if let Some(fact) = rule.head.ground(&s) {
                                    *deriv_delta.entry(IdFact::of_fact(&fact)).or_insert(0) += sign;
                                    fired += 1;
                                }
                                Ok(())
                            },
                        )?;
                    }
                }
            }
            slot += 1;
        }
        if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
            p.record(
                rule.head.pred,
                t0.elapsed().as_nanos() as u64,
                delta_in.unwrap_or(0),
                fired,
            );
        }
    }

    // Fold in external-support flips so the visibility loop below sees one
    // consolidated set of affected facts. External support is ±1 on top of
    // the derivation count and is *not* stored in `counts` (base membership
    // is the source of truth); `ext_flip` remembers which facts flipped so
    // the old total can be reconstructed.
    let mut ext_flip: HashMap<IdFact, bool> = HashMap::new();
    for (fact, added) in ext {
        let idf = IdFact::of_fact(fact);
        deriv_delta.entry(idf.clone()).or_insert(0);
        ext_flip.insert(idf, *added);
    }

    for (fact, d) in deriv_delta {
        let old_derived = counts.get(&fact).copied().unwrap_or(0) as i64;
        let new_derived = old_derived + d;
        debug_assert!(
            new_derived >= 0,
            "derivation count of {} went negative ({old_derived} {d:+})",
            fact.to_fact()
        );
        let new_derived = new_derived.max(0) as u64;

        // External support now / before this apply.
        let ext_now = u64::from(base.contains_ids(fact.pred, &fact.row));
        let ext_before = match ext_flip.get(&fact) {
            Some(true) => 0,  // inserted this round: was absent
            Some(false) => 1, // deleted this round: was present
            None => ext_now,
        };

        let total_before = old_derived as u64 + ext_before;
        let total_now = new_derived + ext_now;

        if new_derived == 0 {
            counts.remove(&fact);
        } else {
            counts.insert(fact.clone(), new_derived);
        }

        if total_before == 0 && total_now > 0 {
            if db.insert_ids(fact.pred, fact.row.len(), &fact.row)? {
                changes.record_insert_ids(&fact)?;
            }
        } else if total_before > 0 && total_now == 0 && db.remove_ids(fact.pred, &fact.row) {
            changes.record_delete_ids(&fact)?;
        }
    }
    Ok(())
}
