//! Incremental view maintenance: counting + DRed.
//!
//! A [`MaterializedView`] owns a stratified [`Program`] plus its saturated
//! database and keeps that materialization consistent under **batched base
//! updates** — insertions *and deletions* — at a cost proportional to the
//! size of the change rather than the size of the database. This is the
//! machinery that lets a WebdamLog peer revoke an ACL entry or untag a
//! picture without re-running its whole fixpoint (the paper's workloads
//! are churn-heavy: peers leave, pictures are untagged, friends are
//! removed).
//!
//! Two maintenance algorithms cooperate, chosen per stratum:
//!
//! * **Counting** ([`counting`]) for strata whose rules read only lower
//!   strata and base relations (no intra-stratum dependency). Each derived
//!   fact carries its number of distinct derivations; exact differential
//!   matching ([`crate::eval::match_body_at_slot`] with the
//!   prefix-new/suffix-old split) adjusts the counts, and a fact appears or
//!   disappears exactly when its count crosses zero. Base facts carry one
//!   unit of *external* support, which is how a base fact and a derivation
//!   for the same tuple coexist.
//! * **DRed** ([`dred`]) — delete and rederive — for recursive strata,
//!   where counting is unsound (a fact could count itself among its own
//!   support). Overdeletion removes everything whose support *might* be
//!   gone, rederivation re-proves what still holds from the remainder, and
//!   a seminaive pass folds in insertions.
//!
//! Negation never occurs inside a stratum (stratification), so by the time
//! a stratum is maintained the changes to its negated inputs are settled;
//! they enter the differencing with flipped sign (an insertion into a
//! negated predicate destroys derivations, a deletion enables them).
//!
//! ```
//! use wdl_datalog::{Atom, Database, Delta, Fact, MaterializedView, Program, Rule, Term, Value};
//!
//! let atom = |p: &str, vs: &[&str]| Atom::new(p, vs.iter().map(|v| Term::var(*v)).collect());
//! let program = Program::new(vec![
//!     Rule::new(atom("path", &["x", "y"]), vec![atom("edge", &["x", "y"]).into()]),
//!     Rule::new(
//!         atom("path", &["x", "z"]),
//!         vec![atom("edge", &["x", "y"]).into(), atom("path", &["y", "z"]).into()],
//!     ),
//! ])
//! .unwrap();
//!
//! let mut base = Database::new();
//! for (a, b) in [(1, 2), (2, 3), (3, 4)] {
//!     base.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)])).unwrap();
//! }
//! let mut view = MaterializedView::new(program, base).unwrap();
//! assert_eq!(view.database().relation("path").unwrap().len(), 6);
//!
//! // Cutting 2→3 splits the chain: only (1,2) and (3,4) remain.
//! let out = view
//!     .apply(&Delta::deletion(Fact::new("edge", vec![Value::from(2), Value::from(3)])))
//!     .unwrap();
//! assert_eq!(view.database().relation("path").unwrap().len(), 2);
//! assert!(out.inserts.is_empty());
//! assert_eq!(out.deletes.len(), 5); // edge(2,3) + paths (2,3),(1,3),(2,4),(1,4)
//! ```

mod counting;
mod dred;

use crate::eval::NetChange;
use crate::intern::{self, ValueId};
use crate::{Database, Fact, Program, Result, Symbol};
use std::collections::{HashMap, HashSet};

/// A ground fact in the interned id plane: the representation the
/// maintenance bookkeeping (derivation counts, overdeletion sets) works
/// in, so churn-heavy maintenance never hashes string/byte payloads.
/// Resolved back to a [`Fact`] only at the observable-delta boundary.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct IdFact {
    pub(crate) pred: Symbol,
    pub(crate) row: Box<[ValueId]>,
}

impl IdFact {
    pub(crate) fn new(pred: Symbol, row: &[ValueId]) -> IdFact {
        IdFact {
            pred,
            row: row.into(),
        }
    }

    pub(crate) fn of_fact(fact: &Fact) -> IdFact {
        let mut ids = Vec::with_capacity(fact.tuple.len());
        intern::intern_row(&fact.tuple, &mut ids);
        IdFact {
            pred: fact.pred,
            row: ids.into(),
        }
    }

    pub(crate) fn to_fact(&self) -> Fact {
        Fact {
            pred: self.pred,
            tuple: intern::resolve_row(&self.row),
        }
    }
}

/// A batch of base-fact changes: what [`MaterializedView::apply`] consumes
/// and (as the net observable change) produces.
///
/// When the same fact appears in both lists, deletions are applied first,
/// so insert-after-delete leaves the fact present.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    /// Facts added.
    pub inserts: Vec<Fact>,
    /// Facts removed.
    pub deletes: Vec<Fact>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// A delta carrying a single insertion.
    pub fn insertion(fact: Fact) -> Delta {
        Delta {
            inserts: vec![fact],
            deletes: Vec::new(),
        }
    }

    /// A delta carrying a single deletion.
    pub fn deletion(fact: Fact) -> Delta {
        Delta {
            inserts: Vec::new(),
            deletes: vec![fact],
        }
    }

    /// Queues an insertion.
    pub fn insert(&mut self, fact: Fact) -> &mut Delta {
        self.inserts.push(fact);
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, fact: Fact) -> &mut Delta {
        self.deletes.push(fact);
        self
    }

    /// True when the delta carries no changes.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of changes carried.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// Net signed changes accumulated during one [`MaterializedView::apply`]
/// pass: `ins`/`del` are disjoint and relate the current database to the
/// pre-apply state (`old = db ∖ ins ∪ del`).
#[derive(Default)]
pub(crate) struct Changes {
    pub(crate) ins: Database,
    pub(crate) del: Database,
}

impl Changes {
    /// Records that `fact` is now present (netting against an earlier
    /// recorded deletion).
    fn record_insert(&mut self, fact: &Fact) -> Result<()> {
        if !self.del.remove(fact) {
            self.ins.insert(fact.clone())?;
        }
        Ok(())
    }

    /// Records that `fact` is now absent (netting against an earlier
    /// recorded insertion).
    fn record_delete(&mut self, fact: &Fact) -> Result<()> {
        if !self.ins.remove(fact) {
            self.del.insert(fact.clone())?;
        }
        Ok(())
    }

    /// Id-plane variant of [`Changes::record_insert`].
    fn record_insert_ids(&mut self, fact: &IdFact) -> Result<()> {
        if !self.del.remove_ids(fact.pred, &fact.row) {
            self.ins.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
        }
        Ok(())
    }

    /// Id-plane variant of [`Changes::record_delete`].
    fn record_delete_ids(&mut self, fact: &IdFact) -> Result<()> {
        if !self.ins.remove_ids(fact.pred, &fact.row) {
            self.del.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
        }
        Ok(())
    }

    /// The changed predicates among `preds`… (empty = nothing to do).
    fn touches(&self, pred: Symbol) -> bool {
        self.ins.relation(pred).is_some_and(|r| !r.is_empty())
            || self.del.relation(pred).is_some_and(|r| !r.is_empty())
    }

    pub(crate) fn as_net(&self) -> NetChange<'_> {
        NetChange {
            ins: &self.ins,
            del: &self.del,
        }
    }
}

/// How one stratum is maintained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Maintenance {
    /// Exact derivation counting (stratum reads only lower inputs).
    Counting,
    /// Delete-and-rederive (stratum has intra-stratum dependencies).
    Dred,
}

/// Per-stratum metadata derived from the program.
struct StratumInfo {
    /// Indices into the program's rule vector.
    rules: Vec<usize>,
    /// Predicates whose content this stratum defines.
    idb: HashSet<Symbol>,
    /// Maintenance algorithm.
    maintenance: Maintenance,
}

/// A continuously maintained materialization of a stratified program over a
/// base database.
///
/// See the module documentation for the algorithms; the contract is:
/// after `apply(delta)`, [`MaterializedView::database`] equals what
/// [`Program::eval`] would compute from scratch over the updated base, and
/// the returned [`Delta`] lists exactly the facts (base and derived) whose
/// membership changed.
pub struct MaterializedView {
    program: Program,
    /// Current base (extensional) facts — the inputs under the program.
    base: Database,
    /// The saturated database: base plus everything derivable.
    db: Database,
    /// Derivation counts for facts of counting strata (excluding external
    /// support, which lives in `base`), keyed in the interned id plane.
    counts: HashMap<IdFact, u64>,
    strata: Vec<StratumInfo>,
}

impl MaterializedView {
    /// Evaluates `program` over `base` from scratch and starts maintaining
    /// the result.
    pub fn new(program: Program, base: Database) -> Result<MaterializedView> {
        MaterializedView::new_profiled(program, base, None)
    }

    /// [`MaterializedView::new`] with optional per-rule cost capture of
    /// the from-scratch construction fixpoint. The initial evaluation is
    /// where a freshly added rule does all of its first-stage work —
    /// without this hook a profiler would see only the later differential
    /// maintenance and miss the build entirely. `None` is exactly the
    /// unprofiled path.
    pub fn new_profiled(
        program: Program,
        base: Database,
        profile: Option<&mut crate::profile::RuleProfile>,
    ) -> Result<MaterializedView> {
        let strata = classify(&program);
        let mut db = base.clone();
        let mut stats = crate::EvalStats::default();
        program.eval_in_place_profiled(
            &mut db,
            crate::EvalStrategy::Seminaive,
            &mut stats,
            profile,
        )?;
        let mut view = MaterializedView {
            program,
            base,
            db,
            counts: HashMap::new(),
            strata,
        };
        view.init_counts()?;
        Ok(view)
    }

    /// The maintained materialization (base plus derived facts).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The current base facts.
    pub fn base(&self) -> &Database {
        &self.base
    }

    /// The program being maintained.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Re-tunes the seminaive worker count of the maintained program.
    /// Maintenance passes themselves are differential (counting/DRed walk
    /// individual changes), so workers matter for the from-scratch paths:
    /// view construction and [`MaterializedView::recompute`].
    pub fn set_workers(&mut self, workers: usize) {
        self.program.set_workers(workers);
    }

    /// Number of derivations currently supporting `fact` (counting strata
    /// only; facts of recursive strata are maintained by DRed and report
    /// `None`). Base facts add one unit of external support.
    pub fn support(&self, fact: &Fact) -> Option<u64> {
        let stratum = self.stratum_of(fact.pred)?;
        if self.strata[stratum].maintenance != Maintenance::Counting {
            return None;
        }
        let derived = {
            let mut ids = Vec::with_capacity(fact.tuple.len());
            if intern::lookup_row(&fact.tuple, &mut ids) {
                self.counts
                    .get(&IdFact {
                        pred: fact.pred,
                        row: ids.into(),
                    })
                    .copied()
                    .unwrap_or(0)
            } else {
                0
            }
        };
        let external = u64::from(self.base.contains(fact));
        Some(derived + external)
    }

    /// Applies a batch of base changes and returns the net observable
    /// change: every fact — base or derived — that appeared or disappeared
    /// from the materialization.
    ///
    /// Deletions of absent facts and insertions of present facts are
    /// ignored (idempotent batches).
    pub fn apply(&mut self, delta: &Delta) -> Result<Delta> {
        self.apply_profiled(delta, None)
    }

    /// [`MaterializedView::apply`] with optional per-rule cost capture:
    /// counting strata record one [`crate::profile::RuleCost`] sample
    /// per rule whose differential plans ran, DRed strata one sample
    /// per maintenance pass under the stratum's first head predicate
    /// (the rederivation phases interleave rules and are not separable
    /// — see [`crate::profile::RuleProfile`]). `None` is exactly the
    /// unprofiled path.
    pub fn apply_profiled(
        &mut self,
        delta: &Delta,
        mut profile: Option<&mut crate::profile::RuleProfile>,
    ) -> Result<Delta> {
        let mut changes = Changes::default();
        // Pending external-support adjustments for IDB predicates, routed
        // to their stratum's maintenance pass.
        let mut ext: Vec<(usize, Fact, bool)> = Vec::new();

        for fact in &delta.deletes {
            if !self.base.remove(fact) {
                continue; // not a base fact: nothing to retract
            }
            match self.stratum_of(fact.pred) {
                None => {
                    // Pure EDB predicate: the change is immediate.
                    self.db.remove(fact);
                    changes.record_delete(fact)?;
                }
                Some(s) => ext.push((s, fact.clone(), false)),
            }
        }
        for fact in &delta.inserts {
            if !self.base.insert(fact.clone())? {
                continue; // already a base fact
            }
            match self.stratum_of(fact.pred) {
                None => {
                    if self.db.insert(fact.clone())? {
                        changes.record_insert(fact)?;
                    }
                }
                Some(s) => ext.push((s, fact.clone(), true)),
            }
        }

        for (idx, info) in self.strata.iter().enumerate() {
            let stratum_ext: Vec<(&Fact, bool)> = ext
                .iter()
                .filter(|(s, _, _)| *s == idx)
                .map(|(_, f, add)| (f, *add))
                .collect();
            // Skip strata whose inputs did not change and that received no
            // external-support adjustments.
            let inputs_changed = info.rules.iter().any(|&ri| {
                let rule = &self.program.rules()[ri];
                rule.positive_preds()
                    .iter()
                    .chain(rule.negative_preds().iter())
                    .any(|p| changes.touches(*p))
            });
            if !inputs_changed && stratum_ext.is_empty() {
                continue;
            }
            match info.maintenance {
                Maintenance::Counting => counting::maintain(
                    &self.program,
                    info,
                    &mut self.db,
                    &self.base,
                    &mut self.counts,
                    &mut changes,
                    &stratum_ext,
                    profile.as_deref_mut(),
                )?,
                Maintenance::Dred => {
                    let delta_in = profile
                        .as_ref()
                        .map(|_| (changes.ins.fact_count() + changes.del.fact_count()) as u64);
                    let t0 = profile.as_ref().map(|_| std::time::Instant::now());
                    dred::maintain(
                        &self.program,
                        info,
                        &mut self.db,
                        &self.base,
                        &mut changes,
                        &stratum_ext,
                    )?;
                    if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
                        let head = self.program.rules()[info.rules[0]].head.pred;
                        p.record(
                            head,
                            t0.elapsed().as_nanos() as u64,
                            delta_in.unwrap_or(0),
                            0,
                        );
                    }
                }
            }
        }

        Ok(Delta {
            inserts: changes.ins.facts().collect(),
            deletes: changes.del.facts().collect(),
        })
    }

    /// Recomputes the materialization from scratch (reference semantics;
    /// used by tests and as a consistency oracle).
    pub fn recompute(&self) -> Result<Database> {
        self.program.eval(&self.base)
    }

    fn stratum_of(&self, pred: Symbol) -> Option<usize> {
        self.program.strata().pred_stratum.get(&pred).copied()
    }

    /// Populates derivation counts for counting strata by re-matching every
    /// rule against the saturated database (runs once, at construction).
    fn init_counts(&mut self) -> Result<()> {
        let compiled = self.program.eval_config().compiled;
        let mut scratch = crate::eval::Scratch::new();
        for info in &self.strata {
            if info.maintenance != Maintenance::Counting {
                continue;
            }
            for &ri in &info.rules {
                if compiled {
                    let plan = self.program.plan(ri);
                    let ctx = crate::eval::FixCtx {
                        db: &self.db,
                        delta: None,
                    };
                    let counts = &mut self.counts;
                    crate::eval::run_plan(plan, &ctx, &mut scratch, &mut |row| {
                        *counts.entry(IdFact::new(plan.head_pred, row)).or_insert(0) += 1;
                        Ok(())
                    })?;
                } else {
                    let rule = &self.program.rules()[ri];
                    let mut heads: Vec<Fact> = Vec::new();
                    crate::eval::match_body(
                        &self.db,
                        None,
                        &rule.body,
                        crate::Subst::new(),
                        &mut |s| {
                            if let Some(fact) = rule.head.ground(&s) {
                                heads.push(fact);
                            }
                            Ok(())
                        },
                    )?;
                    for fact in heads {
                        *self.counts.entry(IdFact::of_fact(&fact)).or_insert(0) += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for MaterializedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaterializedView")
            .field("base_facts", &self.base.fact_count())
            .field("total_facts", &self.db.fact_count())
            .field("strata", &self.strata.len())
            .field("counted_facts", &self.counts.len())
            .finish()
    }
}

/// Derives per-stratum maintenance metadata from the program.
fn classify(program: &Program) -> Vec<StratumInfo> {
    let strata = program.strata();
    let mut out = Vec::with_capacity(strata.rule_strata.len());
    for (idx, rule_ids) in strata.rule_strata.iter().enumerate() {
        let idb: HashSet<Symbol> = strata
            .pred_stratum
            .iter()
            .filter(|(_, s)| **s == idx)
            .map(|(p, _)| *p)
            .collect();
        // Counting applies when no rule of the stratum reads a predicate
        // the stratum itself defines — i.e. the stratum is a single layer
        // over settled inputs. Everything else (true recursion, but also
        // non-recursive chains within one stratum) goes through DRed,
        // which tolerates intra-stratum dependencies.
        let self_reading = rule_ids.iter().any(|&ri| {
            let rule = &program.rules()[ri];
            rule.positive_preds()
                .iter()
                .chain(rule.negative_preds().iter())
                .any(|p| idb.contains(p))
        });
        out.push(StratumInfo {
            rules: rule_ids.clone(),
            idb,
            maintenance: if self_reading {
                Maintenance::Dred
            } else {
                Maintenance::Counting
            },
        });
    }
    out
}

#[cfg(test)]
mod tests;
