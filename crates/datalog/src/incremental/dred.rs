//! DRed (delete and rederive) maintenance for self-reading strata.
//!
//! Counting is unsound under recursion — a fact can sit on a derivation
//! cycle and keep itself alive — so strata whose rules read their own
//! predicates use the classic three-phase algorithm (Gupta, Mumick &
//! Subrahmanian, SIGMOD '93):
//!
//! 1. **Overdelete.** Starting from the deleted inputs (and from
//!    insertions into negated inputs, which also destroy derivations),
//!    transitively delete every stratum fact with *some* derivation that
//!    touches a deleted fact. This over-approximates: a fact with an
//!    untouched alternative derivation is removed here and resurrected in
//!    phase 2. Matching runs against the **old** state throughout — the
//!    set of derivations being destroyed is a property of the old
//!    database.
//! 2. **Rederive.** For each overdeleted fact, check one derivation step
//!    against the *remaining* database (or external support from the base
//!    relation); survivors are reinserted and seed phase 3, which rebuilds
//!    anything reachable from them.
//! 3. **Insert.** Derivations gained through inserted inputs (and through
//!    deletions from negated inputs) seed a standard seminaive fixpoint
//!    within the stratum, shared with the rederivation seeds.
//!
//! Phases 1 and 3 tolerate over-counting (they work with sets), which is
//! why they can use the cheaper all-old / all-new matching modes instead
//! of exact differencing. On the default path every phase runs compiled
//! plans over interned ids — differential plans for the slot scans, the
//! head-bound rederivation plan for phase 2's single-witness probes, and
//! the fixpoint plans for phase 3's seminaive propagation; the interpreted
//! `Subst` matcher remains selectable as the semantic reference.

use super::{Changes, IdFact, StratumInfo};
use crate::eval::{
    has_witness, match_body, match_body_at_slot, run_plan, DiffCtx, DiffSide, FixCtx, Scratch,
};
use crate::{Atom, BodyItem, Database, DatalogError, Fact, Program, Result, Subst, Term};
use std::collections::HashSet;

/// Maintains one DRed stratum in place. Parameters as in
/// [`super::counting::maintain`], except that `base` is consulted for
/// external support during rederivation instead of through counts.
pub(super) fn maintain(
    program: &Program,
    info: &StratumInfo,
    db: &mut Database,
    base: &Database,
    changes: &mut Changes,
    ext: &[(&Fact, bool)],
) -> Result<()> {
    let compiled = program.eval_config().compiled;
    let limit = program.iteration_limit();
    // One scratch reused across every plan invocation of this pass.
    let mut scratch = Scratch::new();

    // Collects every head produced by the differential plan / matcher for
    // (rule `ri`, literal `slot`) with the given side and pinned delta.
    let diff_heads = |ri: usize,
                      slot: usize,
                      side: DiffSide,
                      delta_db: &Database,
                      db: &Database,
                      changes: &Changes,
                      scratch: &mut Scratch|
     -> Result<Vec<IdFact>> {
        let mut heads = Vec::new();
        if compiled {
            let plan = program.diff_plan(ri, slot);
            let ctx = DiffCtx {
                db,
                ins: &changes.ins,
                del: &changes.del,
                side,
                slot,
                delta: delta_db,
            };
            run_plan(plan, &ctx, scratch, &mut |row| {
                heads.push(IdFact::new(plan.head_pred, row));
                Ok(())
            })?;
        } else {
            let rule = &program.rules()[ri];
            match_body_at_slot(
                db,
                &changes.as_net(),
                side,
                &rule.body,
                slot,
                delta_db,
                &mut |s| {
                    if let Some(fact) = rule.head.ground(&s) {
                        heads.push(IdFact::of_fact(&fact));
                    }
                    Ok(())
                },
            )?;
        }
        Ok(heads)
    };

    // ---- Phase 1: overdeletion, against the old state.
    let mut over: HashSet<IdFact> = HashSet::new();
    let mut frontier = Database::new();

    // Base deletions of this stratum's own predicates start the frontier.
    for (fact, added) in ext {
        if !added {
            let idf = IdFact::of_fact(fact);
            if db.contains_ids(idf.pred, &idf.row) && over.insert(idf.clone()) {
                frontier.insert_ids(idf.pred, idf.row.len(), &idf.row)?;
            }
        }
    }
    // Derivations destroyed by input changes: deleted positive inputs,
    // inserted negated inputs.
    for &ri in &info.rules {
        let rule = &program.rules()[ri];
        let mut slot = 0usize;
        for item in &rule.body {
            let BodyItem::Literal(lit) = item else {
                continue;
            };
            let pred = lit.atom.pred;
            if !info.idb.contains(&pred) {
                let delta_db = if lit.negated {
                    &changes.ins
                } else {
                    &changes.del
                };
                if delta_db.relation(pred).is_some_and(|r| !r.is_empty()) {
                    let heads =
                        diff_heads(ri, slot, DiffSide::Old, delta_db, db, changes, &mut scratch)?;
                    for fact in heads {
                        if db.contains_ids(fact.pred, &fact.row) && over.insert(fact.clone()) {
                            frontier.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
                        }
                    }
                }
            }
            slot += 1;
        }
    }
    // Transitive overdeletion through intra-stratum dependencies. The
    // stratum's own relations are still untouched in `db`, so the old
    // state of a stratum predicate *is* `db` — which is what `DiffSide::Old`
    // reads for predicates without recorded changes.
    let mut rounds = 0usize;
    while frontier.fact_count() > 0 {
        rounds += 1;
        if rounds > limit {
            return Err(DatalogError::IterationLimit(limit));
        }
        let mut next = Database::new();
        for &ri in &info.rules {
            let rule = &program.rules()[ri];
            let mut slot = 0usize;
            for item in &rule.body {
                let BodyItem::Literal(lit) = item else {
                    continue;
                };
                if !lit.negated
                    && info.idb.contains(&lit.atom.pred)
                    && frontier
                        .relation(lit.atom.pred)
                        .is_some_and(|r| !r.is_empty())
                {
                    let heads = diff_heads(
                        ri,
                        slot,
                        DiffSide::Old,
                        &frontier,
                        db,
                        changes,
                        &mut scratch,
                    )?;
                    for fact in heads {
                        if db.contains_ids(fact.pred, &fact.row) && over.insert(fact.clone()) {
                            next.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
                        }
                    }
                }
                slot += 1;
            }
        }
        frontier = next;
    }

    for fact in &over {
        db.remove_ids(fact.pred, &fact.row);
    }

    // ---- Phase 2: rederivation against the remaining database.
    let mut restored: HashSet<IdFact> = HashSet::new();
    let mut added: HashSet<IdFact> = HashSet::new();
    let mut seed = Database::new();
    for fact in &over {
        let mut derivable = base.contains_ids(fact.pred, &fact.row);
        if !derivable && compiled {
            for &ri in &info.rules {
                let plan = program.rederive_plan(ri);
                if plan.head_pred != fact.pred || plan.head_arity() != fact.row.len() {
                    continue;
                }
                scratch.fit(plan);
                if plan.unify_head(&fact.row, &mut scratch.regs)
                    && has_witness(plan, &FixCtx { db, delta: None }, &mut scratch)?
                {
                    derivable = true;
                    break;
                }
            }
        } else if !derivable {
            let ground = fact.to_fact();
            for &ri in &info.rules {
                let rule = &program.rules()[ri];
                if let Some(init) = unify_head(&rule.head, &ground) {
                    if has_any_match(db, &rule.body, init)? {
                        derivable = true;
                        break;
                    }
                }
            }
        }
        if derivable && db.insert_ids(fact.pred, fact.row.len(), &fact.row)? {
            restored.insert(fact.clone());
            seed.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
        }
    }

    // ---- Phase 3: insertions, against the new state.
    let mut insert_fact = |fact: IdFact, db: &mut Database, seed: &mut Database| -> Result<()> {
        if db.insert_ids(fact.pred, fact.row.len(), &fact.row)? {
            seed.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
            if over.contains(&fact) {
                restored.insert(fact);
            } else {
                added.insert(fact);
            }
        }
        Ok(())
    };
    // Base insertions of this stratum's own predicates.
    for (fact, added_flag) in ext {
        if *added_flag {
            insert_fact(IdFact::of_fact(fact), db, &mut seed)?;
        }
    }
    // Derivations gained through input changes: inserted positive inputs,
    // deleted negated inputs.
    for &ri in &info.rules {
        let rule = &program.rules()[ri];
        let mut slot = 0usize;
        for item in &rule.body {
            let BodyItem::Literal(lit) = item else {
                continue;
            };
            let pred = lit.atom.pred;
            if !info.idb.contains(&pred) {
                let delta_db = if lit.negated {
                    &changes.del
                } else {
                    &changes.ins
                };
                if delta_db.relation(pred).is_some_and(|r| !r.is_empty()) {
                    let heads =
                        diff_heads(ri, slot, DiffSide::New, delta_db, db, changes, &mut scratch)?;
                    for fact in heads {
                        insert_fact(fact, db, &mut seed)?;
                    }
                }
            }
            slot += 1;
        }
    }

    // Seminaive propagation of the seeds through the stratum.
    let mut rounds = 0usize;
    while seed.fact_count() > 0 {
        rounds += 1;
        if rounds > limit {
            return Err(DatalogError::IterationLimit(limit));
        }
        let mut candidates: Vec<IdFact> = Vec::new();
        for &ri in &info.rules {
            let rule = &program.rules()[ri];
            let mut ordinal = 0usize;
            for item in &rule.body {
                let Some(atom) = item.as_positive_atom() else {
                    continue;
                };
                if info.idb.contains(&atom.pred)
                    && seed.relation(atom.pred).is_some_and(|r| !r.is_empty())
                {
                    if compiled {
                        let plan = program.plan(ri);
                        let ctx = FixCtx {
                            db,
                            delta: Some((&seed, ordinal)),
                        };
                        run_plan(plan, &ctx, &mut scratch, &mut |row| {
                            candidates.push(IdFact::new(plan.head_pred, row));
                            Ok(())
                        })?;
                    } else {
                        match_body(
                            db,
                            Some((&seed, ordinal)),
                            &rule.body,
                            Subst::new(),
                            &mut |s| match rule.head.ground(&s) {
                                Some(fact) => {
                                    candidates.push(IdFact::of_fact(&fact));
                                    Ok(())
                                }
                                None => Err(DatalogError::UnboundVariable(format!(
                                    "head of {rule} not fully bound"
                                ))),
                            },
                        )?;
                    }
                }
                ordinal += 1;
            }
        }
        let mut next = Database::new();
        for fact in candidates {
            if !db.contains_ids(fact.pred, &fact.row) {
                db.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
                next.insert_ids(fact.pred, fact.row.len(), &fact.row)?;
                if over.contains(&fact) {
                    restored.insert(fact);
                } else {
                    added.insert(fact);
                }
            }
        }
        seed = next;
    }

    // ---- Net effect of this stratum.
    for fact in &over {
        if !restored.contains(fact) {
            changes.record_delete_ids(fact)?;
        }
    }
    for fact in &added {
        changes.record_insert_ids(fact)?;
    }
    Ok(())
}

/// First-witness probe (interpreted reference path): does `body` have *any*
/// satisfying substitution under `init`? The matcher has no native early
/// exit, so the emit callback aborts the walk with a sentinel error once a
/// witness is found — rederivation only needs one derivation, not all of
/// them.
fn has_any_match(db: &Database, body: &[BodyItem], init: Subst) -> Result<bool> {
    const WITNESS: usize = usize::MAX;
    match match_body(db, None, body, init, &mut |_s| {
        Err(DatalogError::IterationLimit(WITNESS))
    }) {
        Ok(()) => Ok(false),
        Err(DatalogError::IterationLimit(WITNESS)) => Ok(true),
        Err(e) => Err(e),
    }
}

/// Unifies a rule head with a ground fact, yielding the initial bindings
/// for a rederivation probe (`None` when the head cannot produce the fact).
fn unify_head(head: &Atom, fact: &Fact) -> Option<Subst> {
    if head.pred != fact.pred || head.args.len() != fact.tuple.len() {
        return None;
    }
    let mut subst = Subst::new();
    for (term, value) in head.args.iter().zip(fact.tuple.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => {
                if !subst.unify_var(*v, value) {
                    return None;
                }
            }
        }
    }
    Some(subst)
}
