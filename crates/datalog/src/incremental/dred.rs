//! DRed (delete and rederive) maintenance for self-reading strata.
//!
//! Counting is unsound under recursion — a fact can sit on a derivation
//! cycle and keep itself alive — so strata whose rules read their own
//! predicates use the classic three-phase algorithm (Gupta, Mumick &
//! Subrahmanian, SIGMOD '93):
//!
//! 1. **Overdelete.** Starting from the deleted inputs (and from
//!    insertions into negated inputs, which also destroy derivations),
//!    transitively delete every stratum fact with *some* derivation that
//!    touches a deleted fact. This over-approximates: a fact with an
//!    untouched alternative derivation is removed here and resurrected in
//!    phase 2. Matching runs against the **old** state throughout — the
//!    set of derivations being destroyed is a property of the old
//!    database.
//! 2. **Rederive.** For each overdeleted fact, check one derivation step
//!    against the *remaining* database (or external support from the base
//!    relation); survivors are reinserted and seed phase 3, which rebuilds
//!    anything reachable from them.
//! 3. **Insert.** Derivations gained through inserted inputs (and through
//!    deletions from negated inputs) seed a standard seminaive fixpoint
//!    within the stratum, shared with the rederivation seeds.
//!
//! Phases 1 and 3 tolerate over-counting (they work with sets), which is
//! why they can use the cheaper all-old / all-new matching modes instead
//! of exact differencing.

use super::{Changes, StratumInfo};
use crate::eval::{match_body, match_body_at_slot, DiffSide};
use crate::{Atom, BodyItem, Database, DatalogError, Fact, Program, Result, Subst, Term};
use std::collections::HashSet;

/// Maintains one DRed stratum in place. Parameters as in
/// [`super::counting::maintain`], except that `base` is consulted for
/// external support during rederivation instead of through counts.
pub(super) fn maintain(
    program: &Program,
    info: &StratumInfo,
    db: &mut Database,
    base: &Database,
    changes: &mut Changes,
    ext: &[(&Fact, bool)],
) -> Result<()> {
    let limit = program.iteration_limit();

    // ---- Phase 1: overdeletion, against the old state.
    let mut over: HashSet<Fact> = HashSet::new();
    let mut frontier = Database::new();

    // Base deletions of this stratum's own predicates start the frontier.
    for (fact, added) in ext {
        if !added && db.contains(fact) && over.insert((*fact).clone()) {
            frontier.insert((*fact).clone())?;
        }
    }
    // Derivations destroyed by input changes: deleted positive inputs,
    // inserted negated inputs.
    for &ri in &info.rules {
        let rule = &program.rules()[ri];
        let mut slot = 0usize;
        for item in &rule.body {
            let BodyItem::Literal(lit) = item else {
                continue;
            };
            let pred = lit.atom.pred;
            if !info.idb.contains(&pred) {
                let delta_db = if lit.negated {
                    &changes.ins
                } else {
                    &changes.del
                };
                if delta_db.relation(pred).is_some_and(|r| !r.is_empty()) {
                    let mut heads = Vec::new();
                    match_body_at_slot(
                        db,
                        &changes.as_net(),
                        DiffSide::Old,
                        &rule.body,
                        slot,
                        delta_db,
                        &mut |s| {
                            if let Some(fact) = rule.head.ground(&s) {
                                heads.push(fact);
                            }
                            Ok(())
                        },
                    )?;
                    for fact in heads {
                        if db.contains(&fact) && over.insert(fact.clone()) {
                            frontier.insert(fact)?;
                        }
                    }
                }
            }
            slot += 1;
        }
    }
    // Transitive overdeletion through intra-stratum dependencies. The
    // stratum's own relations are still untouched in `db`, so the old
    // state of a stratum predicate *is* `db` — which is what `DiffSide::Old`
    // reads for predicates without recorded changes.
    let mut rounds = 0usize;
    while frontier.fact_count() > 0 {
        rounds += 1;
        if rounds > limit {
            return Err(DatalogError::IterationLimit(limit));
        }
        let mut next = Database::new();
        for &ri in &info.rules {
            let rule = &program.rules()[ri];
            let mut slot = 0usize;
            for item in &rule.body {
                let BodyItem::Literal(lit) = item else {
                    continue;
                };
                if !lit.negated
                    && info.idb.contains(&lit.atom.pred)
                    && frontier
                        .relation(lit.atom.pred)
                        .is_some_and(|r| !r.is_empty())
                {
                    let mut heads = Vec::new();
                    match_body_at_slot(
                        db,
                        &changes.as_net(),
                        DiffSide::Old,
                        &rule.body,
                        slot,
                        &frontier,
                        &mut |s| {
                            if let Some(fact) = rule.head.ground(&s) {
                                heads.push(fact);
                            }
                            Ok(())
                        },
                    )?;
                    for fact in heads {
                        if db.contains(&fact) && over.insert(fact.clone()) {
                            next.insert(fact)?;
                        }
                    }
                }
                slot += 1;
            }
        }
        frontier = next;
    }

    for fact in &over {
        db.remove(fact);
    }

    // ---- Phase 2: rederivation against the remaining database.
    let mut restored: HashSet<Fact> = HashSet::new();
    let mut added: HashSet<Fact> = HashSet::new();
    let mut seed = Database::new();
    for fact in &over {
        let mut derivable = base.contains(fact);
        if !derivable {
            'rules: for &ri in &info.rules {
                let rule = &program.rules()[ri];
                if let Some(init) = unify_head(&rule.head, fact) {
                    if has_any_match(db, &rule.body, init)? {
                        derivable = true;
                        break 'rules;
                    }
                }
            }
        }
        if derivable && db.insert(fact.clone())? {
            restored.insert(fact.clone());
            seed.insert(fact.clone())?;
        }
    }

    // ---- Phase 3: insertions, against the new state.
    let mut insert_fact = |fact: Fact, db: &mut Database, seed: &mut Database| -> Result<()> {
        if db.insert(fact.clone())? {
            if over.contains(&fact) {
                restored.insert(fact.clone());
            } else {
                added.insert(fact.clone());
            }
            seed.insert(fact)?;
        }
        Ok(())
    };
    // Base insertions of this stratum's own predicates.
    for (fact, added_flag) in ext {
        if *added_flag {
            insert_fact((*fact).clone(), db, &mut seed)?;
        }
    }
    // Derivations gained through input changes: inserted positive inputs,
    // deleted negated inputs.
    for &ri in &info.rules {
        let rule = &program.rules()[ri];
        let mut slot = 0usize;
        for item in &rule.body {
            let BodyItem::Literal(lit) = item else {
                continue;
            };
            let pred = lit.atom.pred;
            if !info.idb.contains(&pred) {
                let delta_db = if lit.negated {
                    &changes.del
                } else {
                    &changes.ins
                };
                if delta_db.relation(pred).is_some_and(|r| !r.is_empty()) {
                    let mut heads = Vec::new();
                    match_body_at_slot(
                        db,
                        &changes.as_net(),
                        DiffSide::New,
                        &rule.body,
                        slot,
                        delta_db,
                        &mut |s| {
                            if let Some(fact) = rule.head.ground(&s) {
                                heads.push(fact);
                            }
                            Ok(())
                        },
                    )?;
                    for fact in heads {
                        insert_fact(fact, db, &mut seed)?;
                    }
                }
            }
            slot += 1;
        }
    }

    // Seminaive propagation of the seeds through the stratum.
    let mut rounds = 0usize;
    while seed.fact_count() > 0 {
        rounds += 1;
        if rounds > limit {
            return Err(DatalogError::IterationLimit(limit));
        }
        let mut candidates = Vec::new();
        for &ri in &info.rules {
            let rule = &program.rules()[ri];
            let mut ordinal = 0usize;
            for item in &rule.body {
                let Some(atom) = item.as_positive_atom() else {
                    continue;
                };
                if info.idb.contains(&atom.pred)
                    && seed.relation(atom.pred).is_some_and(|r| !r.is_empty())
                {
                    match_body(
                        db,
                        Some((&seed, ordinal)),
                        &rule.body,
                        Subst::new(),
                        &mut |s| match rule.head.ground(&s) {
                            Some(fact) => {
                                candidates.push(fact);
                                Ok(())
                            }
                            None => Err(DatalogError::UnboundVariable(format!(
                                "head of {rule} not fully bound"
                            ))),
                        },
                    )?;
                }
                ordinal += 1;
            }
        }
        let mut next = Database::new();
        for fact in candidates {
            if !db.contains(&fact) {
                db.insert(fact.clone())?;
                if over.contains(&fact) {
                    restored.insert(fact.clone());
                } else {
                    added.insert(fact.clone());
                }
                next.insert(fact)?;
            }
        }
        seed = next;
    }

    // ---- Net effect of this stratum.
    for fact in &over {
        if !restored.contains(fact) {
            changes.record_delete(fact)?;
        }
    }
    for fact in &added {
        changes.record_insert(fact)?;
    }
    Ok(())
}

/// First-witness probe: does `body` have *any* satisfying substitution
/// under `init`? The matcher has no native early exit, so the emit
/// callback aborts the walk with a sentinel error once a witness is found
/// — rederivation only needs one derivation, not all of them.
fn has_any_match(db: &Database, body: &[BodyItem], init: Subst) -> Result<bool> {
    const WITNESS: usize = usize::MAX;
    match match_body(db, None, body, init, &mut |_s| {
        Err(DatalogError::IterationLimit(WITNESS))
    }) {
        Ok(()) => Ok(false),
        Err(DatalogError::IterationLimit(WITNESS)) => Ok(true),
        Err(e) => Err(e),
    }
}

/// Unifies a rule head with a ground fact, yielding the initial bindings
/// for a rederivation probe (`None` when the head cannot produce the fact).
fn unify_head(head: &Atom, fact: &Fact) -> Option<Subst> {
    if head.pred != fact.pred || head.args.len() != fact.tuple.len() {
        return None;
    }
    let mut subst = Subst::new();
    for (term, value) in head.args.iter().zip(fact.tuple.iter()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => {
                if !subst.unify_var(*v, value) {
                    return None;
                }
            }
        }
    }
    Some(subst)
}
