use super::*;
use crate::{Atom, BodyItem, Rule, Term, Value};

fn atom(pred: &str, vars: &[&str]) -> Atom {
    Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
}

fn fact(pred: &str, vals: &[i64]) -> Fact {
    Fact::new(pred, vals.iter().map(|&v| Value::from(v)))
}

fn edge_db(edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert(fact("edge", &[a, b])).unwrap();
    }
    db
}

fn tc_program() -> Program {
    Program::new(vec![
        Rule::new(
            atom("path", &["x", "y"]),
            vec![atom("edge", &["x", "y"]).into()],
        ),
        Rule::new(
            atom("path", &["x", "z"]),
            vec![
                atom("edge", &["x", "y"]).into(),
                atom("path", &["y", "z"]).into(),
            ],
        ),
    ])
    .unwrap()
}

/// One non-recursive layer: good(id) :- rate(id, r), r >= 4.
fn filter_program() -> Program {
    Program::new(vec![Rule::new(
        atom("good", &["id"]),
        vec![
            atom("rate", &["id", "r"]).into(),
            BodyItem::cmp(crate::CmpOp::Ge, Term::var("r"), Term::cst(4)),
        ],
    )])
    .unwrap()
}

/// Asserts the view equals a from-scratch recomputation, relation by
/// relation, in both directions.
fn assert_consistent(view: &MaterializedView) {
    let reference = view.recompute().unwrap();
    let db = view.database();
    for f in reference.facts() {
        assert!(db.contains(&f), "incremental view lost {f}");
    }
    for f in db.facts() {
        assert!(reference.contains(&f), "incremental view kept stale {f}");
    }
}

#[test]
fn counting_insert_then_delete_round_trips() {
    let mut base = Database::new();
    base.insert(fact("rate", &[1, 5])).unwrap();
    base.insert(fact("rate", &[2, 2])).unwrap();
    let mut view = MaterializedView::new(filter_program(), base).unwrap();
    assert!(view.database().contains(&fact("good", &[1])));
    assert!(!view.database().contains(&fact("good", &[2])));

    let out = view
        .apply(&Delta::insertion(fact("rate", &[3, 4])))
        .unwrap();
    assert!(out.inserts.contains(&fact("good", &[3])));
    assert_consistent(&view);

    let out = view.apply(&Delta::deletion(fact("rate", &[3, 4]))).unwrap();
    assert!(out.deletes.contains(&fact("good", &[3])));
    assert!(!view.database().contains(&fact("good", &[3])));
    assert_consistent(&view);
}

#[test]
fn counting_tracks_multiple_supports() {
    // Two rules deriving the same head: support must reach zero only when
    // both derivations are gone.
    let program = Program::new(vec![
        Rule::new(atom("vis", &["x"]), vec![atom("a", &["x"]).into()]),
        Rule::new(atom("vis", &["x"]), vec![atom("b", &["x"]).into()]),
    ])
    .unwrap();
    let mut base = Database::new();
    base.insert(fact("a", &[1])).unwrap();
    base.insert(fact("b", &[1])).unwrap();
    let mut view = MaterializedView::new(program, base).unwrap();
    assert_eq!(view.support(&fact("vis", &[1])), Some(2));

    let out = view.apply(&Delta::deletion(fact("a", &[1]))).unwrap();
    assert!(out.deletes.iter().all(|f| f.pred != Symbol::intern("vis")));
    assert!(view.database().contains(&fact("vis", &[1])));
    assert_eq!(view.support(&fact("vis", &[1])), Some(1));

    let out = view.apply(&Delta::deletion(fact("b", &[1]))).unwrap();
    assert!(out.deletes.contains(&fact("vis", &[1])));
    assert_consistent(&view);
}

#[test]
fn counting_is_exact_under_self_join() {
    // pair(x,z) :- e(x,y), e(y,z): deleting e(1,1) removes derivations
    // that used it at both slots — naive differencing would double-count.
    let program = Program::new(vec![Rule::new(
        atom("pair", &["x", "z"]),
        vec![atom("e", &["x", "y"]).into(), atom("e", &["y", "z"]).into()],
    )])
    .unwrap();
    let mut base = Database::new();
    base.insert(fact("e", &[1, 1])).unwrap();
    base.insert(fact("e", &[1, 2])).unwrap();
    let mut view = MaterializedView::new(program, base).unwrap();
    // pair(1,1)=e11*e11, pair(1,2)=e11*e12.
    assert_eq!(view.support(&fact("pair", &[1, 1])), Some(1));

    view.apply(&Delta::deletion(fact("e", &[1, 1]))).unwrap();
    assert_consistent(&view);
    assert!(!view.database().contains(&fact("pair", &[1, 1])));
    assert!(!view.database().contains(&fact("pair", &[1, 2])));

    view.apply(&Delta::insertion(fact("e", &[1, 1]))).unwrap();
    assert_consistent(&view);
    assert_eq!(view.support(&fact("pair", &[1, 2])), Some(1));
}

#[test]
fn dred_chain_cut_deletes_suffix_paths() {
    let mut view = MaterializedView::new(tc_program(), edge_db(&[(1, 2), (2, 3), (3, 4)])).unwrap();
    assert_eq!(view.database().relation("path").unwrap().len(), 6);

    let out = view.apply(&Delta::deletion(fact("edge", &[2, 3]))).unwrap();
    assert_consistent(&view);
    assert_eq!(view.database().relation("path").unwrap().len(), 2);
    // edge(2,3) itself plus paths (2,3),(1,3),(2,4),(1,4).
    assert_eq!(out.deletes.len(), 5);
    assert!(out.inserts.is_empty());
}

#[test]
fn dred_rederives_through_alternative_paths() {
    // Diamond: 1→2→4 and 1→3→4; deleting 2→4 must keep path(1,4).
    let mut view =
        MaterializedView::new(tc_program(), edge_db(&[(1, 2), (2, 4), (1, 3), (3, 4)])).unwrap();
    let out = view.apply(&Delta::deletion(fact("edge", &[2, 4]))).unwrap();
    assert_consistent(&view);
    assert!(view.database().contains(&fact("path", &[1, 4])));
    // Net loss: edge(2,4) and path(2,4) only.
    assert_eq!(out.deletes.len(), 2);
}

#[test]
fn dred_cycle_does_not_self_support() {
    // 1→2→3→1 cycle plus tail 3→4; removing 1→2 must collapse the paths
    // that only the cycle supported (counting would leave them alive).
    let mut view =
        MaterializedView::new(tc_program(), edge_db(&[(1, 2), (2, 3), (3, 1), (3, 4)])).unwrap();
    let out = view.apply(&Delta::deletion(fact("edge", &[1, 2]))).unwrap();
    assert_consistent(&view);
    assert!(!out.deletes.is_empty());
    assert!(!view.database().contains(&fact("path", &[1, 2])));
    assert!(view.database().contains(&fact("path", &[3, 4])));
}

#[test]
fn dred_insertions_reconnect() {
    let mut view = MaterializedView::new(tc_program(), edge_db(&[(1, 2), (3, 4)])).unwrap();
    let out = view
        .apply(&Delta::insertion(fact("edge", &[2, 3])))
        .unwrap();
    assert_consistent(&view);
    assert_eq!(view.database().relation("path").unwrap().len(), 6);
    // edge(2,3) + paths (2,3),(1,3),(2,4),(1,4).
    assert_eq!(out.inserts.len(), 5);
}

#[test]
fn mixed_batch_insert_and_delete() {
    let mut view = MaterializedView::new(tc_program(), edge_db(&[(1, 2), (2, 3)])).unwrap();
    let mut delta = Delta::new();
    delta.delete(fact("edge", &[2, 3]));
    delta.insert(fact("edge", &[2, 4]));
    let out = view.apply(&delta).unwrap();
    assert_consistent(&view);
    assert!(out.deletes.contains(&fact("path", &[2, 3])));
    assert!(out.inserts.contains(&fact("path", &[2, 4])));
    assert!(out.inserts.contains(&fact("path", &[1, 4])));
}

#[test]
fn negation_across_strata_flips_signs() {
    // reach / unreach: deleting an edge can *insert* unreach facts.
    let program = Program::new(vec![
        Rule::new(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
        Rule::new(
            atom("reach", &["y"]),
            vec![
                atom("reach", &["x"]).into(),
                atom("edge", &["x", "y"]).into(),
            ],
        ),
        Rule::new(
            atom("unreach", &["x"]),
            vec![
                atom("node", &["x"]).into(),
                BodyItem::not_atom(atom("reach", &["x"])),
            ],
        ),
    ])
    .unwrap();
    let mut base = edge_db(&[(1, 2), (2, 3)]);
    for n in 1..=4 {
        base.insert(fact("node", &[n])).unwrap();
    }
    base.insert(fact("src", &[1])).unwrap();
    let mut view = MaterializedView::new(program, base).unwrap();
    assert_eq!(view.database().relation("unreach").unwrap().len(), 1); // {4}

    // Cutting 2→3 unreaches 3.
    let out = view.apply(&Delta::deletion(fact("edge", &[2, 3]))).unwrap();
    assert_consistent(&view);
    assert!(out.inserts.contains(&fact("unreach", &[3])));
    assert!(out.deletes.contains(&fact("reach", &[3])));

    // Reconnecting through 1→3 re-reaches 3 and retracts unreach(3).
    let out = view
        .apply(&Delta::insertion(fact("edge", &[1, 3])))
        .unwrap();
    assert_consistent(&view);
    assert!(out.deletes.contains(&fact("unreach", &[3])));
    assert!(out.inserts.contains(&fact("reach", &[3])));
}

#[test]
fn base_fact_on_idb_pred_is_external_support() {
    // good(id) is derived, but good(9) is also asserted as a base fact:
    // deleting the supporting rate leaves good(9) alive, deleting the base
    // fact kills it.
    let mut base = Database::new();
    base.insert(fact("rate", &[9, 5])).unwrap();
    base.insert(fact("good", &[9])).unwrap();
    let mut view = MaterializedView::new(filter_program(), base).unwrap();
    assert_eq!(view.support(&fact("good", &[9])), Some(2));

    view.apply(&Delta::deletion(fact("rate", &[9, 5]))).unwrap();
    assert!(view.database().contains(&fact("good", &[9])));
    assert_consistent(&view);

    let out = view.apply(&Delta::deletion(fact("good", &[9]))).unwrap();
    assert!(out.deletes.contains(&fact("good", &[9])));
    assert_consistent(&view);
}

#[test]
fn idempotent_changes_are_ignored() {
    let mut view = MaterializedView::new(tc_program(), edge_db(&[(1, 2)])).unwrap();
    let out = view
        .apply(&Delta::insertion(fact("edge", &[1, 2])))
        .unwrap();
    assert!(out.is_empty());
    let out = view.apply(&Delta::deletion(fact("edge", &[9, 9]))).unwrap();
    assert!(out.is_empty());
    assert_consistent(&view);
}

#[test]
fn delete_then_reinsert_in_one_batch_nets_out() {
    let mut view = MaterializedView::new(tc_program(), edge_db(&[(1, 2), (2, 3)])).unwrap();
    let mut delta = Delta::new();
    delta.delete(fact("edge", &[1, 2]));
    delta.insert(fact("edge", &[1, 2]));
    let out = view.apply(&delta).unwrap();
    assert!(out.is_empty(), "net no-op must report no changes: {out:?}");
    assert_consistent(&view);
}

#[test]
fn returned_delta_matches_membership_changes() {
    let mut view = MaterializedView::new(tc_program(), edge_db(&[(1, 2), (2, 3), (3, 4)])).unwrap();
    let before: std::collections::HashSet<Fact> = view.database().facts().collect();
    let out = view.apply(&Delta::deletion(fact("edge", &[1, 2]))).unwrap();
    let after: std::collections::HashSet<Fact> = view.database().facts().collect();
    let expected_deletes: std::collections::HashSet<Fact> =
        before.difference(&after).cloned().collect();
    let expected_inserts: std::collections::HashSet<Fact> =
        after.difference(&before).cloned().collect();
    assert_eq!(
        out.deletes
            .iter()
            .cloned()
            .collect::<std::collections::HashSet<_>>(),
        expected_deletes
    );
    assert_eq!(
        out.inserts
            .iter()
            .cloned()
            .collect::<std::collections::HashSet<_>>(),
        expected_inserts
    );
}

#[test]
fn comparisons_and_assignments_participate() {
    // double(y) :- n(x), y := x * 2, x >= 3.
    let program = Program::new(vec![Rule::new(
        atom("double", &["y"]),
        vec![
            atom("n", &["x"]).into(),
            BodyItem::assign(
                "y",
                crate::Expr::bin(
                    crate::BinOp::Mul,
                    crate::Expr::term(Term::var("x")),
                    crate::Expr::term(Term::cst(2)),
                ),
            ),
            BodyItem::cmp(crate::CmpOp::Ge, Term::var("x"), Term::cst(3)),
        ],
    )])
    .unwrap();
    let mut base = Database::new();
    base.insert(fact("n", &[3])).unwrap();
    base.insert(fact("n", &[2])).unwrap();
    let mut view = MaterializedView::new(program, base).unwrap();
    assert!(view.database().contains(&fact("double", &[6])));
    assert!(!view.database().contains(&fact("double", &[4])));

    let out = view.apply(&Delta::insertion(fact("n", &[5]))).unwrap();
    assert!(out.inserts.contains(&fact("double", &[10])));
    let out = view.apply(&Delta::deletion(fact("n", &[3]))).unwrap();
    assert!(out.deletes.contains(&fact("double", &[6])));
    assert_consistent(&view);
}

#[test]
fn deep_chain_incremental_cut_and_heal() {
    let n = 30i64;
    let edges: Vec<(i64, i64)> = (0..n).map(|i| (i, i + 1)).collect();
    let mut view = MaterializedView::new(tc_program(), edge_db(&edges)).unwrap();
    let full = (n * (n + 1) / 2) as usize;
    assert_eq!(view.database().relation("path").unwrap().len(), full);

    view.apply(&Delta::deletion(fact("edge", &[15, 16])))
        .unwrap();
    assert_consistent(&view);
    view.apply(&Delta::insertion(fact("edge", &[15, 16])))
        .unwrap();
    assert_consistent(&view);
    assert_eq!(view.database().relation("path").unwrap().len(), full);
}
