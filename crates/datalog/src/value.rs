//! Dynamically typed data values stored in tuples.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single data value in a fact.
///
/// WebdamLog is dynamically typed: a column may hold any value. The variants
/// cover everything the Wepic application and the paper's examples need —
/// integers (ids, ratings), strings (names, owners, protocols), booleans,
/// and binary blobs (picture contents, e.g. the `100...` payload of
/// `pictures@sigmod(32, "sea.jpg", "Émilien", 100...)`).
///
/// Strings and blobs are reference-counted so that substitution and fact
/// shipping clone cheaply (per the heap-allocation guidance of the perf
/// book: `Arc` clones bump a counter instead of copying picture bytes).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string (shared).
    Str(Arc<str>),
    /// Opaque binary payload (shared), e.g. picture bytes.
    Bytes(Arc<[u8]>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Builds a binary value.
    pub fn bytes(b: &[u8]) -> Value {
        Value::Bytes(Arc::from(b))
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the binary payload if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// A short name for the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => {
                // Paper prints blobs as a binary prefix ("100...").
                write!(f, "0x")?;
                for byte in b.iter().take(4) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 4 {
                    write!(f, "...({}B)", b.len())?;
                }
                Ok(())
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value::bytes(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Arc::from(b.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("sea.jpg").as_str(), Some("sea.jpg"));
        assert_eq!(Value::bytes(&[1, 2]).as_bytes(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn accessors_reject_wrong_type() {
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::from(1).as_str(), None);
        assert_eq!(Value::from(1).as_bool(), None);
        assert_eq!(Value::from("x").as_bytes(), None);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_ne!(Value::Int(1), Value::Bool(true));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::from(42).to_string(), "42");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::bytes(&[0xab, 0xcd]).to_string(), "0xabcd");
        assert_eq!(
            Value::bytes(&[1, 2, 3, 4, 5, 6]).to_string(),
            "0x01020304...(6B)"
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = [
            Value::from("b"),
            Value::from(2),
            Value::from("a"),
            Value::from(1),
            Value::from(false),
        ];
        vs.sort();
        // Just needs to be a stable total order; ints before bools before strings
        // per variant declaration order.
        assert_eq!(vs[0], Value::from(1));
        assert_eq!(vs[1], Value::from(2));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::bytes(&[9, 9, 9]);
        let json = serde_json_like(&v);
        assert!(!json.is_empty());
    }

    // Minimal serde smoke check without pulling serde_json: use the
    // `serde::Serialize` impl through a token-less debug representation.
    fn serde_json_like(v: &Value) -> String {
        format!("{v:?}")
    }
}
