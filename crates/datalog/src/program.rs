//! Programs: validated rule sets with stratified fixpoint evaluation.

use crate::eval::{
    naive_fixpoint, naive_fixpoint_compiled, seminaive_fixpoint, seminaive_fixpoint_sharded,
    stratify, EvalConfig, PlannedRule, RulePlan, Strata,
};
use crate::{Database, Result, Rule};

/// Which bottom-up strategy [`Program::eval`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Re-derive everything each round (baseline for the E6 ablation).
    Naive,
    /// Delta-driven evaluation (default; mirrors Bud).
    #[default]
    Seminaive,
}

/// Counters reported by an evaluation, used by the bench harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds executed (across strata).
    pub iterations: usize,
    /// Successful body matches (head instantiations attempted).
    pub derivations: usize,
    /// Facts that were actually new.
    pub facts_derived: usize,
}

/// A validated datalog program: safety-checked rules plus their strata and
/// compiled execution plans.
///
/// Every rule is compiled **once**, at construction: a fixpoint plan (the
/// register-file program the bottom-up strategies run), one differential
/// plan per body literal (the incremental engine's finite differencing),
/// and a rederivation plan (DRed's single-witness probe). See
/// `eval::plan` for the compilation scheme.
#[derive(Debug, Clone)]
pub struct Program {
    rules: Vec<Rule>,
    strata: Strata,
    iteration_limit: usize,
    eval_config: EvalConfig,
    plans: Vec<RulePlan>,
    /// Per rule, per literal slot (positive and negated literals counted
    /// left to right).
    diff_plans: Vec<Vec<RulePlan>>,
    rederive_plans: Vec<RulePlan>,
}

impl Program {
    /// Validates rules (left-to-right safety, stratifiability), compiles
    /// their execution plans and builds a program.
    pub fn new(rules: Vec<Rule>) -> Result<Program> {
        for rule in &rules {
            rule.check_safety()?;
        }
        let strata = stratify(&rules)?;
        let plans = rules
            .iter()
            .map(RulePlan::compile)
            .collect::<Result<Vec<_>>>()?;
        let mut diff_plans = Vec::with_capacity(rules.len());
        for rule in &rules {
            let mut per_slot = Vec::new();
            let mut slot = 0usize;
            while let Some(plan) = RulePlan::compile_diff(rule, slot)? {
                per_slot.push(plan);
                slot += 1;
            }
            diff_plans.push(per_slot);
        }
        let rederive_plans = rules
            .iter()
            .map(RulePlan::compile_rederive)
            .collect::<Result<Vec<_>>>()?;
        Ok(Program {
            rules,
            strata,
            iteration_limit: 1_000_000,
            eval_config: EvalConfig::default(),
            plans,
            diff_plans,
            rederive_plans,
        })
    }

    /// Overrides the fixpoint iteration safety valve (default 1,000,000).
    pub fn with_iteration_limit(mut self, limit: usize) -> Program {
        self.iteration_limit = limit;
        self
    }

    /// Sets the number of seminaive worker threads (default 1 = serial).
    /// Every worker count computes the same result; see
    /// [`crate::eval::EvalConfig`].
    pub fn with_workers(mut self, workers: usize) -> Program {
        self.eval_config.workers = workers.max(1);
        self
    }

    /// Replaces the whole evaluation config.
    pub fn with_eval_config(mut self, config: EvalConfig) -> Program {
        self.eval_config = config;
        self
    }

    /// Adjusts the worker count in place (used when re-tuning a program
    /// that is already owned by a materialized view).
    pub fn set_workers(&mut self, workers: usize) {
        self.eval_config.workers = workers.max(1);
    }

    /// The configured seminaive worker count.
    pub fn workers(&self) -> usize {
        self.eval_config.workers
    }

    /// The rules, in the order given to [`Program::new`].
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// The stratification (rule indices per stratum, predicate strata).
    pub(crate) fn strata(&self) -> &Strata {
        &self.strata
    }

    /// The fixpoint iteration safety valve.
    pub(crate) fn iteration_limit(&self) -> usize {
        self.iteration_limit
    }

    /// The evaluation config (workers, compiled/interpreted).
    pub(crate) fn eval_config(&self) -> EvalConfig {
        self.eval_config
    }

    /// The compiled fixpoint plan of rule `ri`.
    pub(crate) fn plan(&self, ri: usize) -> &RulePlan {
        &self.plans[ri]
    }

    /// The differential plan of rule `ri` pinned at literal `slot`.
    pub(crate) fn diff_plan(&self, ri: usize, slot: usize) -> &RulePlan {
        &self.diff_plans[ri][slot]
    }

    /// The rederivation (head-bound) plan of rule `ri`.
    pub(crate) fn rederive_plan(&self, ri: usize) -> &RulePlan {
        &self.rederive_plans[ri]
    }

    /// Evaluates with the default (seminaive) strategy. Returns a database
    /// containing the input facts plus everything derivable.
    pub fn eval(&self, db: &Database) -> Result<Database> {
        self.eval_with(db, EvalStrategy::Seminaive).map(|(d, _)| d)
    }

    /// Evaluates with an explicit strategy, returning the saturated database
    /// and evaluation statistics.
    pub fn eval_with(
        &self,
        db: &Database,
        strategy: EvalStrategy,
    ) -> Result<(Database, EvalStats)> {
        let mut work = db.clone();
        let mut stats = EvalStats::default();
        self.eval_in_place(&mut work, strategy, &mut stats)?;
        Ok((work, stats))
    }

    /// Evaluates directly into `db` (used by the WebdamLog stage loop, which
    /// owns its working database and wants no extra clone).
    pub fn eval_in_place(
        &self,
        db: &mut Database,
        strategy: EvalStrategy,
        stats: &mut EvalStats,
    ) -> Result<()> {
        self.eval_in_place_profiled(db, strategy, stats, None)
    }

    /// [`Program::eval_in_place`] with optional per-rule cost capture.
    /// On the compiled serial seminaive path every plan invocation is
    /// timed into `profile` (keyed by head predicate); the other
    /// strategies ignore the profile rather than guess — they are
    /// reference/ablation paths, not production ones.
    pub fn eval_in_place_profiled(
        &self,
        db: &mut Database,
        strategy: EvalStrategy,
        stats: &mut EvalStats,
        mut profile: Option<&mut crate::profile::RuleProfile>,
    ) -> Result<()> {
        for (stratum_idx, rule_ids) in self.strata.rule_strata.iter().enumerate() {
            if rule_ids.is_empty() {
                continue;
            }
            let planned: Vec<PlannedRule<'_>> = rule_ids
                .iter()
                .map(|&i| PlannedRule {
                    rule: &self.rules[i],
                    plan: &self.plans[i],
                })
                .collect();
            let compiled = self.eval_config.compiled;
            match strategy {
                EvalStrategy::Naive => {
                    if compiled {
                        naive_fixpoint_compiled(db, &planned, stats, self.iteration_limit)?;
                    } else {
                        let rules: Vec<&Rule> = planned.iter().map(|pr| pr.rule).collect();
                        naive_fixpoint(db, &rules, stats, self.iteration_limit)?;
                    }
                }
                EvalStrategy::Seminaive => {
                    let idb = self.strata.preds_of(stratum_idx);
                    if self.eval_config.workers > 1 {
                        seminaive_fixpoint_sharded(
                            db,
                            &planned,
                            &idb,
                            stats,
                            self.iteration_limit,
                            self.eval_config.workers,
                            compiled,
                        )?;
                    } else if compiled {
                        crate::eval::seminaive_fixpoint_compiled_profiled(
                            db,
                            &planned,
                            &idb,
                            stats,
                            self.iteration_limit,
                            profile.as_deref_mut(),
                        )?;
                    } else {
                        let rules: Vec<&Rule> = planned.iter().map(|pr| pr.rule).collect();
                        seminaive_fixpoint(db, &rules, &idb, stats, self.iteration_limit)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, BodyItem, CmpOp, Fact, Symbol, Term, Value};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    fn tc_program() -> Program {
        Program::new(vec![
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ])
        .unwrap()
    }

    fn chain(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert(Fact::new("edge", vec![Value::from(i), Value::from(i + 1)]))
                .unwrap();
        }
        db
    }

    #[test]
    fn both_strategies_agree() {
        let p = tc_program();
        let db = chain(15);
        let (semi, _) = p.eval_with(&db, EvalStrategy::Seminaive).unwrap();
        let (naive, _) = p.eval_with(&db, EvalStrategy::Naive).unwrap();
        assert_eq!(
            semi.relation("path").unwrap(),
            naive.relation("path").unwrap()
        );
        assert_eq!(semi.relation("path").unwrap().len(), 15 * 16 / 2);
    }

    #[test]
    fn unsafe_rule_rejected_at_construction() {
        let r = Rule::new(atom("p", &["x", "y"]), vec![atom("q", &["x"]).into()]);
        assert!(Program::new(vec![r]).is_err());
    }

    #[test]
    fn unstratifiable_rejected_at_construction() {
        let r1 = Rule::new(
            atom("p", &["x"]),
            vec![
                atom("base", &["x"]).into(),
                BodyItem::not_atom(atom("q", &["x"])),
            ],
        );
        let r2 = Rule::new(
            atom("q", &["x"]),
            vec![
                atom("base", &["x"]).into(),
                BodyItem::not_atom(atom("p", &["x"])),
            ],
        );
        assert!(Program::new(vec![r1, r2]).is_err());
    }

    #[test]
    fn stratified_negation_end_to_end() {
        // winning positions in a simple game graph: win(x) :- move(x,y), not win(y)
        // is unstratifiable; use reach/unreach instead.
        let p = Program::new(vec![
            Rule::new(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
            Rule::new(
                atom("reach", &["y"]),
                vec![
                    atom("reach", &["x"]).into(),
                    atom("edge", &["x", "y"]).into(),
                ],
            ),
            Rule::new(
                atom("unreach", &["x"]),
                vec![
                    atom("node", &["x"]).into(),
                    BodyItem::not_atom(atom("reach", &["x"])),
                ],
            ),
        ])
        .unwrap();
        assert_eq!(p.stratum_count(), 2);

        let mut db = Database::new();
        for n in 1..=5 {
            db.insert(Fact::new("node", vec![Value::from(n)])).unwrap();
        }
        db.insert(Fact::new("src", vec![Value::from(1)])).unwrap();
        db.insert(Fact::new("edge", vec![Value::from(1), Value::from(2)]))
            .unwrap();
        db.insert(Fact::new("edge", vec![Value::from(2), Value::from(3)]))
            .unwrap();

        let out = p.eval(&db).unwrap();
        assert_eq!(out.relation("reach").unwrap().len(), 3); // 1,2,3
        assert_eq!(out.relation("unreach").unwrap().len(), 2); // 4,5
    }

    #[test]
    fn comparisons_filter_derivations() {
        let p = Program::new(vec![Rule::new(
            atom("high", &["id"]),
            vec![
                atom("rate", &["id", "r"]).into(),
                BodyItem::cmp(CmpOp::Ge, Term::var("r"), Term::cst(4)),
            ],
        )])
        .unwrap();
        let mut db = Database::new();
        for (id, r) in [(1, 5), (2, 3), (3, 4)] {
            db.insert(Fact::new("rate", vec![Value::from(id), Value::from(r)]))
                .unwrap();
        }
        let out = p.eval(&db).unwrap();
        assert_eq!(out.relation("high").unwrap().len(), 2);
    }

    #[test]
    fn stats_reported() {
        let p = tc_program();
        let (_, stats) = p.eval_with(&chain(5), EvalStrategy::Seminaive).unwrap();
        assert!(stats.iterations > 0);
        assert_eq!(stats.facts_derived, 15);
        assert!(stats.derivations >= stats.facts_derived);
    }

    #[test]
    fn eval_does_not_mutate_input() {
        let p = tc_program();
        let db = chain(3);
        let _ = p.eval(&db).unwrap();
        assert!(db.relation("path").is_none());
        assert_eq!(db.fact_count(), 3);
    }

    #[test]
    fn empty_program_is_identity() {
        let p = Program::new(vec![]).unwrap();
        let db = chain(3);
        let out = p.eval(&db).unwrap();
        assert_eq!(out.fact_count(), 3);
    }

    #[test]
    fn iteration_limit_is_respected() {
        let p = Program::new(vec![Rule::new(
            Atom::new("n", vec![Term::var("y")]),
            vec![
                atom("n", &["x"]).into(),
                BodyItem::assign(
                    "y",
                    crate::Expr::bin(
                        crate::BinOp::Add,
                        crate::Expr::term(Term::var("x")),
                        crate::Expr::term(Term::cst(1)),
                    ),
                ),
            ],
        )])
        .unwrap()
        .with_iteration_limit(10);
        let mut db = Database::new();
        db.insert(Fact::new("n", vec![Value::from(0)])).unwrap();
        assert!(matches!(
            p.eval(&db),
            Err(crate::DatalogError::IterationLimit(10))
        ));
        let _ = Symbol::intern("n");
    }

    /// Regression (PR 4 review): nested probes of the *same* relation with
    /// different binding masks, where the inner probe's mask has no index
    /// built yet. The lazy index build for the inner mask must not
    /// interfere with the outer probe's in-flight iteration (the storage
    /// layer builds secondary indexes under a lock while an outer
    /// `for_each_match_ids` walk over another mask of the same relation is
    /// active).
    #[test]
    fn nested_same_relation_probe_with_fresh_index_mask() {
        let mut db = Database::new();
        db.insert(Fact::new("a", vec![Value::from(1), Value::from(2)]))
            .unwrap();
        for (x, y, w) in [(1, 2, 3), (4, 2, 3), (5, 2, 3)] {
            db.insert(Fact::new(
                "e",
                vec![Value::from(x), Value::from(y), Value::from(w)],
            ))
            .unwrap();
        }
        // q(z) :- a(x, y), e(x, y, w), e(z, y, w)
        // outer e probe: mask 0b011; inner e probe: mask 0b110 (fresh index).
        let rules = vec![Rule::new(
            atom("q", &["z"]),
            vec![
                atom("a", &["x", "y"]).into(),
                atom("e", &["x", "y", "w"]).into(),
                atom("e", &["z", "y", "w"]).into(),
            ],
        )];
        let program = Program::new(rules).unwrap();
        let out = program.eval(&db).unwrap();
        assert_eq!(out.relation("q").unwrap().len(), 3);
    }
}
