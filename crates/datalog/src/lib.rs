//! # wdl-datalog — the datalog kernel underneath WebdamLog
//!
//! This crate is the substrate that plays the role the [Bud] runtime plays in
//! the original WebdamLog system (Abiteboul et al., *Rule-Based Application
//! Development using Webdamlog*, SIGMOD 2013): a self-contained datalog
//! engine providing
//!
//! * interned symbols ([`Symbol`]) and dynamically typed values ([`Value`]),
//! * indexed in-memory relation storage ([`Relation`], [`Database`]),
//! * rules with positive/negative literals and builtin predicates
//!   ([`Rule`], [`BodyItem`]),
//! * left-to-right body matching shared with the WebdamLog engine
//!   ([`eval::evaluate_body`]),
//! * naive **and** seminaive bottom-up fixpoint evaluation with stratified
//!   negation ([`Program::eval`]).
//!
//! The naive evaluator is retained deliberately: it is the baseline of the
//! E6 ablation experiment (see `EXPERIMENTS.md` at the workspace root).
//!
//! [Bud]: http://www.bloom-lang.net/
//!
//! ## Quick example
//!
//! ```
//! use wdl_datalog::{Database, Program, Rule, Atom, Term, Value, Symbol};
//!
//! // edge(1,2), edge(2,3);  path(X,Y) :- edge(X,Y);
//! // path(X,Z) :- edge(X,Y), path(Y,Z)
//! let edge = Symbol::intern("edge");
//! let path = Symbol::intern("path");
//! let (x, y, z) = (Symbol::intern("X"), Symbol::intern("Y"), Symbol::intern("Z"));
//!
//! let mut db = Database::new();
//! db.insert_values(edge, vec![Value::from(1), Value::from(2)]).unwrap();
//! db.insert_values(edge, vec![Value::from(2), Value::from(3)]).unwrap();
//!
//! let rules = vec![
//!     Rule::new(
//!         Atom::new(path, vec![Term::var(x), Term::var(y)]),
//!         vec![Atom::new(edge, vec![Term::var(x), Term::var(y)]).into()],
//!     ),
//!     Rule::new(
//!         Atom::new(path, vec![Term::var(x), Term::var(z)]),
//!         vec![
//!             Atom::new(edge, vec![Term::var(x), Term::var(y)]).into(),
//!             Atom::new(path, vec![Term::var(y), Term::var(z)]).into(),
//!         ],
//!     ),
//! ];
//! let program = Program::new(rules).unwrap();
//! let out = program.eval(&db).unwrap();
//! assert_eq!(out.relation(path).unwrap().len(), 3); // (1,2),(2,3),(1,3)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
mod atom;
mod database;
mod error;
pub mod eval;
mod expr;
mod fact;
pub mod incremental;
pub mod intern;
pub mod optimize;
pub mod profile;
mod program;
pub mod provenance;
mod rule;
mod storage;
mod subst;
mod symbol;
mod term;
mod value;

pub use atom::{Atom, BodyItem, Literal};
pub use database::Database;
pub use error::{DatalogError, Result};
pub use eval::{negative_cycle, EvalConfig, NegativeCycle};
pub use expr::{BinOp, CmpOp, Expr};
pub use fact::{Fact, Tuple};
pub use incremental::{Delta, MaterializedView};
pub use intern::ValueId;
pub use program::{EvalStats, EvalStrategy, Program};
pub use rule::Rule;
pub use storage::{ColMask, ColumnExport, Relation, MAX_ARITY};
pub use subst::Subst;
pub use symbol::Symbol;
pub use term::Term;
pub use value::Value;
