//! Atoms, literals and rule-body items.

use crate::{CmpOp, Expr, Fact, Subst, Symbol, Term};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An atom `pred(t1, ..., tn)` whose arguments are terms.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Relation name.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(pred: impl Into<Symbol>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Applies a substitution to all arguments.
    pub fn apply(&self, subst: &Subst) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|t| t.apply(subst)).collect(),
        }
    }

    /// True iff no argument is a variable.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Converts a ground atom into a fact; `None` if any variable remains.
    pub fn to_fact(&self) -> Option<Fact> {
        let mut values = Vec::with_capacity(self.args.len());
        for t in &self.args {
            values.push(t.as_const()?.clone());
        }
        Some(Fact {
            pred: self.pred,
            tuple: values.into(),
        })
    }

    /// Grounds the atom under `subst` into a fact; `None` if underbound.
    pub fn ground(&self, subst: &Subst) -> Option<Fact> {
        let mut values = Vec::with_capacity(self.args.len());
        for t in &self.args {
            values.push(t.resolve(subst)?);
        }
        Some(Fact {
            pred: self.pred,
            tuple: values.into(),
        })
    }

    /// Collects variables into `out` (with duplicates, in order).
    pub fn variables(&self, out: &mut Vec<Symbol>) {
        for t in &self.args {
            if let Term::Var(v) = t {
                out.push(*v);
            }
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A possibly negated atom in a rule body.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// True for `not pred(...)`.
    pub negated: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            atom,
            negated: false,
        }
    }

    /// A negative literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            atom,
            negated: true,
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "not ")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// One item in a rule body, evaluated left to right.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BodyItem {
    /// A (possibly negated) relational atom.
    Literal(Literal),
    /// A comparison between two terms, e.g. `$r >= 4`.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand (must be bound when reached).
        lhs: Term,
        /// Right operand (must be bound when reached).
        rhs: Term,
    },
    /// Binds a fresh variable to the value of an expression: `$x := e`.
    Assign {
        /// The variable being bound.
        var: Symbol,
        /// The expression producing its value.
        expr: Expr,
    },
}

impl BodyItem {
    /// Convenience constructor for a positive atom.
    pub fn atom(atom: Atom) -> BodyItem {
        BodyItem::Literal(Literal::pos(atom))
    }

    /// Convenience constructor for a negated atom.
    pub fn not_atom(atom: Atom) -> BodyItem {
        BodyItem::Literal(Literal::neg(atom))
    }

    /// Convenience constructor for a comparison.
    pub fn cmp(op: CmpOp, lhs: Term, rhs: Term) -> BodyItem {
        BodyItem::Cmp { op, lhs, rhs }
    }

    /// Convenience constructor for an assignment.
    pub fn assign(var: impl Into<Symbol>, expr: Expr) -> BodyItem {
        BodyItem::Assign {
            var: var.into(),
            expr,
        }
    }

    /// The positive literal's atom, if this is one.
    pub fn as_positive_atom(&self) -> Option<&Atom> {
        match self {
            BodyItem::Literal(l) if !l.negated => Some(&l.atom),
            _ => None,
        }
    }

    /// Variables *read* by this item (must be bound earlier for builtins /
    /// negation; may be freshly bound by positive atoms).
    pub fn variables(&self, out: &mut Vec<Symbol>) {
        match self {
            BodyItem::Literal(l) => l.atom.variables(out),
            BodyItem::Cmp { lhs, rhs, .. } => {
                if let Term::Var(v) = lhs {
                    out.push(*v);
                }
                if let Term::Var(v) = rhs {
                    out.push(*v);
                }
            }
            BodyItem::Assign { expr, .. } => expr.variables(out),
        }
    }

    /// Applies a substitution (binds whatever is bound; leaves the rest).
    pub fn apply(&self, subst: &Subst) -> BodyItem {
        match self {
            BodyItem::Literal(l) => BodyItem::Literal(Literal {
                atom: l.atom.apply(subst),
                negated: l.negated,
            }),
            BodyItem::Cmp { op, lhs, rhs } => BodyItem::Cmp {
                op: *op,
                lhs: lhs.apply(subst),
                rhs: rhs.apply(subst),
            },
            BodyItem::Assign { var, expr } => BodyItem::Assign {
                var: *var,
                expr: apply_expr(expr, subst),
            },
        }
    }
}

fn apply_expr(expr: &Expr, subst: &Subst) -> Expr {
    match expr {
        Expr::Term(t) => Expr::Term(t.apply(subst)),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(apply_expr(l, subst)),
            Box::new(apply_expr(r, subst)),
        ),
    }
}

impl From<Atom> for BodyItem {
    fn from(atom: Atom) -> Self {
        BodyItem::atom(atom)
    }
}

impl From<Literal> for BodyItem {
    fn from(l: Literal) -> Self {
        BodyItem::Literal(l)
    }
}

impl fmt::Debug for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Literal(l) => write!(f, "{l}"),
            BodyItem::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            BodyItem::Assign { var, expr } => write!(f, "${var} := {expr}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn apply_and_ground() {
        let a = Atom::new("r", vec![Term::var("x"), Term::cst(1)]);
        assert!(!a.is_ground());
        let s: Subst = [(sym("x"), Value::from(9))].into_iter().collect();
        let g = a.apply(&s);
        assert!(g.is_ground());
        let f = g.to_fact().unwrap();
        assert_eq!(f.tuple[0], Value::from(9));
        assert_eq!(a.ground(&s).unwrap(), f);
    }

    #[test]
    fn ground_fails_when_underbound() {
        let a = Atom::new("r", vec![Term::var("unbound-here")]);
        assert_eq!(a.ground(&Subst::new()), None);
        assert_eq!(a.to_fact(), None);
    }

    #[test]
    fn display_forms() {
        let a = Atom::new("pictures", vec![Term::var("id"), Term::cst("sea.jpg")]);
        assert_eq!(a.to_string(), "pictures($id, \"sea.jpg\")");
        assert_eq!(
            Literal::neg(a.clone()).to_string(),
            "not pictures($id, \"sea.jpg\")"
        );
        let c = BodyItem::cmp(CmpOp::Ge, Term::var("r"), Term::cst(4));
        assert_eq!(c.to_string(), "$r >= 4");
    }

    #[test]
    fn body_item_variable_collection() {
        let mut vs = Vec::new();
        BodyItem::cmp(CmpOp::Lt, Term::var("a"), Term::var("b")).variables(&mut vs);
        assert_eq!(vs.len(), 2);
        vs.clear();
        BodyItem::assign("x", Expr::term(Term::var("y"))).variables(&mut vs);
        assert_eq!(vs, vec![sym("y")]);
    }

    #[test]
    fn apply_partially_instantiates() {
        let item = BodyItem::cmp(CmpOp::Eq, Term::var("p"), Term::var("q"));
        let s: Subst = [(sym("p"), Value::from(1))].into_iter().collect();
        match item.apply(&s) {
            BodyItem::Cmp { lhs, rhs, .. } => {
                assert_eq!(lhs, Term::cst(1));
                assert_eq!(rhs, Term::var("q"));
            }
            _ => panic!("wrong variant"),
        }
    }
}
