//! Error types for the datalog kernel.

use std::fmt;

/// Convenience alias used across the kernel.
pub type Result<T> = std::result::Result<T, DatalogError>;

/// Errors raised by storage, safety checking or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A fact or atom used a relation with a different arity than registered.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity registered on first use.
        expected: usize,
        /// Arity of the offending fact/atom.
        found: usize,
    },
    /// A rule is unsafe (head/negation/builtin variable not bound by a
    /// preceding positive atom).
    UnsafeRule(String),
    /// A program cannot be stratified (negation through recursion).
    NotStratifiable(String),
    /// A builtin was applied to values of the wrong runtime type.
    TypeError(String),
    /// Arithmetic failure (overflow, division by zero).
    Arithmetic(String),
    /// A variable needed by a builtin or head was unbound at evaluation time.
    UnboundVariable(String),
    /// Fixpoint exceeded the configured iteration bound (safety valve).
    IterationLimit(usize),
    /// A relation was declared with more columns than indexes support.
    UnsupportedArity {
        /// The requested arity.
        arity: usize,
        /// The maximum supported arity ([`crate::MAX_ARITY`]).
        max: usize,
    },
    /// A relation reached its maximum tuple capacity.
    CapacityExceeded {
        /// The capacity that was hit.
        capacity: u64,
    },
    /// A parallel evaluation worker terminated abnormally mid-round; the
    /// fixpoint was abandoned (the worker's panic is re-raised once its
    /// thread is joined).
    WorkerFailed,
    /// A [`crate::ColumnExport`] was internally inconsistent (cell index out
    /// of range, cell count not `rows * arity`) — persisted data that fails
    /// here is corrupt, not merely stale.
    CorruptExport(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on relation `{relation}`: expected {expected}, found {found}"
            ),
            DatalogError::UnsafeRule(msg) => write!(f, "unsafe rule: {msg}"),
            DatalogError::NotStratifiable(msg) => write!(f, "program not stratifiable: {msg}"),
            DatalogError::TypeError(msg) => write!(f, "type error: {msg}"),
            DatalogError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            DatalogError::UnboundVariable(msg) => write!(f, "unbound variable: {msg}"),
            DatalogError::IterationLimit(n) => {
                write!(f, "fixpoint did not converge within {n} iterations")
            }
            DatalogError::UnsupportedArity { arity, max } => {
                write!(
                    f,
                    "relation arity {arity} exceeds the supported maximum of {max} columns"
                )
            }
            DatalogError::CapacityExceeded { capacity } => {
                write!(
                    f,
                    "relation reached its maximum capacity of {capacity} tuples"
                )
            }
            DatalogError::WorkerFailed => {
                write!(f, "a parallel evaluation worker terminated abnormally")
            }
            DatalogError::CorruptExport(msg) => {
                write!(f, "corrupt column export: {msg}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_messages() {
        let e = DatalogError::ArityMismatch {
            relation: "pictures".into(),
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("pictures"));
        assert!(e.to_string().contains('4'));
        let e = DatalogError::IterationLimit(10);
        assert!(e.to_string().contains("10"));
        let e = DatalogError::UnsupportedArity { arity: 70, max: 64 };
        assert!(e.to_string().contains("70"));
        assert!(e.to_string().contains("64"));
        let e = DatalogError::CapacityExceeded { capacity: 1 << 32 };
        assert!(e.to_string().contains("4294967296"));
    }
}
