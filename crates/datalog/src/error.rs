//! Error types for the datalog kernel.

use std::fmt;

/// Convenience alias used across the kernel.
pub type Result<T> = std::result::Result<T, DatalogError>;

/// Errors raised by storage, safety checking or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A fact or atom used a relation with a different arity than registered.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity registered on first use.
        expected: usize,
        /// Arity of the offending fact/atom.
        found: usize,
    },
    /// A rule is unsafe (head/negation/builtin variable not bound by a
    /// preceding positive atom).
    UnsafeRule(String),
    /// A program cannot be stratified (negation through recursion).
    NotStratifiable(String),
    /// A builtin was applied to values of the wrong runtime type.
    TypeError(String),
    /// Arithmetic failure (overflow, division by zero).
    Arithmetic(String),
    /// A variable needed by a builtin or head was unbound at evaluation time.
    UnboundVariable(String),
    /// Fixpoint exceeded the configured iteration bound (safety valve).
    IterationLimit(usize),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on relation `{relation}`: expected {expected}, found {found}"
            ),
            DatalogError::UnsafeRule(msg) => write!(f, "unsafe rule: {msg}"),
            DatalogError::NotStratifiable(msg) => write!(f, "program not stratifiable: {msg}"),
            DatalogError::TypeError(msg) => write!(f, "type error: {msg}"),
            DatalogError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            DatalogError::UnboundVariable(msg) => write!(f, "unbound variable: {msg}"),
            DatalogError::IterationLimit(n) => {
                write!(f, "fixpoint did not converge within {n} iterations")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_messages() {
        let e = DatalogError::ArityMismatch {
            relation: "pictures".into(),
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("pictures"));
        assert!(e.to_string().contains('4'));
        let e = DatalogError::IterationLimit(10);
        assert!(e.to_string().contains("10"));
    }
}
