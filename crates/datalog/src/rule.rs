//! Rules and the left-to-right safety check.

use crate::{Atom, BodyItem, DatalogError, Result, Symbol, Term};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A datalog rule `head :- body`.
///
/// Bodies are evaluated **left to right** — in WebdamLog, unlike classical
/// datalog, the order of body atoms matters (paper §2), because the split
/// between the local prefix and the delegated suffix depends on it. The
/// kernel preserves that contract: safety is checked against left-to-right
/// binding propagation, and the matcher consumes items in order.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// Body items in evaluation order.
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// Builds a rule. Use [`Rule::check_safety`] (or [`crate::Program::new`])
    /// before evaluating it.
    pub fn new(head: Atom, body: Vec<BodyItem>) -> Rule {
        Rule { head, body }
    }

    /// Checks range restriction under left-to-right evaluation:
    ///
    /// * a negated literal or comparison may only read variables bound by an
    ///   earlier positive literal or assignment;
    /// * an assignment binds a fresh variable from bound ones;
    /// * every head variable must be bound by the body.
    pub fn check_safety(&self) -> Result<()> {
        let mut bound: Vec<Symbol> = Vec::new();
        for (i, item) in self.body.iter().enumerate() {
            match item {
                BodyItem::Literal(l) if !l.negated => {
                    for t in &l.atom.args {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                bound.push(*v);
                            }
                        }
                    }
                }
                BodyItem::Literal(l) => {
                    let mut vars = Vec::new();
                    l.atom.variables(&mut vars);
                    if let Some(v) = vars.iter().find(|v| !bound.contains(v)) {
                        return Err(DatalogError::UnsafeRule(format!(
                            "variable ${v} in negated atom {} (position {i}) is not bound by an earlier positive atom",
                            l.atom
                        )));
                    }
                }
                BodyItem::Cmp { lhs, rhs, .. } => {
                    for t in [lhs, rhs] {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                return Err(DatalogError::UnsafeRule(format!(
                                    "variable ${v} in comparison (position {i}) is not bound by an earlier positive atom"
                                )));
                            }
                        }
                    }
                }
                BodyItem::Assign { var, expr } => {
                    let mut vars = Vec::new();
                    expr.variables(&mut vars);
                    if let Some(v) = vars.iter().find(|v| !bound.contains(v)) {
                        return Err(DatalogError::UnsafeRule(format!(
                            "variable ${v} read by assignment (position {i}) is not bound"
                        )));
                    }
                    if bound.contains(var) {
                        return Err(DatalogError::UnsafeRule(format!(
                            "assignment rebinds already-bound variable ${var} (position {i})"
                        )));
                    }
                    bound.push(*var);
                }
            }
        }
        let mut head_vars = Vec::new();
        self.head.variables(&mut head_vars);
        if let Some(v) = head_vars.iter().find(|v| !bound.contains(v)) {
            return Err(DatalogError::UnsafeRule(format!(
                "head variable ${v} of {} is not bound by the body",
                self.head
            )));
        }
        Ok(())
    }

    /// Predicates of positive body literals, in order (with duplicates).
    pub fn positive_preds(&self) -> Vec<Symbol> {
        self.body
            .iter()
            .filter_map(BodyItem::as_positive_atom)
            .map(|a| a.pred)
            .collect()
    }

    /// Predicates of negated body literals.
    pub fn negative_preds(&self) -> Vec<Symbol> {
        self.body
            .iter()
            .filter_map(|item| match item {
                BodyItem::Literal(l) if l.negated => Some(l.atom.pred),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, item) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Expr, Literal};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn safe_positive_rule() {
        let r = Rule::new(atom("p", &["x"]), vec![atom("q", &["x"]).into()]);
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn unbound_head_variable_is_unsafe() {
        let r = Rule::new(atom("p", &["x", "y"]), vec![atom("q", &["x"]).into()]);
        let err = r.check_safety().unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeRule(_)));
        assert!(err.to_string().contains("$y"));
    }

    #[test]
    fn negation_needs_prior_binding() {
        // p(x) :- not q(x)  — unsafe
        let r = Rule::new(
            atom("p", &["x"]),
            vec![BodyItem::Literal(Literal::neg(atom("q", &["x"])))],
        );
        assert!(r.check_safety().is_err());
        // p(x) :- r(x), not q(x) — safe
        let r = Rule::new(
            atom("p", &["x"]),
            vec![
                atom("r", &["x"]).into(),
                BodyItem::Literal(Literal::neg(atom("q", &["x"]))),
            ],
        );
        assert!(r.check_safety().is_ok());
        // order matters: p(x) :- not q(x), r(x) — unsafe in left-to-right
        let r = Rule::new(
            atom("p", &["x"]),
            vec![
                BodyItem::Literal(Literal::neg(atom("q", &["x"]))),
                atom("r", &["x"]).into(),
            ],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn comparison_needs_prior_binding() {
        let r = Rule::new(
            atom("p", &["x"]),
            vec![
                atom("q", &["x"]).into(),
                BodyItem::cmp(CmpOp::Gt, Term::var("x"), Term::cst(3)),
            ],
        );
        assert!(r.check_safety().is_ok());
        let r = Rule::new(
            atom("p", &["x"]),
            vec![
                BodyItem::cmp(CmpOp::Gt, Term::var("x"), Term::cst(3)),
                atom("q", &["x"]).into(),
            ],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn assignment_binds_and_cannot_rebind() {
        let r = Rule::new(
            atom("p", &["y"]),
            vec![
                atom("q", &["x"]).into(),
                BodyItem::assign(
                    "y",
                    Expr::bin(
                        crate::BinOp::Add,
                        Expr::term(Term::var("x")),
                        Expr::term(Term::cst(1)),
                    ),
                ),
            ],
        );
        assert!(r.check_safety().is_ok());
        let r = Rule::new(
            atom("p", &["x"]),
            vec![
                atom("q", &["x"]).into(),
                BodyItem::assign("x", Expr::term(Term::cst(1))),
            ],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn ground_head_rule_is_safe() {
        let r = Rule::new(
            Atom::new("p", vec![Term::cst(1)]),
            vec![atom("q", &["x"]).into()],
        );
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn pred_collections() {
        let r = Rule::new(
            atom("p", &["x"]),
            vec![
                atom("q", &["x"]).into(),
                BodyItem::Literal(Literal::neg(atom("s", &["x"]))),
                atom("q", &["x"]).into(),
            ],
        );
        assert_eq!(r.positive_preds().len(), 2);
        assert_eq!(r.negative_preds(), vec![Symbol::intern("s")]);
    }

    #[test]
    fn display_round_trips_shape() {
        let r = Rule::new(
            atom("p", &["x"]),
            vec![
                atom("q", &["x"]).into(),
                BodyItem::cmp(CmpOp::Ge, Term::var("x"), Term::cst(5)),
            ],
        );
        assert_eq!(r.to_string(), "p($x) :- q($x), $x >= 5");
    }
}
