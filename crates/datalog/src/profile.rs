//! Per-rule cost capture for the fixpoint and differential executors.
//!
//! The executors know nothing about sinks or aggregation: when a caller
//! wants rule-level timings it passes a [`RuleProfile`] down (as
//! `Option<&mut RuleProfile>`, so the default `None` path stays exactly
//! the code that ran before), and the executor records one
//! [`RuleCost`] sample per rule invocation. The WebdamLog stage loop
//! converts the accumulated costs into `RuleEval` trace events; plain
//! datalog users can read them directly.

use std::collections::HashMap;

use crate::Symbol;

/// Accumulated cost of one rule (keyed by head predicate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleCost {
    /// Number of recorded invocations.
    pub calls: u64,
    /// Total wall-clock nanoseconds across them.
    pub ns: u64,
    /// Total input-delta tuples the invocations saw (0 on full rounds).
    pub delta_in: u64,
    /// Total head tuples produced (pre-dedup).
    pub derived: u64,
}

/// A profile of rule evaluation costs, keyed by the rule's head
/// predicate.
///
/// Keying by head predicate (rather than rule index) is deliberate: it
/// aggregates a recursive predicate's rules — and, at the WebdamLog
/// layer, the many structurally identical delegated copies of one rule
/// — into the single entry a profiler wants to rank. DRed strata are
/// recorded as one entry per maintenance pass under the stratum's
/// first head predicate (the phases of rederivation are not separable
/// per rule), which is exact for the common single-predicate recursive
/// stratum and documented approximation otherwise.
#[derive(Clone, Debug, Default)]
pub struct RuleProfile {
    costs: HashMap<Symbol, RuleCost>,
}

impl RuleProfile {
    /// An empty profile.
    pub fn new() -> RuleProfile {
        RuleProfile::default()
    }

    /// Adds one invocation sample for `head`.
    pub fn record(&mut self, head: Symbol, ns: u64, delta_in: u64, derived: u64) {
        let c = self.costs.entry(head).or_default();
        c.calls += 1;
        c.ns += ns;
        c.delta_in += delta_in;
        c.derived += derived;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Number of distinct head predicates recorded.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// The accumulated costs.
    pub fn costs(&self) -> impl Iterator<Item = (Symbol, &RuleCost)> {
        self.costs.iter().map(|(s, c)| (*s, c))
    }

    /// Takes the accumulated costs, leaving the profile empty.
    pub fn drain(&mut self) -> impl Iterator<Item = (Symbol, RuleCost)> {
        std::mem::take(&mut self.costs).into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_head() {
        let mut p = RuleProfile::new();
        let h = Symbol::intern("profiled_head");
        p.record(h, 100, 2, 1);
        p.record(h, 50, 3, 0);
        assert_eq!(p.len(), 1);
        let (_, c) = p.costs().next().unwrap();
        assert_eq!(c.calls, 2);
        assert_eq!(c.ns, 150);
        assert_eq!(c.delta_in, 5);
        assert_eq!(c.derived, 1);
        let drained: Vec<_> = p.drain().collect();
        assert_eq!(drained.len(), 1);
        assert!(p.is_empty());
    }
}
