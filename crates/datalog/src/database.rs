//! A database: a map from relation name to stored relation.

use crate::intern::ValueId;
use crate::{DatalogError, Fact, Relation, Result, Symbol, Tuple, Value};
use std::collections::HashMap;

/// A collection of named relations.
///
/// Relation arity is fixed on first use (declaration or first fact); later
/// uses with a different arity are errors — WebdamLog is dynamically typed in
/// values but not in shape.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: HashMap<Symbol, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Declares a relation with the given arity (idempotent; errors if the
    /// relation exists with a different arity).
    pub fn declare(&mut self, pred: impl Into<Symbol>, arity: usize) -> Result<()> {
        let pred = pred.into();
        match self.relations.get(&pred) {
            Some(rel) if rel.arity() != arity => Err(DatalogError::ArityMismatch {
                relation: pred.to_string(),
                expected: rel.arity(),
                found: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.relations.insert(pred, Relation::try_new(arity)?);
                Ok(())
            }
        }
    }

    /// Inserts a fact, creating the relation on first use. Returns `true` if new.
    pub fn insert(&mut self, fact: Fact) -> Result<bool> {
        self.insert_tuple(fact.pred, fact.tuple)
    }

    /// Inserts a tuple into `pred`.
    pub fn insert_tuple(&mut self, pred: Symbol, tuple: Tuple) -> Result<bool> {
        let rel = match self.relations.entry(pred) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Relation::try_new(tuple.len())?)
            }
        };
        if rel.arity() != tuple.len() {
            return Err(DatalogError::ArityMismatch {
                relation: pred.to_string(),
                expected: rel.arity(),
                found: tuple.len(),
            });
        }
        rel.insert(tuple)
    }

    /// Convenience: insert from a `Vec<Value>`.
    pub fn insert_values(&mut self, pred: impl Into<Symbol>, values: Vec<Value>) -> Result<bool> {
        self.insert_tuple(pred.into(), values.into())
    }

    /// Shard-building fast path for the parallel evaluator: appends a row
    /// known to be distinct (see [`Relation::push_distinct_ids`]),
    /// creating the relation with `arity` on first use.
    pub(crate) fn push_distinct_ids(&mut self, pred: Symbol, arity: usize, ids: &[ValueId]) {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(arity))
            .push_distinct_ids(ids);
    }

    /// Id-native insert: inserts an interned row into `pred`, creating the
    /// relation with `arity` on first use. Same semantics as
    /// [`Database::insert_tuple`].
    pub(crate) fn insert_ids(
        &mut self,
        pred: Symbol,
        arity: usize,
        ids: &[ValueId],
    ) -> Result<bool> {
        let rel = match self.relations.entry(pred) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(Relation::try_new(arity)?),
        };
        if rel.arity() != ids.len() {
            return Err(DatalogError::ArityMismatch {
                relation: pred.to_string(),
                expected: rel.arity(),
                found: ids.len(),
            });
        }
        rel.insert_ids(ids)
    }

    /// Id-native membership test.
    pub(crate) fn contains_ids(&self, pred: Symbol, ids: &[ValueId]) -> bool {
        self.relations
            .get(&pred)
            .is_some_and(|rel| rel.contains_ids(ids))
    }

    /// Id-native removal.
    pub(crate) fn remove_ids(&mut self, pred: Symbol, ids: &[ValueId]) -> bool {
        self.relations
            .get_mut(&pred)
            .is_some_and(|rel| rel.remove_ids(ids))
    }

    /// Removes a fact. Returns `true` if it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        self.relations
            .get_mut(&fact.pred)
            .is_some_and(|rel| rel.remove(&fact.tuple))
    }

    /// Returns the relation for `pred`, if it exists.
    pub fn relation(&self, pred: impl Into<Symbol>) -> Option<&Relation> {
        self.relations.get(&pred.into())
    }

    /// True iff the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.pred)
            .is_some_and(|rel| rel.contains(&fact.tuple))
    }

    /// Iterates over `(name, relation)` pairs (unspecified order).
    pub fn relations(&self) -> impl Iterator<Item = (Symbol, &Relation)> {
        self.relations.iter().map(|(s, r)| (*s, r))
    }

    /// Iterates over every fact in the database.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations.iter().flat_map(|(pred, rel)| {
            rel.iter().map(move |t| Fact {
                pred: *pred,
                tuple: t,
            })
        })
    }

    /// Total number of tuples across relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Removes every tuple of `pred` (keeps the declaration).
    pub fn clear_relation(&mut self, pred: impl Into<Symbol>) {
        if let Some(rel) = self.relations.get_mut(&pred.into()) {
            rel.clear();
        }
    }

    /// Removes every tuple of every relation, keeping the relation map
    /// entries and their tuple arenas' capacity — the recycling half of the
    /// seminaive delta pool (clear + reuse instead of a fresh `Database`
    /// per round).
    pub fn clear_all(&mut self) {
        for rel in self.relations.values_mut() {
            rel.clear();
        }
    }

    /// Merges every fact of `other` into `self`. Returns the number of facts
    /// that were new.
    pub fn absorb(&mut self, other: &Database) -> Result<usize> {
        let mut added = 0;
        for (pred, rel) in other.relations() {
            added += self.copy_relation(pred, rel)?;
        }
        Ok(added)
    }

    /// Copies every tuple of `rel` into this database's `pred` relation,
    /// staying in the interned id plane (no resolution to values and no
    /// re-interning — the fast path for snapshotting/merging whole
    /// relations). Returns the number of tuples that were new.
    pub fn copy_relation(&mut self, pred: impl Into<Symbol>, rel: &Relation) -> Result<usize> {
        let pred = pred.into();
        let mut added = 0;
        for row in rel.iter_ids() {
            if self.insert_ids(pred, rel.arity(), row)? {
                added += 1;
            }
        }
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(pred: &str, vals: &[i64]) -> Fact {
        Fact::new(pred, vals.iter().map(|&v| Value::from(v)))
    }

    #[test]
    fn insert_creates_relation() {
        let mut db = Database::new();
        assert!(db.insert(fact("r", &[1, 2])).unwrap());
        assert!(db.contains(&fact("r", &[1, 2])));
        assert_eq!(db.relation("r").unwrap().arity(), 2);
    }

    #[test]
    fn arity_locked_on_first_use() {
        let mut db = Database::new();
        db.insert(fact("r", &[1])).unwrap();
        let err = db.insert(fact("r", &[1, 2])).unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn declare_then_mismatch() {
        let mut db = Database::new();
        db.declare("s", 3).unwrap();
        assert!(db.declare("s", 3).is_ok());
        assert!(db.declare("s", 2).is_err());
        assert_eq!(db.relation("s").unwrap().len(), 0);
    }

    #[test]
    fn remove_facts() {
        let mut db = Database::new();
        db.insert(fact("r", &[1])).unwrap();
        assert!(db.remove(&fact("r", &[1])));
        assert!(!db.remove(&fact("r", &[1])));
        assert!(!db.remove(&fact("absent", &[1])));
        assert_eq!(db.fact_count(), 0);
    }

    #[test]
    fn absorb_counts_new_facts() {
        let mut a = Database::new();
        let mut b = Database::new();
        a.insert(fact("r", &[1])).unwrap();
        b.insert(fact("r", &[1])).unwrap();
        b.insert(fact("r", &[2])).unwrap();
        b.insert(fact("q", &[9])).unwrap();
        assert_eq!(a.absorb(&b).unwrap(), 2);
        assert_eq!(a.fact_count(), 3);
    }

    #[test]
    fn facts_iterator_covers_all() {
        let mut db = Database::new();
        db.insert(fact("r", &[1])).unwrap();
        db.insert(fact("q", &[2])).unwrap();
        let mut got: Vec<String> = db.facts().map(|f| f.to_string()).collect();
        got.sort();
        assert_eq!(got, vec!["q(2)", "r(1)"]);
    }

    #[test]
    fn clear_relation_keeps_arity() {
        let mut db = Database::new();
        db.insert(fact("r", &[1, 2])).unwrap();
        db.clear_relation("r");
        assert_eq!(db.relation("r").unwrap().len(), 0);
        assert_eq!(db.relation("r").unwrap().arity(), 2);
    }
}
