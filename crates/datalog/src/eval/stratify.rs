//! Stratification of programs with negation.
//!
//! Builds the predicate dependency graph (an edge `q → p` for every rule
//! `p :- ..., q, ...`, marked *negative* when `q` occurs under `not`),
//! computes strongly connected components, rejects programs with a negative
//! edge inside a component (negation through recursion), and orders the
//! components bottom-up.
//!
//! The demo paper notes negation is "supported by the language [but] not yet
//! implemented in the WebdamLog system"; this kernel implements it, and the
//! WebdamLog layer exposes it as an extension (see EXPERIMENTS.md).

use crate::{DatalogError, Result, Rule, Symbol};
use std::collections::HashMap;

/// The output of stratification: rule indices grouped by stratum, bottom-up.
#[derive(Debug, Clone)]
pub struct Strata {
    /// `strata[i]` lists indices (into the program's rule vector) of the
    /// rules whose heads live in stratum `i`.
    pub rule_strata: Vec<Vec<usize>>,
    /// Stratum number per IDB predicate.
    pub pred_stratum: HashMap<Symbol, usize>,
}

impl Strata {
    /// Number of strata.
    pub fn len(&self) -> usize {
        self.rule_strata.len()
    }

    /// True when there are no rules at all.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.rule_strata.is_empty()
    }

    /// The IDB predicates of stratum `i`.
    pub fn preds_of(&self, stratum: usize) -> Vec<Symbol> {
        self.pred_stratum
            .iter()
            .filter(|(_, s)| **s == stratum)
            .map(|(p, _)| *p)
            .collect()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum EdgeSign {
    Pos,
    Neg,
}

/// Computes strata for `rules`. Errors with [`DatalogError::NotStratifiable`]
/// if negation occurs through recursion.
pub fn stratify(rules: &[Rule]) -> Result<Strata> {
    // IDB predicates: those appearing in some head.
    let idb: Vec<Symbol> = {
        let mut v = Vec::new();
        for r in rules {
            if !v.contains(&r.head.pred) {
                v.push(r.head.pred);
            }
        }
        v
    };
    let index_of: HashMap<Symbol, usize> = idb.iter().enumerate().map(|(i, p)| (*p, i)).collect();

    // Dependency edges between IDB predicates only (EDB facts are stratum 0
    // inputs and impose no constraints).
    let mut edges: Vec<(usize, usize, EdgeSign)> = Vec::new();
    for r in rules {
        let head = index_of[&r.head.pred];
        for p in r.positive_preds() {
            if let Some(&src) = index_of.get(&p) {
                edges.push((src, head, EdgeSign::Pos));
            }
        }
        for p in r.negative_preds() {
            if let Some(&src) = index_of.get(&p) {
                edges.push((src, head, EdgeSign::Neg));
            }
        }
    }

    // Longest-path stratum assignment: stratum(p) >= stratum(q) for positive
    // q→p, stratum(p) >= stratum(q)+1 for negative. Bellman-Ford style
    // relaxation; more than |idb| rounds of change means a negative cycle.
    let n = idb.len();
    let mut stratum = vec![0usize; n];
    for round in 0..=n {
        let mut changed = false;
        for &(src, dst, sign) in &edges {
            let required = match sign {
                EdgeSign::Pos => stratum[src],
                EdgeSign::Neg => stratum[src] + 1,
            };
            if stratum[dst] < required {
                stratum[dst] = required;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n {
            let cyclic: Vec<String> = idb
                .iter()
                .enumerate()
                .filter(|(i, _)| stratum[*i] > n)
                .map(|(_, p)| p.to_string())
                .collect();
            return Err(DatalogError::NotStratifiable(format!(
                "negation through recursion involving {{{}}}",
                cyclic.join(", ")
            )));
        }
    }

    let max_stratum = stratum.iter().copied().max().unwrap_or(0);
    let mut rule_strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (ri, r) in rules.iter().enumerate() {
        rule_strata[stratum[index_of[&r.head.pred]]].push(ri);
    }
    // Drop empty trailing strata produced by gaps.
    let pred_stratum = idb
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, stratum[i]))
        .collect();
    Ok(Strata {
        rule_strata,
        pred_stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, BodyItem, Term};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    fn rule(head: Atom, body: Vec<BodyItem>) -> Rule {
        Rule::new(head, body)
    }

    #[test]
    fn positive_recursion_single_stratum() {
        let rules = vec![
            rule(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            rule(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rule_strata[0].len(), 2);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        // reach(x) :- src(x); reach(y) :- reach(x), edge(x,y)
        // unreached(x) :- node(x), not reach(x)
        let rules = vec![
            rule(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
            rule(
                atom("reach", &["y"]),
                vec![
                    atom("reach", &["x"]).into(),
                    atom("edge", &["x", "y"]).into(),
                ],
            ),
            rule(
                atom("unreached", &["x"]),
                vec![
                    atom("node", &["x"]).into(),
                    BodyItem::not_atom(atom("reach", &["x"])),
                ],
            ),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.pred_stratum[&Symbol::intern("reach")], 0);
        assert_eq!(s.pred_stratum[&Symbol::intern("unreached")], 1);
    }

    #[test]
    fn negation_through_recursion_rejected() {
        // p(x) :- q(x), not r(x); r(x) :- q(x), not p(x)
        let rules = vec![
            rule(
                atom("p", &["x"]),
                vec![
                    atom("q", &["x"]).into(),
                    BodyItem::not_atom(atom("r", &["x"])),
                ],
            ),
            rule(
                atom("r", &["x"]),
                vec![
                    atom("q", &["x"]).into(),
                    BodyItem::not_atom(atom("p", &["x"])),
                ],
            ),
        ];
        let err = stratify(&rules).unwrap_err();
        assert!(matches!(err, DatalogError::NotStratifiable(_)));
    }

    #[test]
    fn self_negation_rejected() {
        let rules = vec![rule(
            atom("p", &["x"]),
            vec![
                atom("q", &["x"]).into(),
                BodyItem::not_atom(atom("p", &["x"])),
            ],
        )];
        assert!(stratify(&rules).is_err());
    }

    #[test]
    fn empty_program() {
        let s = stratify(&[]).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.rule_strata[0].is_empty());
    }

    #[test]
    fn chained_negations_stack_strata() {
        // a :- base. b :- base, not a. c :- base, not b.
        let rules = vec![
            rule(atom("a", &["x"]), vec![atom("base", &["x"]).into()]),
            rule(
                atom("b", &["x"]),
                vec![
                    atom("base", &["x"]).into(),
                    BodyItem::not_atom(atom("a", &["x"])),
                ],
            ),
            rule(
                atom("c", &["x"]),
                vec![
                    atom("base", &["x"]).into(),
                    BodyItem::not_atom(atom("b", &["x"])),
                ],
            ),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.pred_stratum[&Symbol::intern("c")], 2);
    }
}
