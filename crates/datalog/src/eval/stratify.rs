//! Stratification of programs with negation.
//!
//! Builds the predicate dependency graph (an edge `q → p` for every rule
//! `p :- ..., q, ...`, marked *negative* when `q` occurs under `not`),
//! computes strongly connected components, rejects programs with a negative
//! edge inside a component (negation through recursion), and orders the
//! components bottom-up.
//!
//! The demo paper notes negation is "supported by the language [but] not yet
//! implemented in the WebdamLog system"; this kernel implements it, and the
//! WebdamLog layer exposes it as an extension (see EXPERIMENTS.md).

use crate::{DatalogError, Result, Rule, Symbol};
use std::collections::HashMap;

/// The output of stratification: rule indices grouped by stratum, bottom-up.
#[derive(Debug, Clone)]
pub struct Strata {
    /// `strata[i]` lists indices (into the program's rule vector) of the
    /// rules whose heads live in stratum `i`.
    pub rule_strata: Vec<Vec<usize>>,
    /// Stratum number per IDB predicate.
    pub pred_stratum: HashMap<Symbol, usize>,
}

impl Strata {
    /// Number of strata.
    pub fn len(&self) -> usize {
        self.rule_strata.len()
    }

    /// True when there are no rules at all.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.rule_strata.is_empty()
    }

    /// The IDB predicates of stratum `i`.
    pub fn preds_of(&self, stratum: usize) -> Vec<Symbol> {
        self.pred_stratum
            .iter()
            .filter(|(_, s)| **s == stratum)
            .map(|(p, _)| *p)
            .collect()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum EdgeSign {
    Pos,
    Neg,
}

/// A cycle through a signed dependency graph containing at least one
/// negative edge — the witness behind a [`DatalogError::NotStratifiable`],
/// also reused by the `wdl-analyze` crate's cross-peer stratification
/// check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegativeCycle {
    /// Node indices along the cycle, in order. The cycle closes from the
    /// last node back to the first.
    pub nodes: Vec<usize>,
    /// `negative[i]` is the sign of the edge leaving `nodes[i]` (toward
    /// `nodes[(i + 1) % len]`). At least one entry is `true`.
    pub negative: Vec<bool>,
}

impl NegativeCycle {
    /// Renders the cycle as `a -> not b -> a`, naming nodes through `name`.
    pub fn render(&self, mut name: impl FnMut(usize) -> String) -> String {
        let mut out = name(self.nodes[0]);
        for i in 0..self.nodes.len() {
            let next = self.nodes[(i + 1) % self.nodes.len()];
            out.push_str(" -> ");
            if self.negative[i] {
                out.push_str("not ");
            }
            out.push_str(&name(next));
        }
        out
    }
}

/// Finds a cycle containing a negative edge in a signed graph over nodes
/// `0..n`, given as `(src, dst, is_negative)` edges. Returns `None` when
/// every negative edge crosses between strongly connected components
/// (i.e. the graph is stratifiable).
pub fn negative_cycle(n: usize, edges: &[(usize, usize, bool)]) -> Option<NegativeCycle> {
    if n == 0 {
        return None;
    }
    let comp = scc_components(n, edges);
    let (src, dst) = edges
        .iter()
        .find(|&&(s, d, neg)| neg && comp[s] == comp[d])
        .map(|&(s, d, _)| (s, d))?;
    if src == dst {
        return Some(NegativeCycle {
            nodes: vec![src],
            negative: vec![true],
        });
    }
    // Close the cycle: walk from `dst` back to `src` inside the component
    // (preferring positive edges so the witness shows exactly one
    // negation when one suffices).
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for &(s, d, neg) in edges {
        if comp[s] == comp[src] && comp[d] == comp[src] {
            adj[s].push((d, neg));
        }
    }
    for a in &mut adj {
        a.sort_by_key(|&(_, neg)| neg);
    }
    let mut parent: Vec<Option<(usize, bool)>> = vec![None; n];
    let mut queue = std::collections::VecDeque::from([dst]);
    let mut seen = vec![false; n];
    seen[dst] = true;
    while let Some(u) = queue.pop_front() {
        if u == src {
            break;
        }
        for &(v, neg) in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some((u, neg));
                queue.push_back(v);
            }
        }
    }
    // Path dst -> ... -> src exists because both sit in one SCC.
    let mut rev = Vec::new();
    let mut at = src;
    while at != dst {
        let (prev, neg) = parent[at]?;
        rev.push((at, neg));
        at = prev;
    }
    let mut nodes = vec![src, dst];
    let mut negative = vec![true];
    for &(node, neg) in rev.iter().rev() {
        negative.push(neg);
        if node != src {
            nodes.push(node);
        }
    }
    Some(NegativeCycle { nodes, negative })
}

/// Kosaraju-style SCC labelling: `result[v]` identifies v's component.
fn scc_components(n: usize, edges: &[(usize, usize, bool)]) -> Vec<usize> {
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(s, d, _) in edges {
        fwd[s].push(d);
        rev[d].push(s);
    }
    // First pass: finish order via iterative DFS.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < fwd[u].len() {
                let v = fwd[u][*i];
                *i += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Second pass: reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next;
        while let Some(u) = stack.pop() {
            for &v in &rev[u] {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Computes strata for `rules`. Errors with [`DatalogError::NotStratifiable`]
/// if negation occurs through recursion.
pub fn stratify(rules: &[Rule]) -> Result<Strata> {
    // IDB predicates: those appearing in some head.
    let idb: Vec<Symbol> = {
        let mut v = Vec::new();
        for r in rules {
            if !v.contains(&r.head.pred) {
                v.push(r.head.pred);
            }
        }
        v
    };
    let index_of: HashMap<Symbol, usize> = idb.iter().enumerate().map(|(i, p)| (*p, i)).collect();

    // Dependency edges between IDB predicates only (EDB facts are stratum 0
    // inputs and impose no constraints).
    let mut edges: Vec<(usize, usize, EdgeSign)> = Vec::new();
    for r in rules {
        let head = index_of[&r.head.pred];
        for p in r.positive_preds() {
            if let Some(&src) = index_of.get(&p) {
                edges.push((src, head, EdgeSign::Pos));
            }
        }
        for p in r.negative_preds() {
            if let Some(&src) = index_of.get(&p) {
                edges.push((src, head, EdgeSign::Neg));
            }
        }
    }

    // Longest-path stratum assignment: stratum(p) >= stratum(q) for positive
    // q→p, stratum(p) >= stratum(q)+1 for negative. Bellman-Ford style
    // relaxation; more than |idb| rounds of change means a negative cycle.
    let n = idb.len();
    let mut stratum = vec![0usize; n];
    for round in 0..=n {
        let mut changed = false;
        for &(src, dst, sign) in &edges {
            let required = match sign {
                EdgeSign::Pos => stratum[src],
                EdgeSign::Neg => stratum[src] + 1,
            };
            if stratum[dst] < required {
                stratum[dst] = required;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n {
            let signed: Vec<(usize, usize, bool)> = edges
                .iter()
                .map(|&(s, d, sign)| (s, d, sign == EdgeSign::Neg))
                .collect();
            let msg = match negative_cycle(n, &signed) {
                Some(cycle) => format!(
                    "negation through recursive cycle {}",
                    cycle.render(|i| idb[i].to_string())
                ),
                None => {
                    // Unreachable in practice (a failed relaxation implies
                    // a negative cycle), kept as a conservative fallback.
                    let cyclic: Vec<String> = idb
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| stratum[*i] > n)
                        .map(|(_, p)| p.to_string())
                        .collect();
                    format!(
                        "negation through recursion involving {{{}}}",
                        cyclic.join(", ")
                    )
                }
            };
            return Err(DatalogError::NotStratifiable(msg));
        }
    }

    let max_stratum = stratum.iter().copied().max().unwrap_or(0);
    let mut rule_strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (ri, r) in rules.iter().enumerate() {
        rule_strata[stratum[index_of[&r.head.pred]]].push(ri);
    }
    // Drop empty trailing strata produced by gaps.
    let pred_stratum = idb
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, stratum[i]))
        .collect();
    Ok(Strata {
        rule_strata,
        pred_stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, BodyItem, Term};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    fn rule(head: Atom, body: Vec<BodyItem>) -> Rule {
        Rule::new(head, body)
    }

    #[test]
    fn positive_recursion_single_stratum() {
        let rules = vec![
            rule(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            rule(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rule_strata[0].len(), 2);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        // reach(x) :- src(x); reach(y) :- reach(x), edge(x,y)
        // unreached(x) :- node(x), not reach(x)
        let rules = vec![
            rule(atom("reach", &["x"]), vec![atom("src", &["x"]).into()]),
            rule(
                atom("reach", &["y"]),
                vec![
                    atom("reach", &["x"]).into(),
                    atom("edge", &["x", "y"]).into(),
                ],
            ),
            rule(
                atom("unreached", &["x"]),
                vec![
                    atom("node", &["x"]).into(),
                    BodyItem::not_atom(atom("reach", &["x"])),
                ],
            ),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.pred_stratum[&Symbol::intern("reach")], 0);
        assert_eq!(s.pred_stratum[&Symbol::intern("unreached")], 1);
    }

    #[test]
    fn negation_through_recursion_rejected() {
        // p(x) :- q(x), not r(x); r(x) :- q(x), not p(x)
        let rules = vec![
            rule(
                atom("p", &["x"]),
                vec![
                    atom("q", &["x"]).into(),
                    BodyItem::not_atom(atom("r", &["x"])),
                ],
            ),
            rule(
                atom("r", &["x"]),
                vec![
                    atom("q", &["x"]).into(),
                    BodyItem::not_atom(atom("p", &["x"])),
                ],
            ),
        ];
        let err = stratify(&rules).unwrap_err();
        let DatalogError::NotStratifiable(msg) = err else {
            panic!("expected NotStratifiable, got {err:?}");
        };
        // The message names the actual cycle, not just the predicate set.
        assert!(msg.contains("recursive cycle"), "{msg}");
        assert!(msg.contains("not p") || msg.contains("not r"), "{msg}");
    }

    #[test]
    fn negative_cycle_witness_found_and_rendered() {
        // 0 -not-> 1 -pos-> 2 -pos-> 0: one negative edge in the cycle.
        let edges = [(0, 1, true), (1, 2, false), (2, 0, false)];
        let cyc = negative_cycle(3, &edges).expect("cycle");
        assert_eq!(cyc.nodes.len(), cyc.negative.len());
        assert_eq!(cyc.negative.iter().filter(|&&n| n).count(), 1);
        let names = ["a", "b", "c"];
        let rendered = cyc.render(|i| names[i].to_string());
        assert!(rendered.contains("not b"), "{rendered}");
        assert!(
            rendered.starts_with('a') && rendered.ends_with('a'),
            "{rendered}"
        );
    }

    #[test]
    fn negative_edge_across_components_is_fine() {
        // 0 -not-> 1, 1 -pos-> 2, 2 -pos-> 1: the negative edge is not
        // part of any cycle.
        let edges = [(0, 1, true), (1, 2, false), (2, 1, false)];
        assert!(negative_cycle(3, &edges).is_none());
        assert!(negative_cycle(0, &[]).is_none());
    }

    #[test]
    fn self_negation_witness() {
        let edges = [(0, 0, true)];
        let cyc = negative_cycle(1, &edges).expect("self-loop");
        assert_eq!(cyc.render(|_| "p".to_string()), "p -> not p");
    }

    #[test]
    fn self_negation_rejected() {
        let rules = vec![rule(
            atom("p", &["x"]),
            vec![
                atom("q", &["x"]).into(),
                BodyItem::not_atom(atom("p", &["x"])),
            ],
        )];
        assert!(stratify(&rules).is_err());
    }

    #[test]
    fn empty_program() {
        let s = stratify(&[]).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.rule_strata[0].is_empty());
    }

    #[test]
    fn chained_negations_stack_strata() {
        // a :- base. b :- base, not a. c :- base, not b.
        let rules = vec![
            rule(atom("a", &["x"]), vec![atom("base", &["x"]).into()]),
            rule(
                atom("b", &["x"]),
                vec![
                    atom("base", &["x"]).into(),
                    BodyItem::not_atom(atom("a", &["x"])),
                ],
            ),
            rule(
                atom("c", &["x"]),
                vec![
                    atom("base", &["x"]).into(),
                    BodyItem::not_atom(atom("b", &["x"])),
                ],
            ),
        ];
        let s = stratify(&rules).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.pred_stratum[&Symbol::intern("c")], 2);
    }
}
