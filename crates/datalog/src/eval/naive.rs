//! Naive bottom-up fixpoint: re-derive everything from scratch each round.
//!
//! Kept as the baseline for the E6 ablation (seminaive vs naive, replacing
//! the Bud engine comparison the original system could not publish).

use crate::eval::{derive_plan, match_body, PlannedRule};
use crate::program::EvalStats;
use crate::{Database, DatalogError, Result, Rule, Subst};

/// Compiled naive fixpoint: same round structure (and [`EvalStats`]) as
/// [`naive_fixpoint`], running each rule's register-file plan.
pub(crate) fn naive_fixpoint_compiled(
    db: &mut Database,
    rules: &[PlannedRule<'_>],
    stats: &mut EvalStats,
    iteration_limit: usize,
) -> Result<()> {
    let mut scratches: Vec<crate::eval::Scratch> = rules
        .iter()
        .map(|pr| crate::eval::Scratch::for_plan(pr.plan))
        .collect();
    let mut bufs: Vec<super::seminaive::HeadBuf> = rules
        .iter()
        .map(|_| super::seminaive::HeadBuf::default())
        .collect();
    loop {
        stats.iterations += 1;
        if stats.iterations > iteration_limit {
            return Err(DatalogError::IterationLimit(iteration_limit));
        }
        for (ri, pr) in rules.iter().enumerate() {
            let mut n = 0usize;
            derive_plan(
                db,
                None,
                pr.plan,
                &mut scratches[ri],
                &mut bufs[ri].flat,
                &mut n,
            )?;
            bufs[ri].rows += n;
            stats.derivations += n;
        }
        let mut changed = false;
        for (ri, buf) in bufs.iter_mut().enumerate() {
            let pred = rules[ri].plan.head_pred;
            let arity = rules[ri].plan.head_arity();
            for r in 0..buf.rows {
                let row = &buf.flat[r * arity..(r + 1) * arity];
                if db.insert_ids(pred, arity, row)? {
                    stats.facts_derived += 1;
                    changed = true;
                }
            }
            buf.rows = 0;
            buf.flat.clear();
        }
        if !changed {
            return Ok(());
        }
    }
}

/// Runs the naive fixpoint for one stratum's rules over `db` in place.
pub(crate) fn naive_fixpoint(
    db: &mut Database,
    rules: &[&Rule],
    stats: &mut EvalStats,
    iteration_limit: usize,
) -> Result<()> {
    loop {
        stats.iterations += 1;
        if stats.iterations > iteration_limit {
            return Err(DatalogError::IterationLimit(iteration_limit));
        }
        let mut new_facts = Vec::new();
        for rule in rules {
            let mut derive = |subst: Subst| -> Result<()> {
                stats.derivations += 1;
                if let Some(fact) = rule.head.ground(&subst) {
                    new_facts.push(fact);
                    Ok(())
                } else {
                    Err(DatalogError::UnboundVariable(format!(
                        "head of {rule} not fully bound (rule unsafe?)"
                    )))
                }
            };
            match_body(db, None, &rule.body, Subst::new(), &mut derive)?;
        }
        let mut changed = false;
        for fact in new_facts {
            if db.insert(fact)? {
                stats.facts_derived += 1;
                changed = true;
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Fact, Term, Value};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn transitive_closure() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        let rules = [
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ];
        let refs: Vec<&Rule> = rules.iter().collect();
        let mut stats = EvalStats::default();
        naive_fixpoint(&mut db, &refs, &mut stats, 1000).unwrap();
        assert_eq!(db.relation("path").unwrap().len(), 6);
        assert!(stats.iterations >= 3); // chain of length 3 needs ≥3 rounds
    }

    #[test]
    fn iteration_limit_fires() {
        let mut db = Database::new();
        db.insert(Fact::new("n", vec![Value::from(0)])).unwrap();
        // n(x+1) :- n(x)  — diverges without a limit.
        let rules = [Rule::new(
            Atom::new("n", vec![Term::var("y")]),
            vec![
                atom("n", &["x"]).into(),
                crate::BodyItem::assign(
                    "y",
                    crate::Expr::bin(
                        crate::BinOp::Add,
                        crate::Expr::term(Term::var("x")),
                        crate::Expr::term(Term::cst(1)),
                    ),
                ),
            ],
        )];
        let refs: Vec<&Rule> = rules.iter().collect();
        let mut stats = EvalStats::default();
        let err = naive_fixpoint(&mut db, &refs, &mut stats, 50).unwrap_err();
        assert!(matches!(err, DatalogError::IterationLimit(50)));
    }
}
