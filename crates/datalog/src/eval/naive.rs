//! Naive bottom-up fixpoint: re-derive everything from scratch each round.
//!
//! Kept as the baseline for the E6 ablation (seminaive vs naive, replacing
//! the Bud engine comparison the original system could not publish).

use crate::eval::match_body;
use crate::program::EvalStats;
use crate::{Database, DatalogError, Result, Rule, Subst};

/// Runs the naive fixpoint for one stratum's rules over `db` in place.
pub(crate) fn naive_fixpoint(
    db: &mut Database,
    rules: &[&Rule],
    stats: &mut EvalStats,
    iteration_limit: usize,
) -> Result<()> {
    loop {
        stats.iterations += 1;
        if stats.iterations > iteration_limit {
            return Err(DatalogError::IterationLimit(iteration_limit));
        }
        let mut new_facts = Vec::new();
        for rule in rules {
            let mut derive = |subst: Subst| -> Result<()> {
                stats.derivations += 1;
                if let Some(fact) = rule.head.ground(&subst) {
                    new_facts.push(fact);
                    Ok(())
                } else {
                    Err(DatalogError::UnboundVariable(format!(
                        "head of {rule} not fully bound (rule unsafe?)"
                    )))
                }
            };
            match_body(db, None, &rule.body, Subst::new(), &mut derive)?;
        }
        let mut changed = false;
        for fact in new_facts {
            if db.insert(fact)? {
                stats.facts_derived += 1;
                changed = true;
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Fact, Term, Value};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn transitive_closure() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert(Fact::new("edge", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        let rules = [
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ];
        let refs: Vec<&Rule> = rules.iter().collect();
        let mut stats = EvalStats::default();
        naive_fixpoint(&mut db, &refs, &mut stats, 1000).unwrap();
        assert_eq!(db.relation("path").unwrap().len(), 6);
        assert!(stats.iterations >= 3); // chain of length 3 needs ≥3 rounds
    }

    #[test]
    fn iteration_limit_fires() {
        let mut db = Database::new();
        db.insert(Fact::new("n", vec![Value::from(0)])).unwrap();
        // n(x+1) :- n(x)  — diverges without a limit.
        let rules = [Rule::new(
            Atom::new("n", vec![Term::var("y")]),
            vec![
                atom("n", &["x"]).into(),
                crate::BodyItem::assign(
                    "y",
                    crate::Expr::bin(
                        crate::BinOp::Add,
                        crate::Expr::term(Term::var("x")),
                        crate::Expr::term(Term::cst(1)),
                    ),
                ),
            ],
        )];
        let refs: Vec<&Rule> = rules.iter().collect();
        let mut stats = EvalStats::default();
        let err = naive_fixpoint(&mut db, &refs, &mut stats, 50).unwrap_err();
        assert!(matches!(err, DatalogError::IterationLimit(50)));
    }
}
