//! Rule evaluation: the shared left-to-right body matcher and the two
//! bottom-up fixpoint strategies (naive and seminaive).
//!
//! The matcher ([`evaluate_body`]) is exported because the WebdamLog engine
//! reuses it verbatim to evaluate the *local prefix* of a distributed rule
//! before delegating the remainder (see `wdl-core`).

mod diff;
mod naive;
mod parallel;
mod plan;
mod seminaive;
mod stratify;

pub use parallel::EvalConfig;
pub use plan::{BodyPlan, BodyScratch};
pub use stratify::{negative_cycle, NegativeCycle};

pub(crate) use diff::{match_body_at_slot, DiffSide, NetChange};
pub(crate) use naive::{naive_fixpoint, naive_fixpoint_compiled};
pub(crate) use parallel::seminaive_fixpoint_sharded;
pub(crate) use plan::{derive_plan, has_witness, run_plan, DiffCtx, FixCtx, RulePlan, Scratch};
pub(crate) use seminaive::{
    seminaive_fixpoint, seminaive_fixpoint_compiled, seminaive_fixpoint_compiled_profiled,
};
pub(crate) use stratify::{stratify, Strata};

use crate::{Atom, BodyItem, Database, DatalogError, Result, Subst, Symbol, Term};

/// A rule paired with its compiled plan — what the fixpoint strategies
/// consume (the interpreted paths read the rule, the compiled paths the
/// plan; both are needed for delta-task discovery).
#[derive(Clone, Copy)]
pub(crate) struct PlannedRule<'a> {
    pub(crate) rule: &'a crate::Rule,
    pub(crate) plan: &'a RulePlan,
}

/// Evaluates a body-item sequence left to right against `db`, starting from
/// `initial`, and returns every substitution that satisfies the whole
/// sequence.
///
/// This is the engine's single join algorithm: an index-assisted nested-loop
/// join that threads bindings left to right, which is exactly the evaluation
/// order the WebdamLog paper prescribes ("Rule bodies in WebdamLog are
/// evaluated from left to right. The order matters", §2).
pub fn evaluate_body(db: &Database, body: &[BodyItem], initial: Subst) -> Result<Vec<Subst>> {
    let mut out = Vec::new();
    match_body(db, None, body, initial, &mut |s| {
        out.push(s);
        Ok(())
    })?;
    Ok(out)
}

/// Like [`evaluate_body`] but restricting one positive-literal occurrence to
/// a delta database (seminaive rewriting). `delta` is `(delta_db, ordinal)`
/// where `ordinal` counts positive literals from the left, 0-based: that
/// occurrence matches against `delta_db`, all others against `db`.
pub(crate) fn match_body(
    db: &Database,
    delta: Option<(&Database, usize)>,
    body: &[BodyItem],
    initial: Subst,
    emit: &mut dyn FnMut(Subst) -> Result<()>,
) -> Result<()> {
    match_items(db, delta, body, 0, 0, initial, emit)
}

fn match_items(
    db: &Database,
    delta: Option<(&Database, usize)>,
    body: &[BodyItem],
    idx: usize,
    pos_ordinal: usize,
    subst: Subst,
    emit: &mut dyn FnMut(Subst) -> Result<()>,
) -> Result<()> {
    let Some(item) = body.get(idx) else {
        return emit(subst);
    };
    match item {
        BodyItem::Literal(l) if !l.negated => {
            let source = match delta {
                Some((delta_db, ordinal)) if ordinal == pos_ordinal => delta_db,
                _ => db,
            };
            let matches = match_atom(source, &l.atom, &subst)?;
            for s in matches {
                match_items(db, delta, body, idx + 1, pos_ordinal + 1, s, emit)?;
            }
            Ok(())
        }
        BodyItem::Literal(l) => {
            // Negation always reads the full database: stratification
            // guarantees the negated relation is complete by the time this
            // stratum runs, and safety guarantees the atom is ground here.
            let fact = l.atom.ground(&subst).ok_or_else(|| {
                DatalogError::UnboundVariable(format!(
                    "negated atom {} reached with unbound variables",
                    l.atom
                ))
            })?;
            if db.contains(&fact) {
                Ok(())
            } else {
                match_items(db, delta, body, idx + 1, pos_ordinal, subst, emit)
            }
        }
        BodyItem::Cmp { op, lhs, rhs } => {
            let l = resolve(lhs, &subst)?;
            let r = resolve(rhs, &subst)?;
            if op.eval(&l, &r)? {
                match_items(db, delta, body, idx + 1, pos_ordinal, subst, emit)
            } else {
                Ok(())
            }
        }
        BodyItem::Assign { var, expr } => {
            let value = expr.eval(&subst)?;
            let mut s = subst;
            if !s.unify_var(*var, &value) {
                // Pre-bound to a different value: treated as a failed filter
                // (can only happen for rules built programmatically without a
                // safety check).
                return Ok(());
            }
            match_items(db, delta, body, idx + 1, pos_ordinal, s, emit)
        }
    }
}

fn resolve(term: &Term, subst: &Subst) -> Result<crate::Value> {
    term.resolve(subst).ok_or_else(|| {
        DatalogError::UnboundVariable(format!("{term} in comparison reached unbound"))
    })
}

/// Matches a single positive atom against the database under `subst`,
/// returning one extended substitution per matching tuple.
pub(crate) fn match_atom(db: &Database, atom: &Atom, subst: &Subst) -> Result<Vec<Subst>> {
    let Some(rel) = db.relation(atom.pred) else {
        return Ok(Vec::new());
    };
    if rel.arity() != atom.arity() {
        return Err(DatalogError::ArityMismatch {
            relation: atom.pred.to_string(),
            expected: rel.arity(),
            found: atom.arity(),
        });
    }
    // Build the index probe from bound positions. A bound value the
    // interner has never seen cannot occur in any stored tuple.
    let mut mask: crate::storage::ColMask = 0;
    let mut key = Vec::new();
    for (i, t) in atom.args.iter().enumerate() {
        let bound = match t {
            Term::Const(v) => Some(v),
            Term::Var(v) => subst.get(*v),
        };
        if let Some(v) = bound {
            match crate::intern::ValueId::lookup(v) {
                Some(id) => {
                    mask |= 1u64 << i;
                    key.push(id);
                }
                None => return Ok(Vec::new()),
            }
        }
    }
    let mut out = Vec::new();
    rel.for_each_match_ids(mask, &key, |row| {
        // Bound columns (mask bits) were verified by the probe; only the
        // unbound variable columns extend the substitution. Resolve the
        // row once and unify — repeated fresh variables in the atom are
        // checked by `unify_var`.
        let mut s = subst.clone();
        for (i, t) in atom.args.iter().enumerate() {
            if mask & (1u64 << i) != 0 {
                continue;
            }
            let Term::Var(v) = t else {
                continue;
            };
            if !s.unify_var_id(*v, row[i]) {
                return true;
            }
        }
        out.push(s);
        true
    });
    Ok(out)
}

/// The set of variables bound after evaluating `prefix` starting from
/// `already_bound` — used by both the safety check and the WebdamLog
/// delegation splitter.
pub fn bound_after(prefix: &[BodyItem], already_bound: &[Symbol]) -> Vec<Symbol> {
    let mut bound = already_bound.to_vec();
    for item in prefix {
        match item {
            BodyItem::Literal(l) if !l.negated => {
                for t in &l.atom.args {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            bound.push(*v);
                        }
                    }
                }
            }
            BodyItem::Assign { var, .. } if !bound.contains(var) => {
                bound.push(*var);
            }
            _ => {}
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Fact, Value};

    fn db_with(facts: &[(&str, &[i64])]) -> Database {
        let mut db = Database::new();
        for (pred, vals) in facts {
            db.insert(Fact::new(*pred, vals.iter().map(|&v| Value::from(v))))
                .unwrap();
        }
        db
    }

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn single_atom_match() {
        let db = db_with(&[("e", &[1, 2]), ("e", &[2, 3])]);
        let out = evaluate_body(&db, &[atom("e", &["x", "y"]).into()], Subst::new()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_threads_bindings() {
        let db = db_with(&[("e", &[1, 2]), ("e", &[2, 3]), ("e", &[3, 4])]);
        // e(x,y), e(y,z)
        let body = vec![atom("e", &["x", "y"]).into(), atom("e", &["y", "z"]).into()];
        let out = evaluate_body(&db, &body, Subst::new()).unwrap();
        assert_eq!(out.len(), 2); // (1,2,3) and (2,3,4)
        for s in &out {
            let y = s.get(Symbol::intern("y")).unwrap().as_int().unwrap();
            assert!(y == 2 || y == 3);
        }
    }

    #[test]
    fn repeated_variable_in_atom_forces_equality() {
        let db = db_with(&[("e", &[1, 1]), ("e", &[1, 2])]);
        let out = evaluate_body(&db, &[atom("e", &["x", "x"]).into()], Subst::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(Symbol::intern("x")), Some(&Value::from(1)));
    }

    #[test]
    fn constants_filter() {
        let db = db_with(&[("e", &[1, 2]), ("e", &[2, 3])]);
        let a = Atom::new("e", vec![Term::cst(2), Term::var("y")]);
        let out = evaluate_body(&db, &[a.into()], Subst::new()).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn negation_filters_bound_tuples() {
        let db = db_with(&[("p", &[1]), ("p", &[2]), ("q", &[2])]);
        let body = vec![
            atom("p", &["x"]).into(),
            BodyItem::not_atom(atom("q", &["x"])),
        ];
        let out = evaluate_body(&db, &body, Subst::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(Symbol::intern("x")), Some(&Value::from(1)));
    }

    #[test]
    fn negation_on_missing_relation_succeeds() {
        let db = db_with(&[("p", &[1])]);
        let body = vec![
            atom("p", &["x"]).into(),
            BodyItem::not_atom(atom("absent", &["x"])),
        ];
        let out = evaluate_body(&db, &body, Subst::new()).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn comparison_and_assignment() {
        let db = db_with(&[("n", &[3]), ("n", &[7])]);
        let body = vec![
            atom("n", &["x"]).into(),
            BodyItem::cmp(CmpOp::Gt, Term::var("x"), Term::cst(5)),
            BodyItem::assign(
                "y",
                crate::Expr::bin(
                    crate::BinOp::Mul,
                    crate::Expr::term(Term::var("x")),
                    crate::Expr::term(Term::cst(2)),
                ),
            ),
        ];
        let out = evaluate_body(&db, &body, Subst::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(Symbol::intern("y")), Some(&Value::from(14)));
    }

    #[test]
    fn initial_bindings_are_respected() {
        let db = db_with(&[("e", &[1, 2]), ("e", &[2, 3])]);
        let init: Subst = [(Symbol::intern("x"), Value::from(2))]
            .into_iter()
            .collect();
        let out = evaluate_body(&db, &[atom("e", &["x", "y"]).into()], init).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(Symbol::intern("y")), Some(&Value::from(3)));
    }

    #[test]
    fn empty_body_yields_initial() {
        let db = Database::new();
        let out = evaluate_body(&db, &[], Subst::new()).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn arity_mismatch_detected_at_match() {
        let db = db_with(&[("e", &[1, 2])]);
        let res = evaluate_body(&db, &[atom("e", &["x"]).into()], Subst::new());
        assert!(matches!(res, Err(DatalogError::ArityMismatch { .. })));
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let db = Database::new();
        let out = evaluate_body(&db, &[atom("ghost", &["x"]).into()], Subst::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn bound_after_tracks_positive_atoms_and_assignments() {
        let body = vec![
            atom("e", &["x", "y"]).into(),
            BodyItem::not_atom(atom("q", &["x"])),
            BodyItem::assign("z", crate::Expr::term(Term::var("x"))),
        ];
        let bound = bound_after(&body, &[Symbol::intern("w")]);
        let names: Vec<&str> = bound.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["w", "x", "y", "z"]);
    }
}
