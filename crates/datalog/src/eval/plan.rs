//! Compiled rule execution plans: numbered register files instead of
//! symbol-keyed substitutions.
//!
//! The interpreted matcher ([`super::match_body`]) threads a [`crate::Subst`]
//! — a heap-allocated vector of `(Symbol, Value)` pairs that is cloned at
//! every join candidate. That clone, and the `Value` comparisons behind it,
//! dominate fixpoint time. A [`RulePlan`] removes both: each rule is
//! compiled **once** into a sequence of [`Step`]s over a flat `[ValueId]`
//! register file. Variables become register numbers at compile time
//! (left-to-right evaluation makes boundness static), probe masks and index
//! keys are precomputed, and a join candidate costs a few integer moves —
//! no allocation, no symbol lookups, no deep value hashing.
//!
//! Three compilation modes share the step set and executor:
//!
//! * **Fixpoint plans** ([`RulePlan::compile`]) — the body in source order,
//!   used by the naive, seminaive and sharded-parallel strategies (one
//!   positive occurrence optionally reads the delta, selected at run time
//!   by its precomputed ordinal).
//! * **Differential plans** ([`RulePlan::compile_diff`]) — one plan per
//!   (rule, literal slot) for the incremental engine's finite differencing:
//!   a pinned *positive* literal is hoisted to the front (it reads the
//!   small delta) and the remaining items keep their order, with boundness
//!   reclassified for the new order; a pinned *negated* literal stays in
//!   place and becomes a delta membership test. Which state a non-pinned
//!   literal reads (old/new/prefix-new-suffix-old) stays a run-time
//!   property of the original literal ordinal, exactly as in
//!   [`super::diff`].
//! * **Rederivation plans** ([`RulePlan::compile_rederive`]) — the body
//!   compiled with the head variables pre-bound, so DRed can ask "does this
//!   overdeleted fact still have one derivation?" by unifying the fact into
//!   the registers and probing for a single witness.
//!
//! Execution resolves back to [`crate::Value`] only where the semantics
//! require real values: ordering comparisons, arithmetic/assignments (whose
//! results are interned on the way back in), and nowhere else.

use crate::eval::DiffSide;
use crate::intern::ValueId;
use crate::storage::ColMask;
use crate::{Atom, BodyItem, CmpOp, Database, DatalogError, Expr, Result, Rule, Symbol, Term};
use std::collections::HashMap;

/// Where a column/operand value comes from at run time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Src {
    /// A register bound by an earlier step (or a pre-bound head variable).
    Reg(u16),
    /// A constant, interned at compile time.
    Const(ValueId),
}

impl Src {
    #[inline]
    fn get(self, regs: &[ValueId]) -> ValueId {
        match self {
            Src::Reg(r) => regs[r as usize],
            Src::Const(id) => id,
        }
    }
}

/// A positive literal: an index-assisted scan.
#[derive(Clone, Debug)]
pub(crate) struct ScanStep {
    pub(crate) pred: Symbol,
    pub(crate) arity: usize,
    /// Ordinal among *positive* literals of the rule body (seminaive delta
    /// rewriting selects one occurrence by this number).
    pub(crate) pos_ordinal: usize,
    /// Ordinal among *all* literals of the rule body (differential
    /// evaluation picks the old/new state by this number).
    pub(crate) lit_ordinal: usize,
    /// True in a differential plan when this is the pinned (delta) literal.
    pub(crate) pinned: bool,
    /// Bound columns at this point of evaluation (statically known).
    pub(crate) mask: ColMask,
    /// Sources for the bound columns, in column order.
    pub(crate) key: Vec<Src>,
    /// Unbound first-occurrence columns: write `row[col]` into the register.
    pub(crate) binds: Vec<(usize, u16)>,
    /// Repeated fresh variables within this atom: `row[col]` must equal the
    /// register bound by an earlier column of the *same* row.
    pub(crate) checks: Vec<(usize, u16)>,
}

/// A negated literal: a ground membership test.
#[derive(Clone, Debug)]
pub(crate) struct NegStep {
    pub(crate) pred: Symbol,
    pub(crate) lit_ordinal: usize,
    pub(crate) pinned: bool,
    pub(crate) args: Vec<Src>,
}

/// One compiled body item.
#[derive(Clone, Debug)]
pub(crate) enum Step {
    /// Positive literal.
    Scan(ScanStep),
    /// Negated literal.
    Neg(NegStep),
    /// Comparison builtin.
    Cmp { op: CmpOp, lhs: Src, rhs: Src },
    /// Assignment builtin. `env` maps the expression's variables to
    /// registers; `check` is set when the target was already bound (the
    /// assignment then acts as an equality filter, mirroring
    /// `Subst::unify_var`).
    Assign {
        reg: u16,
        expr: Expr,
        env: Vec<(Symbol, u16)>,
        check: bool,
    },
}

/// How the head unifies with a given fact in a rederivation probe.
#[derive(Clone, Debug)]
pub(crate) enum HeadAct {
    /// Head column is a constant: the fact's column must equal it.
    Check(ValueId),
    /// First occurrence of a head variable: bind the register.
    Set(u16),
    /// Repeated head variable: the fact's column must equal the register.
    Match(u16),
}

/// A rule compiled to a register program. See the module docs for the
/// three compilation modes.
#[derive(Clone, Debug)]
pub(crate) struct RulePlan {
    pub(crate) nregs: usize,
    pub(crate) steps: Vec<Step>,
    pub(crate) head_pred: Symbol,
    /// Sources for the head columns.
    pub(crate) head: Vec<Src>,
    /// Head unification actions (rederivation plans only; empty otherwise).
    pub(crate) head_acts: Vec<HeadAct>,
}

impl RulePlan {
    /// Arity of the head relation.
    pub(crate) fn head_arity(&self) -> usize {
        self.head.len()
    }

    /// Compiles the fixpoint plan: body in source order, nothing pre-bound.
    pub(crate) fn compile(rule: &Rule) -> Result<RulePlan> {
        let order: Vec<usize> = (0..rule.body.len()).collect();
        Compiler::default().compile(rule, &order, None, false)
    }

    /// Compiles the differential plan for the literal at `slot` (counting
    /// literal body items only). Returns `None` when the body has fewer
    /// literals than `slot`.
    pub(crate) fn compile_diff(rule: &Rule, slot: usize) -> Result<Option<RulePlan>> {
        let mut lit = 0usize;
        let mut pinned_idx = None;
        let mut pinned_positive = false;
        for (i, item) in rule.body.iter().enumerate() {
            if let BodyItem::Literal(l) = item {
                if lit == slot {
                    pinned_idx = Some(i);
                    pinned_positive = !l.negated;
                    break;
                }
                lit += 1;
            }
        }
        let Some(pinned_idx) = pinned_idx else {
            return Ok(None);
        };
        // A pinned positive literal is hoisted to the front (it enumerates
        // the small delta); everything else keeps its relative order, and
        // boundness is reclassified for the hoisted order. A pinned negated
        // literal needs its prefix bindings to become ground, so it stays
        // in place.
        let order: Vec<usize> = if pinned_positive {
            std::iter::once(pinned_idx)
                .chain((0..rule.body.len()).filter(|&i| i != pinned_idx))
                .collect()
        } else {
            (0..rule.body.len()).collect()
        };
        Compiler::default()
            .compile(rule, &order, Some(pinned_idx), false)
            .map(Some)
    }

    /// Compiles the rederivation plan: head variables pre-bound (via
    /// [`RulePlan::head_acts`]), body in source order.
    pub(crate) fn compile_rederive(rule: &Rule) -> Result<RulePlan> {
        let order: Vec<usize> = (0..rule.body.len()).collect();
        Compiler::default().compile(rule, &order, None, true)
    }

    /// Unifies `row` with the head into `regs` (rederivation plans only).
    /// Returns false when the head cannot produce the row.
    pub(crate) fn unify_head(&self, row: &[ValueId], regs: &mut [ValueId]) -> bool {
        if row.len() != self.head_acts.len() {
            return false;
        }
        for (act, &id) in self.head_acts.iter().zip(row) {
            match act {
                HeadAct::Check(c) => {
                    if *c != id {
                        return false;
                    }
                }
                HeadAct::Set(r) => regs[*r as usize] = id,
                HeadAct::Match(r) => {
                    if regs[*r as usize] != id {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Plan compiler: tracks variable→register assignment while walking body
/// items in the requested order.
#[derive(Default)]
struct Compiler {
    regs: HashMap<Symbol, u16>,
}

impl Compiler {
    fn alloc(&mut self, var: Symbol) -> u16 {
        let next = u16::try_from(self.regs.len()).expect("more than 65k rule variables");
        *self.regs.entry(var).or_insert(next)
    }

    fn src_of(&self, term: &Term) -> Result<Src> {
        match term {
            Term::Const(v) => Ok(Src::Const(ValueId::intern(v))),
            Term::Var(v) => self.regs.get(v).map(|&r| Src::Reg(r)).ok_or_else(|| {
                DatalogError::UnboundVariable(format!(
                    "${v} read before any positive atom binds it"
                ))
            }),
        }
    }

    fn compile(
        mut self,
        rule: &Rule,
        order: &[usize],
        pinned_idx: Option<usize>,
        bind_head: bool,
    ) -> Result<RulePlan> {
        let mut head_acts = Vec::new();
        if bind_head {
            for term in &rule.head.args {
                match term {
                    Term::Const(v) => head_acts.push(HeadAct::Check(ValueId::intern(v))),
                    Term::Var(v) => {
                        if let Some(&r) = self.regs.get(v) {
                            head_acts.push(HeadAct::Match(r));
                        } else {
                            let r = self.alloc(*v);
                            head_acts.push(HeadAct::Set(r));
                        }
                    }
                }
            }
        }

        let steps = self.compile_items(&rule.body, order, pinned_idx)?;

        let head = rule
            .head
            .args
            .iter()
            .map(|t| self.src_of(t))
            .collect::<Result<Vec<_>>>()
            .map_err(|_| {
                DatalogError::UnboundVariable(format!(
                    "head of {rule} not fully bound (rule unsafe?)"
                ))
            })?;

        Ok(RulePlan {
            nregs: self.regs.len(),
            steps,
            head_pred: rule.head.pred,
            head,
            head_acts,
        })
    }

    /// Compiles the body items selected by `order` into steps, allocating
    /// registers along the way. Literal/positive ordinals always follow the
    /// *source* order of `body`.
    fn compile_items(
        &mut self,
        body: &[BodyItem],
        order: &[usize],
        pinned_idx: Option<usize>,
    ) -> Result<Vec<Step>> {
        let mut lit_ordinals = vec![0usize; body.len()];
        let mut pos_ordinals = vec![0usize; body.len()];
        let (mut lit, mut pos) = (0usize, 0usize);
        for (i, item) in body.iter().enumerate() {
            if let BodyItem::Literal(l) = item {
                lit_ordinals[i] = lit;
                lit += 1;
                if !l.negated {
                    pos_ordinals[i] = pos;
                    pos += 1;
                }
            }
        }

        let mut steps = Vec::with_capacity(order.len());
        for &i in order {
            let item = &body[i];
            let pinned = pinned_idx == Some(i);
            match item {
                BodyItem::Literal(l) if !l.negated => {
                    steps.push(Step::Scan(self.compile_scan(
                        &l.atom,
                        pos_ordinals[i],
                        lit_ordinals[i],
                        pinned,
                    )));
                }
                BodyItem::Literal(l) => {
                    let args = l
                        .atom
                        .args
                        .iter()
                        .map(|t| self.src_of(t))
                        .collect::<Result<Vec<_>>>()
                        .map_err(|_| {
                            DatalogError::UnboundVariable(format!(
                                "negated atom {} reached with unbound variables",
                                l.atom
                            ))
                        })?;
                    steps.push(Step::Neg(NegStep {
                        pred: l.atom.pred,
                        lit_ordinal: lit_ordinals[i],
                        pinned,
                        args,
                    }));
                }
                BodyItem::Cmp { op, lhs, rhs } => {
                    let l = self.src_of(lhs).map_err(|_| {
                        DatalogError::UnboundVariable(format!(
                            "{lhs} in comparison reached unbound"
                        ))
                    })?;
                    let r = self.src_of(rhs).map_err(|_| {
                        DatalogError::UnboundVariable(format!(
                            "{rhs} in comparison reached unbound"
                        ))
                    })?;
                    steps.push(Step::Cmp {
                        op: *op,
                        lhs: l,
                        rhs: r,
                    });
                }
                BodyItem::Assign { var, expr } => {
                    let mut vars = Vec::new();
                    expr.variables(&mut vars);
                    let mut env = Vec::with_capacity(vars.len());
                    for v in vars {
                        let Some(&r) = self.regs.get(&v) else {
                            return Err(DatalogError::UnboundVariable(format!(
                                "${v} in arithmetic expression"
                            )));
                        };
                        env.push((v, r));
                    }
                    let check = self.regs.contains_key(var);
                    let reg = self.alloc(*var);
                    steps.push(Step::Assign {
                        reg,
                        expr: expr.clone(),
                        env,
                        check,
                    });
                }
            }
        }

        Ok(steps)
    }

    fn compile_scan(
        &mut self,
        atom: &Atom,
        pos_ordinal: usize,
        lit_ordinal: usize,
        pinned: bool,
    ) -> ScanStep {
        let mut mask: ColMask = 0;
        let mut key = Vec::new();
        let mut binds: Vec<(usize, u16)> = Vec::new();
        let mut checks = Vec::new();
        for (col, term) in atom.args.iter().enumerate() {
            match term {
                Term::Const(v) => {
                    mask |= 1u64 << col;
                    key.push(Src::Const(ValueId::intern(v)));
                }
                Term::Var(v) => match self.regs.get(v).copied() {
                    Some(r) if binds.iter().any(|&(_, b)| b == r) => {
                        // Fresh variable repeated within this atom: the
                        // earlier column binds, this one checks the row
                        // against itself.
                        checks.push((col, r));
                    }
                    Some(r) => {
                        mask |= 1u64 << col;
                        key.push(Src::Reg(r));
                    }
                    None => {
                        let r = self.alloc(*v);
                        binds.push((col, r));
                    }
                },
            }
        }
        ScanStep {
            pred: atom.pred,
            arity: atom.arity(),
            pos_ordinal,
            lit_ordinal,
            pinned,
            mask,
            key,
            binds,
            checks,
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Reusable per-evaluation buffers: the register file, one probe-key buffer
/// per step (probes are allocation-free after warm-up), and the head
/// scratch row.
#[derive(Default)]
pub(crate) struct Scratch {
    pub(crate) regs: Vec<ValueId>,
    keys: Vec<Vec<ValueId>>,
    head: Vec<ValueId>,
}

impl Scratch {
    /// An empty scratch; [`run_plan`] grows it to fit whatever plan it
    /// executes, so one instance can be reused across plans (the
    /// incremental engine runs many small plan invocations per apply).
    pub(crate) fn new() -> Scratch {
        Scratch {
            regs: Vec::new(),
            keys: Vec::new(),
            head: Vec::new(),
        }
    }

    pub(crate) fn for_plan(plan: &RulePlan) -> Scratch {
        let mut s = Scratch::new();
        s.fit(plan);
        s
    }

    /// Grows the buffers to fit `plan` (never shrinks). Callers seeding
    /// registers before [`run_plan`]/[`has_witness`] (e.g. via
    /// [`RulePlan::unify_head`]) must fit first.
    pub(crate) fn fit(&mut self, plan: &RulePlan) {
        if self.regs.len() < plan.nregs {
            self.regs
                .resize(plan.nregs, ValueId::intern(&crate::Value::Bool(false)));
        }
        if self.keys.len() < plan.steps.len() {
            self.keys.resize_with(plan.steps.len(), Vec::new);
        }
    }
}

/// What a scan reads.
pub(crate) enum ScanSrc<'a> {
    /// One database.
    One(&'a Database),
    /// The reconstructed old state: `db ∖ ins ∪ del`.
    Old {
        db: &'a Database,
        ins: &'a Database,
        del: &'a Database,
    },
}

/// Per-strategy data-source selection; everything else about execution is
/// shared.
pub(crate) trait PlanCtx {
    fn scan_src(&self, s: &ScanStep) -> ScanSrc<'_>;
    fn neg_pass(&self, n: &NegStep, row: &[ValueId]) -> bool;
}

/// Fixpoint context: every literal reads `db`, except the positive
/// occurrence `delta.1` (counting from the left), which reads `delta.0` —
/// the seminaive rewriting of [`super::match_body`].
pub(crate) struct FixCtx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) delta: Option<(&'a Database, usize)>,
}

impl PlanCtx for FixCtx<'_> {
    #[inline]
    fn scan_src(&self, s: &ScanStep) -> ScanSrc<'_> {
        match self.delta {
            Some((delta, ordinal)) if ordinal == s.pos_ordinal => ScanSrc::One(delta),
            _ => ScanSrc::One(self.db),
        }
    }

    #[inline]
    fn neg_pass(&self, n: &NegStep, row: &[ValueId]) -> bool {
        // Negation always reads the full database: stratification
        // guarantees the negated relation is complete here.
        !self.db.contains_ids(n.pred, row)
    }
}

/// Differential context, mirroring [`super::diff::match_body_at_slot`]:
/// the pinned literal reads `delta`; other literals read the new or the
/// reconstructed old state depending on `side` and their source ordinal.
pub(crate) struct DiffCtx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) ins: &'a Database,
    pub(crate) del: &'a Database,
    pub(crate) side: DiffSide,
    pub(crate) slot: usize,
    pub(crate) delta: &'a Database,
}

impl DiffCtx<'_> {
    #[inline]
    fn read_old(&self, lit_ordinal: usize) -> bool {
        match self.side {
            DiffSide::New => false,
            DiffSide::Old => true,
            DiffSide::PrefixNewSuffixOld => lit_ordinal > self.slot,
        }
    }
}

impl PlanCtx for DiffCtx<'_> {
    #[inline]
    fn scan_src(&self, s: &ScanStep) -> ScanSrc<'_> {
        if s.pinned {
            ScanSrc::One(self.delta)
        } else if self.read_old(s.lit_ordinal) {
            ScanSrc::Old {
                db: self.db,
                ins: self.ins,
                del: self.del,
            }
        } else {
            ScanSrc::One(self.db)
        }
    }

    #[inline]
    fn neg_pass(&self, n: &NegStep, row: &[ValueId]) -> bool {
        if n.pinned {
            // The caller pins negated slots to the half of the change whose
            // sign it is accounting: membership in the pinned delta *is*
            // the event.
            self.delta.contains_ids(n.pred, row)
        } else if self.read_old(n.lit_ordinal) {
            let in_old = (self.db.contains_ids(n.pred, row) && !self.ins.contains_ids(n.pred, row))
                || self.del.contains_ids(n.pred, row);
            !in_old
        } else {
            !self.db.contains_ids(n.pred, row)
        }
    }
}

/// Runs `plan` under `ctx`, calling `emit` with the head row of every
/// satisfying register assignment. `emit` may return an error to abort the
/// walk (the single-witness probes use a sentinel).
pub(crate) fn run_plan(
    plan: &RulePlan,
    ctx: &impl PlanCtx,
    scratch: &mut Scratch,
    emit: &mut dyn FnMut(&[ValueId]) -> Result<()>,
) -> Result<()> {
    scratch.fit(plan);
    step(plan, ctx, 0, scratch, emit)
}

fn step(
    plan: &RulePlan,
    ctx: &impl PlanCtx,
    i: usize,
    scratch: &mut Scratch,
    emit: &mut dyn FnMut(&[ValueId]) -> Result<()>,
) -> Result<()> {
    let Some(st) = plan.steps.get(i) else {
        let mut head = std::mem::take(&mut scratch.head);
        head.clear();
        for src in &plan.head {
            head.push(src.get(&scratch.regs));
        }
        let r = emit(&head);
        scratch.head = head;
        return r;
    };
    match st {
        Step::Scan(s) => {
            let mut key = std::mem::take(&mut scratch.keys[i]);
            key.clear();
            for src in &s.key {
                key.push(src.get(&scratch.regs));
            }
            let result = match ctx.scan_src(s) {
                ScanSrc::One(db) => scan_one(plan, ctx, i, s, db, &key, None, scratch, emit),
                ScanSrc::Old { db, ins, del } => {
                    // old = db ∖ ins ∪ del: enumerate surviving new-state
                    // rows first, then the deleted rows — the same order
                    // the interpreted differencing uses.
                    scan_one(plan, ctx, i, s, db, &key, Some(ins), scratch, emit)
                        .and_then(|()| scan_one(plan, ctx, i, s, del, &key, None, scratch, emit))
                }
            };
            scratch.keys[i] = key;
            result
        }
        Step::Neg(n) => {
            let mut key = std::mem::take(&mut scratch.keys[i]);
            key.clear();
            for src in &n.args {
                key.push(src.get(&scratch.regs));
            }
            let pass = ctx.neg_pass(n, &key);
            scratch.keys[i] = key;
            if pass {
                step(plan, ctx, i + 1, scratch, emit)
            } else {
                Ok(())
            }
        }
        Step::Cmp { op, lhs, rhs } => {
            let l = lhs.get(&scratch.regs);
            let r = rhs.get(&scratch.regs);
            let pass = match op {
                // Interned ids are equal iff the values are (across-type
                // equality is false either way): compare without resolving.
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                // Ordering needs the actual values (and keeps the
                // same-runtime-type error semantics of `CmpOp::eval`).
                _ => op.eval(&l.value(), &r.value())?,
            };
            if pass {
                step(plan, ctx, i + 1, scratch, emit)
            } else {
                Ok(())
            }
        }
        Step::Assign {
            reg,
            expr,
            env,
            check,
        } => {
            let value = {
                let regs = &scratch.regs;
                expr.eval_with(&|sym| {
                    env.iter()
                        .find(|(v, _)| *v == sym)
                        .map(|&(_, r)| regs[r as usize].value())
                })?
            };
            let id = ValueId::intern(&value);
            if *check {
                // Pre-bound to a different value: a failed filter (only
                // reachable for rules built without a safety check).
                if scratch.regs[*reg as usize] != id {
                    return Ok(());
                }
            } else {
                scratch.regs[*reg as usize] = id;
            }
            step(plan, ctx, i + 1, scratch, emit)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_one(
    plan: &RulePlan,
    ctx: &impl PlanCtx,
    i: usize,
    s: &ScanStep,
    source: &Database,
    key: &[ValueId],
    skip_if_in: Option<&Database>,
    scratch: &mut Scratch,
    emit: &mut dyn FnMut(&[ValueId]) -> Result<()>,
) -> Result<()> {
    let Some(rel) = source.relation(s.pred) else {
        return Ok(());
    };
    if rel.arity() != s.arity {
        return Err(DatalogError::ArityMismatch {
            relation: s.pred.to_string(),
            expected: rel.arity(),
            found: s.arity,
        });
    }
    let mut err: Option<DatalogError> = None;
    rel.for_each_match_ids(s.mask, key, |row| {
        if let Some(ins) = skip_if_in {
            if ins.contains_ids(s.pred, row) {
                return true;
            }
        }
        for &(col, reg) in &s.binds {
            scratch.regs[reg as usize] = row[col];
        }
        for &(col, reg) in &s.checks {
            if row[col] != scratch.regs[reg as usize] {
                return true;
            }
        }
        match step(plan, ctx, i + 1, scratch, emit) {
            Ok(()) => true,
            Err(e) => {
                err = Some(e);
                false
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Single-witness probe: does `plan` have *any* satisfying assignment under
/// the current registers (pre-seeded by the caller, e.g. via
/// [`RulePlan::unify_head`])? Mirrors the interpreted `has_any_match`.
pub(crate) fn has_witness(
    plan: &RulePlan,
    ctx: &impl PlanCtx,
    scratch: &mut Scratch,
) -> Result<bool> {
    const WITNESS: usize = usize::MAX;
    scratch.fit(plan);
    match step(plan, ctx, 0, scratch, &mut |_row| {
        Err(DatalogError::IterationLimit(WITNESS))
    }) {
        Ok(()) => Ok(false),
        Err(DatalogError::IterationLimit(WITNESS)) => Ok(true),
        Err(e) => Err(e),
    }
}

/// Compiled counterpart of [`super::seminaive::derive_into`]: runs the
/// fixpoint plan and appends every derived head row to `out` (flat,
/// `head_arity`-strided), counting derivations into `*derivations`.
pub(crate) fn derive_plan(
    db: &Database,
    delta: Option<(&Database, usize)>,
    plan: &RulePlan,
    scratch: &mut Scratch,
    out: &mut Vec<ValueId>,
    derivations: &mut usize,
) -> Result<()> {
    let ctx = FixCtx { db, delta };
    run_plan(plan, &ctx, scratch, &mut |row| {
        *derivations += 1;
        out.extend_from_slice(row);
        Ok(())
    })
}

// ---------------------------------------------------------------------
// Prefix plans: public compiled evaluation of a body-item sequence
// ---------------------------------------------------------------------

/// A compiled **prefix plan**: a body-item sequence compiled to the same
/// register-file steps as a [`RulePlan`], but instead of always firing a
/// rule head, execution *suspends* at the end of the sequence and yields
/// the full register file to the caller.
///
/// This is the engine piece the WebdamLog stage layer builds on (see
/// `wdl-core::stage`): the *local prefix* of a distributed rule compiles to
/// a `BodyPlan`, and each yielded register file either fires a head, emits
/// a delegation from the instantiated remainder, or counts a blocked read —
/// decisions that live above the datalog kernel.
///
/// A plan is **resumable from a non-empty initial binding**: variables
/// passed as `prebound` to [`BodyPlan::compile`] are treated as bound from
/// the start (they occupy the first registers), and their values are seeded
/// per run via the `seed` argument of [`BodyPlan::run`] — the compiled
/// analogue of starting [`super::evaluate_body`] from a non-empty
/// [`crate::Subst`].
#[derive(Clone, Debug)]
pub struct BodyPlan {
    plan: RulePlan,
    /// Variable → register assignment, ordered by register number (the
    /// `prebound` variables come first, then first occurrence order).
    vars: Vec<(Symbol, u16)>,
    /// Number of pre-bound registers (the seed length [`BodyPlan::run`]
    /// expects).
    prebound: usize,
}

impl BodyPlan {
    /// Compiles `body` for left-to-right evaluation. Variables listed in
    /// `prebound` are treated as already bound (callers seed their values
    /// at run time); any other variable read before a positive atom binds
    /// it is a compile error, mirroring the interpreter's runtime error.
    pub fn compile(body: &[BodyItem], prebound: &[Symbol]) -> Result<BodyPlan> {
        let mut c = Compiler::default();
        for v in prebound {
            c.alloc(*v);
        }
        let prebound_regs = c.regs.len();
        let order: Vec<usize> = (0..body.len()).collect();
        let steps = c.compile_items(body, &order, None)?;
        let nregs = c.regs.len();
        let mut vars: Vec<(Symbol, u16)> = c.regs.into_iter().collect();
        vars.sort_by_key(|&(_, r)| r);
        let head = (0..nregs).map(|r| Src::Reg(r as u16)).collect();
        Ok(BodyPlan {
            plan: RulePlan {
                nregs,
                steps,
                head_pred: Symbol::intern("<prefix>"),
                head,
                head_acts: Vec::new(),
            },
            vars,
            prebound: prebound_regs,
        })
    }

    /// The variable → register assignment, ordered by register number.
    /// Yielded register files are indexed by these registers.
    pub fn bindings(&self) -> &[(Symbol, u16)] {
        &self.vars
    }

    /// The register holding `var`, if the body (or the prebound set) binds
    /// it.
    pub fn register_of(&self, var: Symbol) -> Option<u16> {
        self.vars.iter().find(|&&(v, _)| v == var).map(|&(_, r)| r)
    }

    /// Total register count — the length of the slice passed to `emit`.
    pub fn registers(&self) -> usize {
        self.plan.nregs
    }

    /// Runs the plan against `db`, calling `emit` with the register file of
    /// every satisfying assignment (in the interpreter's left-to-right
    /// enumeration order). `seed` provides one value per `prebound`
    /// variable, in the order they were passed to [`BodyPlan::compile`];
    /// its length must match. `emit` may return an error to abort.
    pub fn run(
        &self,
        db: &Database,
        scratch: &mut BodyScratch,
        seed: &[ValueId],
        emit: &mut dyn FnMut(&[ValueId]) -> Result<()>,
    ) -> Result<()> {
        if seed.len() != self.prebound {
            return Err(DatalogError::UnboundVariable(format!(
                "prefix plan expects {} seed value(s), got {}",
                self.prebound,
                seed.len()
            )));
        }
        scratch.0.fit(&self.plan);
        scratch.0.regs[..seed.len()].copy_from_slice(seed);
        run_plan(
            &self.plan,
            &FixCtx { db, delta: None },
            &mut scratch.0,
            emit,
        )
    }
}

/// Reusable buffers for [`BodyPlan::run`]: one instance can serve many
/// plans (it grows to fit the largest).
#[derive(Default)]
pub struct BodyScratch(Scratch);

impl BodyScratch {
    /// An empty scratch.
    pub fn new() -> BodyScratch {
        BodyScratch(Scratch::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fact, Subst, Value};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    /// Compiled head rows over a saturated database must equal the
    /// interpreted matcher's grounded heads, in the same order.
    fn heads_of(rule: &Rule, db: &Database) -> (Vec<Fact>, Vec<Fact>) {
        let plan = RulePlan::compile(rule).unwrap();
        let mut compiled = Vec::new();
        let mut scratch = Scratch::for_plan(&plan);
        run_plan(
            &plan,
            &FixCtx { db, delta: None },
            &mut scratch,
            &mut |row| {
                compiled.push(Fact {
                    pred: plan.head_pred,
                    tuple: crate::intern::resolve_row(row),
                });
                Ok(())
            },
        )
        .unwrap();
        let mut interpreted = Vec::new();
        crate::eval::match_body(db, None, &rule.body, Subst::new(), &mut |s| {
            interpreted.push(rule.head.ground(&s).unwrap());
            Ok(())
        })
        .unwrap();
        (compiled, interpreted)
    }

    #[test]
    fn compiled_matches_interpreted_on_joins() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
            db.insert(Fact::new("e", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        let rule = Rule::new(
            atom("p", &["x", "z"]),
            vec![atom("e", &["x", "y"]).into(), atom("e", &["y", "z"]).into()],
        );
        let (c, i) = heads_of(&rule, &db);
        assert_eq!(c, i);
        assert!(!c.is_empty());
    }

    #[test]
    fn compiled_handles_repeated_vars_consts_negation_builtins() {
        let mut db = Database::new();
        for (a, b) in [(1, 1), (1, 2), (2, 2), (3, 5)] {
            db.insert(Fact::new("e", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        db.insert(Fact::new("blocked", vec![Value::from(2)]))
            .unwrap();
        // p(y) :- e(x, x), e(x, y), not blocked(y), y >= x, z := y + 1
        let rule = Rule::new(
            atom("p", &["z"]),
            vec![
                atom("e", &["x", "x"]).into(),
                atom("e", &["x", "y"]).into(),
                BodyItem::not_atom(atom("blocked", &["y"])),
                BodyItem::cmp(CmpOp::Ge, Term::var("y"), Term::var("x")),
                BodyItem::assign(
                    "z",
                    Expr::bin(
                        crate::BinOp::Add,
                        Expr::term(Term::var("y")),
                        Expr::term(Term::cst(1)),
                    ),
                ),
            ],
        );
        let (c, i) = heads_of(&rule, &db);
        assert_eq!(c, i);
    }

    /// A prefix plan yields exactly the substitutions the interpreted
    /// matcher produces, register-for-variable, in the same order.
    #[test]
    fn body_plan_matches_interpreted_substitutions() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
            db.insert(Fact::new("e", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        db.insert(Fact::new("stop", vec![Value::from(4)])).unwrap();
        // e(x, y), e(y, z), not stop(z), z >= x
        let body: Vec<BodyItem> = vec![
            atom("e", &["x", "y"]).into(),
            atom("e", &["y", "z"]).into(),
            BodyItem::not_atom(atom("stop", &["z"])),
            BodyItem::cmp(CmpOp::Ge, Term::var("z"), Term::var("x")),
        ];
        let plan = BodyPlan::compile(&body, &[]).unwrap();
        let mut compiled: Vec<Vec<(Symbol, Value)>> = Vec::new();
        let mut scratch = BodyScratch::new();
        plan.run(&db, &mut scratch, &[], &mut |regs| {
            compiled.push(
                plan.bindings()
                    .iter()
                    .map(|&(v, r)| (v, regs[r as usize].value()))
                    .collect(),
            );
            Ok(())
        })
        .unwrap();
        let interpreted = crate::eval::evaluate_body(&db, &body, Subst::new()).unwrap();
        assert_eq!(compiled.len(), interpreted.len());
        for (c, i) in compiled.iter().zip(&interpreted) {
            for (v, val) in c {
                assert_eq!(i.get(*v), Some(val), "${v}");
            }
        }
        assert!(!compiled.is_empty());
    }

    /// Prebound variables resume the plan from a non-empty initial binding
    /// — the compiled analogue of `evaluate_body` with a seeded `Subst`.
    #[test]
    fn body_plan_resumes_from_seeded_bindings() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (2, 9)] {
            db.insert(Fact::new("e", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        let body: Vec<BodyItem> = vec![atom("e", &["x", "y"]).into()];
        let x = Symbol::intern("x");
        let plan = BodyPlan::compile(&body, &[x]).unwrap();
        assert_eq!(plan.register_of(x), Some(0));
        let mut rows = Vec::new();
        let mut scratch = BodyScratch::new();
        let seed = [ValueId::intern(&Value::from(2))];
        plan.run(&db, &mut scratch, &seed, &mut |regs| {
            rows.push(regs.to_vec());
            Ok(())
        })
        .unwrap();
        // Only e(2, _) rows match the seeded binding.
        let y = plan.register_of(Symbol::intern("y")).unwrap() as usize;
        let ys: Vec<Value> = rows.iter().map(|r| r[y].value()).collect();
        assert_eq!(ys, vec![Value::from(3), Value::from(9)]);

        // Seed-length mismatch is a recoverable error, not a panic.
        assert!(plan.run(&db, &mut scratch, &[], &mut |_| Ok(())).is_err());

        // The interpreter agrees from the same initial binding.
        let init: Subst = [(x, Value::from(2))].into_iter().collect();
        let interp = crate::eval::evaluate_body(&db, &body, init).unwrap();
        assert_eq!(interp.len(), rows.len());
    }

    /// An empty body (the degenerate prefix of a rule whose first literal
    /// is non-local) yields the seed bindings exactly once.
    #[test]
    fn empty_body_plan_yields_once() {
        let db = Database::new();
        let plan = BodyPlan::compile(&[], &[]).unwrap();
        let mut count = 0usize;
        let mut scratch = BodyScratch::new();
        plan.run(&db, &mut scratch, &[], &mut |regs| {
            assert!(regs.is_empty());
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn rederive_plan_finds_witnesses() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3)] {
            db.insert(Fact::new("e", vec![Value::from(a), Value::from(b)]))
                .unwrap();
        }
        let rule = Rule::new(atom("p", &["x", "y"]), vec![atom("e", &["x", "y"]).into()]);
        let plan = RulePlan::compile_rederive(&rule).unwrap();
        let mut scratch = Scratch::for_plan(&plan);
        let present = Fact::new("p", vec![Value::from(1), Value::from(2)]);
        let absent = Fact::new("p", vec![Value::from(1), Value::from(3)]);
        for (fact, expect) in [(&present, true), (&absent, false)] {
            let mut ids = Vec::new();
            crate::intern::intern_row(&fact.tuple, &mut ids);
            assert!(plan.unify_head(&ids, &mut scratch.regs));
            let got = has_witness(
                &plan,
                &FixCtx {
                    db: &db,
                    delta: None,
                },
                &mut scratch,
            )
            .unwrap();
            assert_eq!(got, expect, "{fact}");
        }
    }
}
