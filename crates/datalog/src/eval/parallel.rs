//! Sharded parallel seminaive evaluation.
//!
//! This module parallelizes the delta-driven fixpoint of
//! [`super::seminaive`] across worker threads while computing exactly the
//! same result. The scheme:
//!
//! * **Hash partitioning.** At every round the facts that drive derivation
//!   — the previous round's delta (or, in round 0, the relation read by
//!   each rule's first positive atom) — are hash-partitioned into one
//!   shard per worker. Because seminaive rewriting matches the delta at
//!   exactly *one* positive occurrence per task, each candidate derivation
//!   consumes exactly one delta fact at that occurrence, and that fact
//!   lives in exactly one shard: the union of the workers' outputs is
//!   precisely the serial round's output, with no duplicated and no lost
//!   derivations. Each worker builds its own shard from the shared delta
//!   (scanning concurrently, copying only its 1/n share of interned id
//!   rows), so partitioning itself costs no serial time.
//! * **Persistent workers, shared read-only probes.** Worker threads are
//!   spawned once per fixpoint (crossbeam scoped threads) and driven round
//!   by round over channels. During a round they join their shard against
//!   the full accumulated [`Database`] through a shared read lock — the
//!   storage layer's lazily built indexes live behind an `RwLock`, so
//!   concurrent probes (and first-probe index builds) are safe without
//!   copying data.
//! * **Single-writer merge.** Workers never mutate the database. Each
//!   sends its candidate head rows over a channel; once every worker has
//!   reported (the round barrier), the coordinating thread merges batches
//!   in **worker-index order**, deduplicates against the database, seeds
//!   the next delta, and updates the statistics. The merged *set* is
//!   independent of scheduling, and the fixed merge order makes tuple
//!   insertion order reproducible run to run for a given worker count.
//!
//! **Determinism argument.** Rounds are barriers: round *t+1* starts only
//! after every worker of round *t* finished and its output was merged.
//! Within a round workers share nothing mutable (the database is read-only
//! until the merge; the value interner is append-only and ids never change
//! meaning), so the only schedule-dependent artifact is message arrival
//! order on the channel — which the merge erases by ordering batches by
//! worker index. Consequently `workers = n` computes the same relation
//! sets and the same [`EvalStats`] counters as `workers = 1` for every `n`
//! (property-tested in `tests/parallel_properties.rs`), and `workers = 1`
//! short-circuits to the serial code path, bit for bit.

use crate::eval::seminaive::derive_into;
use crate::eval::{derive_plan, PlannedRule, Scratch};
use crate::intern::ValueId;
use crate::program::EvalStats;
use crate::storage::hash_ids;
use crate::{Database, DatalogError, Fact, Result, Symbol};
use crossbeam::channel;
use crossbeam::thread as cb_thread;
use std::sync::{Arc, RwLock};

/// Evaluation tuning knobs, threaded from [`crate::Program`] down to the
/// fixpoint strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    /// Number of worker threads for the seminaive fixpoint. `1` (the
    /// default) evaluates serially on the calling thread; `n > 1` shards
    /// every round across `n` scoped threads. Results are identical for
    /// every value — pick roughly the number of physical cores dedicated
    /// to evaluation, and stay at `1` for small databases where the
    /// per-round thread setup outweighs the join work.
    pub workers: usize,
    /// Whether rules run as compiled register-file plans over interned ids
    /// (`true`, the default) or through the symbol-keyed substitution
    /// interpreter (`false`). Both compute identical relation sets and
    /// [`crate::EvalStats`]; the interpreter is retained as the semantic
    /// reference (property-tested against the compiled path) and as the
    /// baseline the `e12_interned` bench measures against.
    pub compiled: bool,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            workers: 1,
            compiled: true,
        }
    }
}

impl EvalConfig {
    /// A config running `workers` threads (clamped to at least 1).
    pub fn with_workers(workers: usize) -> EvalConfig {
        EvalConfig {
            workers: workers.max(1),
            ..EvalConfig::default()
        }
    }

    /// Selects compiled-plan (default) or interpreted evaluation.
    pub fn with_compiled(mut self, compiled: bool) -> EvalConfig {
        self.compiled = compiled;
        self
    }
}

/// One unit of worker-side derivation: rule `rule_idx`, reading the shard
/// at positive-literal occurrence `ordinal` (which names `pred`).
#[derive(Clone, Copy)]
struct Task {
    rule_idx: usize,
    ordinal: usize,
    pred: Symbol,
}

/// One round's worth of work, broadcast to every worker. `Seed` is round 0
/// (shard each task's relation out of the accumulated database itself);
/// `Delta` is every later round (shard the current delta).
#[derive(Clone)]
enum RoundMsg {
    Seed {
        tasks: Arc<Vec<Task>>,
        whole_rules: Arc<Vec<usize>>,
    },
    Delta {
        tasks: Arc<Vec<Task>>,
    },
}

/// One rule's derived head rows from one worker (flat id buffer; the
/// explicit row count keeps nullary heads working).
struct RuleOut {
    rule_idx: usize,
    rows: usize,
    flat: Vec<ValueId>,
}

/// What one worker reports for one round: per-rule outputs in task order
/// (compiled) or facts (interpreted), plus its derivation count.
enum BatchBody {
    Rows(Vec<RuleOut>),
    Facts(Vec<Fact>),
}

type WorkerBatch = (BatchBody, usize);

/// Runs the seminaive fixpoint for one stratum's rules over `db` in place,
/// sharding each round across `workers` threads. Computes the same final
/// database and the same [`EvalStats`] as the serial strategies.
///
/// Workers are spawned once and live for the whole fixpoint; rounds are
/// driven by broadcasting a [`RoundMsg`] to each worker and collecting one
/// response per worker (the barrier). Shard *construction* also happens
/// worker-side — each worker scans the shared delta and keeps its own hash
/// share — so the only serial section per round is the merge.
pub(crate) fn seminaive_fixpoint_sharded(
    db: &mut Database,
    rules: &[PlannedRule<'_>],
    stratum_idb: &[Symbol],
    stats: &mut EvalStats,
    iteration_limit: usize,
    workers: usize,
    compiled: bool,
) -> Result<()> {
    if workers <= 1 {
        if compiled {
            return super::seminaive_fixpoint_compiled(
                db,
                rules,
                stratum_idb,
                stats,
                iteration_limit,
            );
        }
        let plain: Vec<&crate::Rule> = rules.iter().map(|pr| pr.rule).collect();
        return super::seminaive_fixpoint(db, &plain, stratum_idb, stats, iteration_limit);
    }

    // ---- Round 0 tasks: each rule's first positive atom plays the delta
    // role; rules without one run whole on worker 0.
    let mut seed_tasks: Vec<Task> = Vec::new();
    let mut whole_rules: Vec<usize> = Vec::new();
    for (ri, pr) in rules.iter().enumerate() {
        match pr.rule.body.iter().find_map(|item| item.as_positive_atom()) {
            Some(atom) => {
                // An empty/missing first relation derives nothing; skip.
                if db.relation(atom.pred).is_some_and(|r| !r.is_empty()) {
                    seed_tasks.push(Task {
                        rule_idx: ri,
                        ordinal: 0,
                        pred: atom.pred,
                    });
                }
            }
            None => whole_rules.push(ri),
        }
    }

    // Workers read `(db, delta)` during a round; the coordinator mutates
    // them between rounds. The channel barrier sequences the two phases;
    // the lock carries that guarantee into the type system.
    let state: RwLock<(Database, Database)> = RwLock::new((std::mem::take(db), Database::new()));

    let result = cb_thread::scope(|scope| -> Result<()> {
        let (res_tx, res_rx) = channel::unbounded::<(usize, Result<WorkerBatch>)>();
        let mut round_txs = Vec::with_capacity(workers);
        for me in 0..workers {
            let (tx, rx) = channel::unbounded::<RoundMsg>();
            round_txs.push(tx);
            let res_tx = res_tx.clone();
            let state = &state;
            scope.spawn(move || worker_loop(me, workers, rules, compiled, state, &rx, &res_tx));
        }
        drop(res_tx);

        // ---- Round 0: full evaluation seeds the delta.
        stats.iterations += 1;
        let msg = RoundMsg::Seed {
            tasks: Arc::new(seed_tasks),
            whole_rules: Arc::new(whole_rules),
        };
        for tx in &round_txs {
            let _ = tx.send(msg.clone());
        }
        let batches = collect(&res_rx, workers)?;
        {
            let mut guard = state.write().unwrap_or_else(|e| e.into_inner());
            let (db, delta) = &mut *guard;
            merge(db, rules, batches, delta, stats)?;
        }

        // ---- Subsequent rounds: join through the delta only.
        loop {
            let tasks = {
                let guard = state.read().unwrap_or_else(|e| e.into_inner());
                let (_, delta) = &*guard;
                if delta.fact_count() == 0 {
                    break;
                }
                let mut tasks: Vec<Task> = Vec::new();
                for (ri, pr) in rules.iter().enumerate() {
                    let mut ordinal = 0usize;
                    for item in &pr.rule.body {
                        let Some(atom) = item.as_positive_atom() else {
                            continue;
                        };
                        if stratum_idb.contains(&atom.pred) && delta.relation(atom.pred).is_some() {
                            tasks.push(Task {
                                rule_idx: ri,
                                ordinal,
                                pred: atom.pred,
                            });
                        }
                        ordinal += 1;
                    }
                }
                tasks
            };
            stats.iterations += 1;
            if stats.iterations > iteration_limit {
                return Err(DatalogError::IterationLimit(iteration_limit));
            }
            let msg = RoundMsg::Delta {
                tasks: Arc::new(tasks),
            };
            for tx in &round_txs {
                let _ = tx.send(msg.clone());
            }
            let batches = collect(&res_rx, workers)?;
            let mut guard = state.write().unwrap_or_else(|e| e.into_inner());
            let (db, delta) = &mut *guard;
            let mut next_delta = Database::new();
            merge(db, rules, batches, &mut next_delta, stats)?;
            *delta = next_delta;
        }
        Ok(())
        // Dropping `round_txs` here disconnects every worker's receive
        // loop (on the error paths too); the scope then joins them.
    });

    let (owned, _) = state.into_inner().unwrap_or_else(|e| e.into_inner());
    *db = owned;
    result
}

/// Unblocks the coordinator if a worker dies mid-round: should the round
/// body panic (poisoned-lock `expect`s, debug assertions), unwinding drops
/// this guard, which reports [`DatalogError::WorkerFailed`] in the
/// worker's stead — so `collect` still receives one message per worker,
/// the coordinator bails out, and the scope can join (re-raising the
/// panic) instead of deadlocking on a report that will never come.
struct PanicReport<'a> {
    me: usize,
    res_tx: &'a channel::Sender<(usize, Result<WorkerBatch>)>,
    armed: bool,
}

impl Drop for PanicReport<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.res_tx.send((self.me, Err(DatalogError::WorkerFailed)));
        }
    }
}

/// A worker's lifetime: receive a round, read-lock the shared state, build
/// the local shard, derive, release the lock, report. Exits when the
/// coordinator hangs up.
fn worker_loop(
    me: usize,
    n: usize,
    rules: &[PlannedRule<'_>],
    compiled: bool,
    state: &RwLock<(Database, Database)>,
    rx: &channel::Receiver<RoundMsg>,
    res_tx: &channel::Sender<(usize, Result<WorkerBatch>)>,
) {
    let mut scratches: Vec<Scratch> = rules.iter().map(|pr| Scratch::for_plan(pr.plan)).collect();
    while let Ok(msg) = rx.recv() {
        let mut panic_report = PanicReport {
            me,
            res_tx,
            armed: true,
        };
        let result = {
            let guard = state.read().unwrap_or_else(|e| e.into_inner());
            let (db, delta) = &*guard;
            match &msg {
                RoundMsg::Seed { tasks, whole_rules } => run_tasks(
                    me,
                    n,
                    rules,
                    compiled,
                    &mut scratches,
                    db,
                    db,
                    tasks,
                    whole_rules,
                ),
                RoundMsg::Delta { tasks } => run_tasks(
                    me,
                    n,
                    rules,
                    compiled,
                    &mut scratches,
                    db,
                    delta,
                    tasks,
                    &[],
                ),
            }
            // Guard drops before the send, so the coordinator's write lock
            // never contends with a worker that already reported.
        };
        panic_report.armed = false;
        if res_tx.send((me, result)).is_err() {
            return;
        }
    }
}

/// Executes one round on one worker: shard `source` (the delta, or the
/// database itself in round 0), then derive through the shard at each
/// task's occurrence. Worker 0 additionally evaluates `whole_rules` with
/// no delta rewriting.
#[allow(clippy::too_many_arguments)]
fn run_tasks(
    me: usize,
    n: usize,
    rules: &[PlannedRule<'_>],
    compiled: bool,
    scratches: &mut [Scratch],
    db: &Database,
    source: &Database,
    tasks: &[Task],
    whole_rules: &[usize],
) -> Result<WorkerBatch> {
    let shard = build_shard(source, tasks, me, n);
    let mut derivations = 0usize;
    if compiled {
        let mut outs: Vec<RuleOut> = Vec::new();
        let mut derive = |ri: usize,
                          delta: Option<(&Database, usize)>,
                          scratches: &mut [Scratch],
                          outs: &mut Vec<RuleOut>|
         -> Result<()> {
            let mut out = RuleOut {
                rule_idx: ri,
                rows: 0,
                flat: Vec::new(),
            };
            derive_plan(
                db,
                delta,
                rules[ri].plan,
                &mut scratches[ri],
                &mut out.flat,
                &mut out.rows,
            )?;
            derivations += out.rows;
            outs.push(out);
            Ok(())
        };
        for task in tasks {
            if shard.relation(task.pred).is_none_or(|r| r.is_empty()) {
                continue;
            }
            derive(
                task.rule_idx,
                Some((&shard, task.ordinal)),
                scratches,
                &mut outs,
            )?;
        }
        if me == 0 {
            for &ri in whole_rules {
                derive(ri, None, scratches, &mut outs)?;
            }
        }
        Ok((BatchBody::Rows(outs), derivations))
    } else {
        let mut local = EvalStats::default();
        let mut out: Vec<Fact> = Vec::new();
        for task in tasks {
            if shard.relation(task.pred).is_none_or(|r| r.is_empty()) {
                continue;
            }
            derive_into(
                db,
                Some((&shard, task.ordinal)),
                rules[task.rule_idx].rule,
                &mut out,
                &mut local,
            )?;
        }
        if me == 0 {
            for &ri in whole_rules {
                derive_into(db, None, rules[ri].rule, &mut out, &mut local)?;
            }
        }
        Ok((BatchBody::Facts(out), local.derivations))
    }
}

/// Builds worker `me`'s shard: every row of the task predicates whose hash
/// lands on `me`. Each worker scans the shared source (n scans run
/// concurrently) but copies only its own 1/n share of id rows, and the
/// shard skips membership bookkeeping — the rows are distinct by
/// construction.
fn build_shard(source: &Database, tasks: &[Task], me: usize, n: usize) -> Database {
    let mut shard = Database::new();
    let mut done: Vec<Symbol> = Vec::new();
    for task in tasks {
        if done.contains(&task.pred) {
            continue;
        }
        done.push(task.pred);
        let Some(rel) = source.relation(task.pred) else {
            continue;
        };
        for row in rel.iter_ids() {
            if shard_of(task.pred, row, n) == me {
                shard.push_distinct_ids(task.pred, rel.arity(), row);
            }
        }
    }
    shard
}

/// The shard a row belongs to: `hash(pred, ids) % n`. Every row lands in
/// exactly one shard, so the shards partition the derivation work; ids are
/// stable for the process lifetime, so all workers agree.
fn shard_of(pred: Symbol, row: &[ValueId], n: usize) -> usize {
    let h = hash_ids(row) ^ (u64::from(pred.id()).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (h % n as u64) as usize
}

/// Receives exactly one batch per worker, ordered by worker index; returns
/// the first worker error (in worker order) if any round task failed.
fn collect(
    rx: &channel::Receiver<(usize, Result<WorkerBatch>)>,
    workers: usize,
) -> Result<Vec<WorkerBatch>> {
    let mut slots: Vec<Option<Result<WorkerBatch>>> = (0..workers).map(|_| None).collect();
    for _ in 0..workers {
        let (w, r) = rx.recv().expect("worker vanished mid-round");
        slots[w] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every worker reports exactly once"))
        .collect()
}

/// The single-writer merge: folds worker batches (in worker order) into
/// `db`, seeding `next_delta` with the genuinely new facts.
fn merge(
    db: &mut Database,
    rules: &[PlannedRule<'_>],
    batches: Vec<WorkerBatch>,
    next_delta: &mut Database,
    stats: &mut EvalStats,
) -> Result<()> {
    for (body, derivations) in batches {
        stats.derivations += derivations;
        match body {
            BatchBody::Rows(outs) => {
                for out in outs {
                    let pred = rules[out.rule_idx].plan.head_pred;
                    let arity = rules[out.rule_idx].plan.head_arity();
                    for r in 0..out.rows {
                        let row = &out.flat[r * arity..(r + 1) * arity];
                        if !db.contains_ids(pred, row) {
                            if next_delta.insert_ids(pred, arity, row)? {
                                stats.facts_derived += 1;
                            }
                            db.insert_ids(pred, arity, row)?;
                        }
                    }
                }
            }
            BatchBody::Facts(facts) => {
                for fact in facts {
                    if !db.contains(&fact) {
                        if next_delta.insert(fact.clone())? {
                            stats.facts_derived += 1;
                        }
                        db.insert(fact)?;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::RulePlan;
    use crate::{Atom, BodyItem, CmpOp, Rule, Term, Value};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    fn tc_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ]
    }

    fn plans_of(rules: &[Rule]) -> Vec<RulePlan> {
        rules
            .iter()
            .map(|r| RulePlan::compile(r).unwrap())
            .collect()
    }

    fn planned<'a>(rules: &'a [Rule], plans: &'a [RulePlan]) -> Vec<PlannedRule<'a>> {
        rules
            .iter()
            .zip(plans)
            .map(|(rule, plan)| PlannedRule { rule, plan })
            .collect()
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert(Fact::new("edge", vec![Value::from(i), Value::from(i + 1)]))
                .unwrap();
        }
        db
    }

    #[test]
    fn sharded_matches_serial_on_transitive_closure() {
        let rules = tc_rules();
        let plans = plans_of(&rules);
        let pr = planned(&rules, &plans);
        let idb = [Symbol::intern("path")];

        let refs: Vec<&Rule> = rules.iter().collect();
        let mut serial_db = chain_db(24);
        let mut serial_stats = EvalStats::default();
        crate::eval::seminaive_fixpoint(&mut serial_db, &refs, &idb, &mut serial_stats, 10_000)
            .unwrap();

        for compiled in [false, true] {
            for workers in [2, 3, 4] {
                let mut par_db = chain_db(24);
                let mut par_stats = EvalStats::default();
                seminaive_fixpoint_sharded(
                    &mut par_db,
                    &pr,
                    &idb,
                    &mut par_stats,
                    10_000,
                    workers,
                    compiled,
                )
                .unwrap();
                assert_eq!(
                    par_db.relation("path").unwrap(),
                    serial_db.relation("path").unwrap(),
                    "workers={workers} compiled={compiled}"
                );
                assert_eq!(
                    par_stats, serial_stats,
                    "stats drift at workers={workers} compiled={compiled}"
                );
            }
        }
    }

    #[test]
    fn workers_one_uses_serial_path() {
        let rules = tc_rules();
        let plans = plans_of(&rules);
        let pr = planned(&rules, &plans);
        let refs: Vec<&Rule> = rules.iter().collect();
        let idb = [Symbol::intern("path")];
        let mut a = chain_db(8);
        let mut b = chain_db(8);
        let (mut sa, mut sb) = (EvalStats::default(), EvalStats::default());
        crate::eval::seminaive_fixpoint(&mut a, &refs, &idb, &mut sa, 100).unwrap();
        seminaive_fixpoint_sharded(&mut b, &pr, &idb, &mut sb, 100, 1, true).unwrap();
        assert_eq!(a.relation("path").unwrap(), b.relation("path").unwrap());
        assert_eq!(sa, sb);
    }

    #[test]
    fn rules_without_positive_atoms_still_fire() {
        // out(1) :- 1 < 2 — no positive body atom; runs whole on worker 0.
        let rules = [Rule::new(
            Atom::new("out", vec![Term::cst(1)]),
            vec![BodyItem::cmp(CmpOp::Lt, Term::cst(1), Term::cst(2))],
        )];
        let plans = plans_of(&rules);
        let pr = planned(&rules, &plans);
        let mut db = Database::new();
        let mut stats = EvalStats::default();
        seminaive_fixpoint_sharded(
            &mut db,
            &pr,
            &[Symbol::intern("out")],
            &mut stats,
            100,
            3,
            true,
        )
        .unwrap();
        assert_eq!(db.relation("out").unwrap().len(), 1);
    }

    #[test]
    fn iteration_limit_respected_in_parallel() {
        // n(y) :- n(x), y = x + 1 — diverges; the valve must trip.
        let rules = [Rule::new(
            Atom::new("n", vec![Term::var("y")]),
            vec![
                atom("n", &["x"]).into(),
                BodyItem::assign(
                    "y",
                    crate::Expr::bin(
                        crate::BinOp::Add,
                        crate::Expr::term(Term::var("x")),
                        crate::Expr::term(Term::cst(1)),
                    ),
                ),
            ],
        )];
        let plans = plans_of(&rules);
        let pr = planned(&rules, &plans);
        let mut db = Database::new();
        db.insert(Fact::new("n", vec![Value::from(0)])).unwrap();
        let mut stats = EvalStats::default();
        let res = seminaive_fixpoint_sharded(
            &mut db,
            &pr,
            &[Symbol::intern("n")],
            &mut stats,
            10,
            2,
            true,
        );
        assert!(matches!(res, Err(DatalogError::IterationLimit(10))));
    }

    #[test]
    fn sharding_partitions_without_loss() {
        let db = chain_db(50);
        let tasks = [Task {
            rule_idx: 0,
            ordinal: 0,
            pred: Symbol::intern("edge"),
        }];
        let shards: Vec<Database> = (0..4).map(|w| build_shard(&db, &tasks, w, 4)).collect();
        let total: usize = shards
            .iter()
            .map(|s| s.relation("edge").map_or(0, |r| r.len()))
            .sum();
        assert_eq!(total, 50, "every tuple lands in exactly one shard");
        // Same row -> same shard: re-sharding is stable, and shards are
        // disjoint (each row's shard_of names exactly one worker).
        for (w, shard) in shards.iter().enumerate() {
            let Some(rel) = shard.relation("edge") else {
                continue;
            };
            for row in rel.iter_ids() {
                assert_eq!(shard_of(Symbol::intern("edge"), row, 4), w);
            }
        }
    }
}
