//! Differential body matching for incremental maintenance.
//!
//! The incremental engine (`crate::incremental`) needs to know how the set
//! of derivations of a rule changes when the database changes. The classic
//! finite-differencing identity for a join `L1 ⋈ ... ⋈ Ln` is
//!
//! ```text
//! Δ(L1 ⋈ ... ⋈ Ln) = Σ_j  new(L1..L_{j-1}) ⋈ Δ(L_j) ⋈ old(L_{j+1}..Ln)
//! ```
//!
//! — one pass per body literal `j`, reading the *new* state left of the
//! delta slot and the *old* state right of it. The prefix-new/suffix-old
//! split is what makes the sum exact: a derivation that touches several
//! changed facts is counted exactly once, at the leftmost changed slot
//! (pinning slot `j` forces earlier slots to the new state, where a
//! removed fact is gone and an added fact is present).
//!
//! [`match_body_at_slot`] implements one summand. The non-delta-slot view
//! is selected by [`DiffSide`]:
//!
//! * [`DiffSide::PrefixNewSuffixOld`] — the exact differencing above, used
//!   by counting maintenance;
//! * [`DiffSide::Old`] / [`DiffSide::New`] — every non-delta slot reads one
//!   state, used by DRed's overdelete (old) and insert (new) phases, where
//!   set semantics make over-counting harmless.
//!
//! Negated literals participate as slots too: a tuple *inserted* into a
//! negated predicate destroys derivations and a *deleted* one enables
//! them, so the caller pins the slot to the relevant signed half of the
//! change and assigns the sign itself.
//!
//! **Delta-first evaluation.** When the pinned literal is positive it is
//! matched *first*, against the (small) delta, and the rest of the body is
//! then walked left to right under those bindings. Which state a slot
//! reads is decided by its original position, so this reordering changes
//! cost — O(|delta| · join) instead of O(|db| · join) — but not the
//! result: joins are commutative in the multiset of satisfying bindings,
//! comparisons and assignments only ever see *more* bound variables, and
//! safety-checked rules keep every negated atom ground. A pinned negated
//! literal cannot be hoisted (it needs its prefix bindings to become
//! ground) and is evaluated in place.

use crate::eval::match_atom;
use crate::{BodyItem, Database, DatalogError, Fact, Result, Subst, Term};

/// Which state non-delta slots observe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DiffSide {
    /// Every non-delta slot reads the new (current) database.
    New,
    /// Every non-delta slot reads the reconstructed old database.
    Old,
    /// Slots left of the delta read new, slots right of it read old.
    PrefixNewSuffixOld,
}

/// The net changes that separate the old state from the current database:
/// `old = db ∖ ins ∪ del`. The two deltas are disjoint.
pub(crate) struct NetChange<'a> {
    /// Facts present in `db` but absent from the old state.
    pub ins: &'a Database,
    /// Facts absent from `db` but present in the old state.
    pub del: &'a Database,
}

impl NetChange<'_> {
    fn old_contains(&self, db: &Database, fact: &Fact) -> bool {
        (db.contains(fact) && !self.ins.contains(fact)) || self.del.contains(fact)
    }
}

/// Matches `body` with the literal at `slot` pinned to `delta`, invoking
/// `emit` once per satisfying substitution.
///
/// * `slot` indexes **literal** body items (comparisons and assignments do
///   not count); the pinned literal may be positive or negated.
/// * A pinned positive literal enumerates matching `delta` tuples; a
///   pinned negated literal requires its (ground, by safety) tuple to be a
///   member of `delta`.
/// * `change` supplies the old-state reconstruction; it may be empty when
///   `side` is [`DiffSide::New`].
pub(crate) fn match_body_at_slot(
    db: &Database,
    change: &NetChange<'_>,
    side: DiffSide,
    body: &[BodyItem],
    slot: usize,
    delta: &Database,
    emit: &mut dyn FnMut(Subst) -> Result<()>,
) -> Result<()> {
    // Find the pinned literal; hoist it when positive.
    let pinned = body
        .iter()
        .filter_map(|item| match item {
            BodyItem::Literal(l) => Some(l),
            _ => None,
        })
        .nth(slot);
    let hoist = matches!(pinned, Some(l) if !l.negated);
    if hoist {
        let atom = &pinned.expect("pinned literal exists").atom;
        for s in match_atom(delta, atom, &Subst::new())? {
            walk(db, change, side, body, 0, 0, slot, delta, true, s, emit)?;
        }
        Ok(())
    } else {
        walk(
            db,
            change,
            side,
            body,
            0,
            0,
            slot,
            delta,
            false,
            Subst::new(),
            emit,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    db: &Database,
    change: &NetChange<'_>,
    side: DiffSide,
    body: &[BodyItem],
    idx: usize,
    lit_ordinal: usize,
    slot: usize,
    delta: &Database,
    hoisted: bool,
    subst: Subst,
    emit: &mut dyn FnMut(Subst) -> Result<()>,
) -> Result<()> {
    let Some(item) = body.get(idx) else {
        return emit(subst);
    };
    match item {
        BodyItem::Cmp { op, lhs, rhs } => {
            let l = resolve(lhs, &subst)?;
            let r = resolve(rhs, &subst)?;
            if op.eval(&l, &r)? {
                walk(
                    db,
                    change,
                    side,
                    body,
                    idx + 1,
                    lit_ordinal,
                    slot,
                    delta,
                    hoisted,
                    subst,
                    emit,
                )?;
            }
            Ok(())
        }
        BodyItem::Assign { var, expr } => {
            let value = expr.eval(&subst)?;
            let mut s = subst;
            if !s.unify_var(*var, &value) {
                return Ok(());
            }
            walk(
                db,
                change,
                side,
                body,
                idx + 1,
                lit_ordinal,
                slot,
                delta,
                hoisted,
                s,
                emit,
            )
        }
        BodyItem::Literal(l) => {
            let is_delta_slot = lit_ordinal == slot;
            if is_delta_slot && hoisted {
                // Already matched up front; bindings are in `subst`.
                return walk(
                    db,
                    change,
                    side,
                    body,
                    idx + 1,
                    lit_ordinal + 1,
                    slot,
                    delta,
                    hoisted,
                    subst,
                    emit,
                );
            }
            // Which state does a non-delta literal read here?
            let read_old = match side {
                DiffSide::New => false,
                DiffSide::Old => true,
                DiffSide::PrefixNewSuffixOld => lit_ordinal > slot,
            };
            if !l.negated {
                let matches = if is_delta_slot {
                    match_atom(delta, &l.atom, &subst)?
                } else if read_old {
                    // old = db ∖ ins ∪ del, filtered/extended per tuple.
                    let mut out = Vec::new();
                    for s in match_atom(db, &l.atom, &subst)? {
                        if !member_of(change.ins, &l.atom, &s) {
                            out.push(s);
                        }
                    }
                    out.extend(match_atom(change.del, &l.atom, &subst)?);
                    out
                } else {
                    match_atom(db, &l.atom, &subst)?
                };
                for s in matches {
                    walk(
                        db,
                        change,
                        side,
                        body,
                        idx + 1,
                        lit_ordinal + 1,
                        slot,
                        delta,
                        hoisted,
                        s,
                        emit,
                    )?;
                }
                Ok(())
            } else {
                let fact = l.atom.ground(&subst).ok_or_else(|| {
                    DatalogError::UnboundVariable(format!(
                        "negated atom {} reached with unbound variables",
                        l.atom
                    ))
                })?;
                let pass = if is_delta_slot {
                    // The caller pins negated slots to the half of the
                    // change whose sign it is accounting: membership in the
                    // pinned delta *is* the event.
                    delta.contains(&fact)
                } else if read_old {
                    !change.old_contains(db, &fact)
                } else {
                    !db.contains(&fact)
                };
                if pass {
                    walk(
                        db,
                        change,
                        side,
                        body,
                        idx + 1,
                        lit_ordinal + 1,
                        slot,
                        delta,
                        hoisted,
                        subst,
                        emit,
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// True when the atom instantiated under `subst` denotes a tuple present in
/// `db`. Used to filter new-state matches down to the old state.
fn member_of(db: &Database, atom: &crate::Atom, subst: &Subst) -> bool {
    match atom.ground(subst) {
        Some(fact) => db.contains(&fact),
        None => false,
    }
}

fn resolve(term: &Term, subst: &Subst) -> Result<crate::Value> {
    term.resolve(subst).ok_or_else(|| {
        DatalogError::UnboundVariable(format!("{term} in comparison reached unbound"))
    })
}
