//! Seminaive bottom-up fixpoint: each round only joins through the facts
//! derived in the previous round (the delta), so quiescent parts of the
//! database are not re-scanned. This is the default strategy, mirroring the
//! delta-driven evaluation of the Bud runtime the paper builds on.

use crate::eval::{derive_plan, match_body, PlannedRule};
use crate::intern::ValueId;
use crate::program::EvalStats;
use crate::{Database, DatalogError, Fact, Result, Rule, Subst, Symbol};

/// Runs the seminaive fixpoint for one stratum's rules over `db` in place.
///
/// `stratum_idb` is the set of predicates whose content can still grow in
/// this stratum; only occurrences of those predicates participate in delta
/// rewriting (everything else is frozen input from lower strata or the EDB).
pub(crate) fn seminaive_fixpoint(
    db: &mut Database,
    rules: &[&Rule],
    stratum_idb: &[Symbol],
    stats: &mut EvalStats,
    iteration_limit: usize,
) -> Result<()> {
    // Round 0: full evaluation seeds the delta.
    stats.iterations += 1;
    let mut delta_facts: Vec<Fact> = Vec::new();
    for rule in rules {
        derive_into(db, None, rule, &mut delta_facts, stats)?;
    }
    let mut delta = Database::new();
    for fact in delta_facts.drain(..) {
        if !db.contains(&fact) {
            if delta.insert(fact.clone())? {
                stats.facts_derived += 1;
            }
            db.insert(fact)?;
        }
    }

    // Subsequent rounds: join through the delta only. The two delta
    // databases are pooled — each round clears and refills the spare one
    // instead of allocating a fresh `Database` (arena capacity is reused,
    // which matters in deep recursions with many small rounds).
    let mut spare = Database::new();
    while delta.fact_count() > 0 {
        stats.iterations += 1;
        if stats.iterations > iteration_limit {
            return Err(DatalogError::IterationLimit(iteration_limit));
        }
        let mut candidates: Vec<Fact> = Vec::new();
        for rule in rules {
            // One delta-rewriting per positive occurrence of a same-stratum
            // IDB predicate: that occurrence reads the delta, the rest read
            // the accumulated database. Pooled deltas keep emptied
            // relations around, so the guard checks content, not presence.
            let mut ordinal = 0usize;
            for item in &rule.body {
                let Some(atom) = item.as_positive_atom() else {
                    continue;
                };
                if stratum_idb.contains(&atom.pred)
                    && delta.relation(atom.pred).is_some_and(|r| !r.is_empty())
                {
                    derive_into(db, Some((&delta, ordinal)), rule, &mut candidates, stats)?;
                }
                ordinal += 1;
            }
        }
        spare.clear_all();
        for fact in candidates {
            if !db.contains(&fact) {
                if spare.insert(fact.clone())? {
                    stats.facts_derived += 1;
                }
                db.insert(fact)?;
            }
        }
        std::mem::swap(&mut delta, &mut spare);
    }
    Ok(())
}

/// A per-rule flat buffer of derived head rows (`head_arity`-strided ids;
/// the explicit row count keeps nullary heads working). Candidates are
/// buffered because derivation scans the database that the merge then
/// mutates.
#[derive(Default)]
pub(crate) struct HeadBuf {
    pub(crate) rows: usize,
    pub(crate) flat: Vec<ValueId>,
}

/// Compiled seminaive fixpoint: identical round/merge structure (and
/// [`EvalStats`]) to [`seminaive_fixpoint`], but each rule runs its
/// register-file [`crate::eval::RulePlan`] and candidates stay in the
/// interned id plane end to end — the only `Value` traffic is inside
/// builtins.
pub(crate) fn seminaive_fixpoint_compiled(
    db: &mut Database,
    rules: &[PlannedRule<'_>],
    stratum_idb: &[Symbol],
    stats: &mut EvalStats,
    iteration_limit: usize,
) -> Result<()> {
    seminaive_fixpoint_compiled_profiled(db, rules, stratum_idb, stats, iteration_limit, None)
}

/// [`seminaive_fixpoint_compiled`] with optional per-rule cost capture:
/// each `derive_plan` invocation is timed and recorded against the
/// rule's head predicate, with the delta relation's size as `delta_in`
/// (0 on the full round-0 pass). `None` takes exactly the unprofiled
/// path — no clocks, no extra work.
pub(crate) fn seminaive_fixpoint_compiled_profiled(
    db: &mut Database,
    rules: &[PlannedRule<'_>],
    stratum_idb: &[Symbol],
    stats: &mut EvalStats,
    iteration_limit: usize,
    mut profile: Option<&mut crate::profile::RuleProfile>,
) -> Result<()> {
    let mut scratches: Vec<crate::eval::Scratch> = rules
        .iter()
        .map(|pr| crate::eval::Scratch::for_plan(pr.plan))
        .collect();
    let mut bufs: Vec<HeadBuf> = rules.iter().map(|_| HeadBuf::default()).collect();

    // Round 0: full evaluation seeds the delta.
    stats.iterations += 1;
    for (ri, pr) in rules.iter().enumerate() {
        let mut n = 0usize;
        let t0 = profile.as_ref().map(|_| std::time::Instant::now());
        derive_plan(
            db,
            None,
            pr.plan,
            &mut scratches[ri],
            &mut bufs[ri].flat,
            &mut n,
        )?;
        if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
            p.record(
                pr.plan.head_pred,
                t0.elapsed().as_nanos() as u64,
                0,
                n as u64,
            );
        }
        bufs[ri].rows += n;
        stats.derivations += n;
    }
    let mut delta = Database::new();
    merge_round(db, &mut delta, rules, &mut bufs, stats)?;

    // Subsequent rounds: join through the delta only, recycling the two
    // pooled delta databases (clear + refill, no per-round allocation).
    let mut spare = Database::new();
    while delta.fact_count() > 0 {
        stats.iterations += 1;
        if stats.iterations > iteration_limit {
            return Err(DatalogError::IterationLimit(iteration_limit));
        }
        for (ri, pr) in rules.iter().enumerate() {
            let mut ordinal = 0usize;
            for item in &pr.rule.body {
                let Some(atom) = item.as_positive_atom() else {
                    continue;
                };
                if stratum_idb.contains(&atom.pred)
                    && delta.relation(atom.pred).is_some_and(|r| !r.is_empty())
                {
                    let mut n = 0usize;
                    let t0 = profile.as_ref().map(|_| std::time::Instant::now());
                    derive_plan(
                        db,
                        Some((&delta, ordinal)),
                        pr.plan,
                        &mut scratches[ri],
                        &mut bufs[ri].flat,
                        &mut n,
                    )?;
                    if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
                        let delta_in = delta.relation(atom.pred).map_or(0, |r| r.len()) as u64;
                        p.record(
                            pr.plan.head_pred,
                            t0.elapsed().as_nanos() as u64,
                            delta_in,
                            n as u64,
                        );
                    }
                    bufs[ri].rows += n;
                    stats.derivations += n;
                }
                ordinal += 1;
            }
        }
        spare.clear_all();
        merge_round(db, &mut spare, rules, &mut bufs, stats)?;
        std::mem::swap(&mut delta, &mut spare);
    }
    Ok(())
}

/// The per-round merge: folds each rule's buffered candidates (in rule
/// order, emission order) into `db`, seeding `delta` with the genuinely
/// new rows; buffers are drained for reuse.
fn merge_round(
    db: &mut Database,
    delta: &mut Database,
    rules: &[PlannedRule<'_>],
    bufs: &mut [HeadBuf],
    stats: &mut EvalStats,
) -> Result<()> {
    for (ri, buf) in bufs.iter_mut().enumerate() {
        let pred = rules[ri].plan.head_pred;
        let arity = rules[ri].plan.head_arity();
        for r in 0..buf.rows {
            let row = &buf.flat[r * arity..(r + 1) * arity];
            if !db.contains_ids(pred, row) {
                if delta.insert_ids(pred, arity, row)? {
                    stats.facts_derived += 1;
                }
                db.insert_ids(pred, arity, row)?;
            }
        }
        buf.rows = 0;
        buf.flat.clear();
    }
    Ok(())
}

/// Derives every head instantiation of `rule` (optionally delta-rewritten
/// at one positive occurrence) into `out`. Shared with the sharded
/// parallel evaluator, whose workers run exactly this per shard.
pub(crate) fn derive_into(
    db: &Database,
    delta: Option<(&Database, usize)>,
    rule: &Rule,
    out: &mut Vec<Fact>,
    stats: &mut EvalStats,
) -> Result<()> {
    let mut emit = |subst: Subst| -> Result<()> {
        stats.derivations += 1;
        match rule.head.ground(&subst) {
            Some(fact) => {
                out.push(fact);
                Ok(())
            }
            None => Err(DatalogError::UnboundVariable(format!(
                "head of {rule} not fully bound (rule unsafe?)"
            ))),
        }
    };
    match_body(db, delta, &rule.body, Subst::new(), &mut emit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, Term, Value};

    fn atom(pred: &str, vars: &[&str]) -> Atom {
        Atom::new(pred, vars.iter().map(|v| Term::var(*v)).collect())
    }

    fn tc_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                atom("path", &["x", "y"]),
                vec![atom("edge", &["x", "y"]).into()],
            ),
            Rule::new(
                atom("path", &["x", "z"]),
                vec![
                    atom("edge", &["x", "y"]).into(),
                    atom("path", &["y", "z"]).into(),
                ],
            ),
        ]
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert(Fact::new("edge", vec![Value::from(i), Value::from(i + 1)]))
                .unwrap();
        }
        db
    }

    #[test]
    fn matches_naive_on_transitive_closure() {
        let rules = tc_rules();
        let refs: Vec<&Rule> = rules.iter().collect();
        let idb = [Symbol::intern("path")];

        let mut semi_db = chain_db(20);
        let mut stats = EvalStats::default();
        seminaive_fixpoint(&mut semi_db, &refs, &idb, &mut stats, 10_000).unwrap();

        let mut naive_db = chain_db(20);
        let mut nstats = EvalStats::default();
        crate::eval::naive_fixpoint(&mut naive_db, &refs, &mut nstats, 10_000).unwrap();

        assert_eq!(
            semi_db.relation("path").unwrap(),
            naive_db.relation("path").unwrap()
        );
        // 20-node chain: 20*21/2 = 210 paths.
        assert_eq!(semi_db.relation("path").unwrap().len(), 210);
        // Seminaive must do strictly fewer derivation attempts.
        assert!(stats.derivations < nstats.derivations);
    }

    #[test]
    fn non_recursive_rule_converges_in_two_rounds() {
        let mut db = Database::new();
        db.insert(Fact::new("a", vec![Value::from(1)])).unwrap();
        let rules = [Rule::new(atom("b", &["x"]), vec![atom("a", &["x"]).into()])];
        let refs: Vec<&Rule> = rules.iter().collect();
        let mut stats = EvalStats::default();
        seminaive_fixpoint(&mut db, &refs, &[Symbol::intern("b")], &mut stats, 100).unwrap();
        assert_eq!(db.relation("b").unwrap().len(), 1);
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn empty_rule_set_is_noop() {
        let mut db = chain_db(3);
        let mut stats = EvalStats::default();
        seminaive_fixpoint(&mut db, &[], &[], &mut stats, 100).unwrap();
        assert!(db.relation("path").is_none());
    }
}
