//! Ground facts and tuples.

use crate::{Symbol, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tuple of constant values — one row of a relation.
pub type Tuple = Box<[Value]>;

/// A ground fact: `pred(v1, ..., vn)`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fact {
    /// The relation (predicate) name.
    pub pred: Symbol,
    /// The row of values.
    pub tuple: Tuple,
}

impl Fact {
    /// Builds a fact from a predicate and values.
    pub fn new(pred: impl Into<Symbol>, values: impl IntoIterator<Item = Value>) -> Fact {
        Fact {
            pred: pred.into(),
            tuple: values.into_iter().collect(),
        }
    }

    /// The arity (number of columns).
    pub fn arity(&self) -> usize {
        self.tuple.len()
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, v) in self.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_construction_and_display() {
        let f = Fact::new("pictures", vec![Value::from(32), Value::from("sea.jpg")]);
        assert_eq!(f.arity(), 2);
        assert_eq!(f.to_string(), "pictures(32, \"sea.jpg\")");
    }

    #[test]
    fn zero_arity_fact() {
        let f = Fact::new("tick", vec![]);
        assert_eq!(f.arity(), 0);
        assert_eq!(f.to_string(), "tick()");
    }

    #[test]
    fn facts_hash_structurally() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Fact::new("r", vec![Value::from(1)]));
        assert!(set.contains(&Fact::new("r", vec![Value::from(1)])));
        assert!(!set.contains(&Fact::new("r", vec![Value::from(2)])));
    }
}
