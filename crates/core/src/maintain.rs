//! Incremental materialization support for the peer stage loop.
//!
//! A peer's rule set splits into two layers:
//!
//! * **Compiled** rules — fully local, constant-name rules with an
//!   intensional local head. These translate directly into datalog rules
//!   over the peer's qualified store and are *maintained* across stages by
//!   a [`MaterializedView`] (counting + DRed, see
//!   `wdl_datalog::incremental`): a stage that ingests a deletion pays for
//!   the change, not for re-deriving the whole database.
//! * **Dynamic** rules — everything the datalog kernel cannot express
//!   statically: rules with remote atoms (they delegate), variable
//!   relation/peer names, extensional heads (buffered self-updates),
//!   remote heads (fact shipping), and all delegated rules (their reads
//!   are gated per-origin by the grants policy, which can change without
//!   notice). These are re-evaluated every stage by the classic walker in
//!   `stage.rs`, and their local derivations feed the view as *base facts
//!   with external support*, so the two layers can read each other's
//!   output: a compiled rule sees dynamic derivations as inputs, and a
//!   dynamic fact that is also derivable by a compiled rule simply carries
//!   support from both sides.
//!
//! The compiled layer is invalidated by anything that changes the
//! translation — rule add/remove/replace or a schema declaration — which
//! bumps [`crate::Peer::ruleset_epoch`]; the view is then rebuilt from
//! scratch at the next stage. Delegation churn does *not* invalidate it
//! (delegated rules are always dynamic), which matters because delegations
//! are re-derived every stage.
//!
//! **Semantics note.** The compiled layer evaluates negation with proper
//! stratified semantics. The recompute fallback keeps the seed engine's
//! naive monotone loop, which can over-derive when a rule negates an
//! intensional relation that fills in later rounds (facts are never
//! retracted within a stage). The two paths therefore agree on stratified
//! rule sets — and when a rule set is unstratifiable, `Program::new`
//! rejects it and the fallback's (only well-defined) semantics apply to
//! the whole peer, so no peer mixes the two.
//!
//! **Known cost bound.** The dynamic layer keeps the paper's soft-state
//! semantics by retracting the previous stage's dynamic derivations and
//! re-deriving them each stage, so a stage costs O(|change| +
//! |dynamic-layer facts|): pay-for-the-change is exact only for peers
//! whose rules all compile. That is still strictly cheaper than the
//! pre-incremental loop (which paid O(|database|) every stage); making
//! the dynamic share itself differential would need per-source support
//! counting inside the view and is left for a future change.

use crate::{qualify, Peer, RelationKind, RuleId, WBodyItem, WRule};
use std::collections::HashSet;
use wdl_datalog::incremental::MaterializedView;
use wdl_datalog::optimize::{self, Cardinality};
use wdl_datalog::{Atom as DAtom, BodyItem as DItem, Database, Program, Rule as DRule, Symbol};

/// Live cardinality estimates for the join-order optimizer, read straight
/// off the peer: a qualified predicate counts its extensional store tuples,
/// the previous stage's derivation snapshot (intensional relations), and
/// maintained remote contributions. No clone — compilation happens only on
/// ruleset-epoch bumps, but the peer may be large.
struct LiveStats<'a> {
    peer: &'a Peer,
}

impl Cardinality for LiveStats<'_> {
    fn cardinality(&self, rel: Symbol) -> usize {
        let peer = self.peer;
        let mut n = peer.store.relation(rel).map_or(0, |r| r.len());
        n += peer.derived.relation(rel).map_or(0, |r| r.len());
        for (r, origins) in &peer.remote_contrib {
            if qualify(*r, peer.name) == rel {
                n += origins.values().map(|s| s.len()).sum::<usize>();
            }
        }
        n
    }
}

/// The maintained state of the compiled layer.
pub(crate) struct IncrementalState {
    /// The materialized view over the compiled program.
    pub(crate) view: MaterializedView,
    /// The ruleset epoch this state was compiled against.
    pub(crate) epoch: u64,
    /// Ids of the peer's own rules that the view maintains (the rest run
    /// dynamically).
    pub(crate) compiled: HashSet<RuleId>,
}

/// Translates one WebdamLog rule into a kernel datalog rule, if it is
/// fully local: constant relation/peer names throughout, every atom at
/// `me`, and a head that is not extensional (extensional heads buffer
/// updates for the next stage — a side effect the view must not absorb).
pub(crate) fn compile_rule(rule: &WRule, me: Symbol, peer: &Peer) -> Option<DRule> {
    let head_rel = rule.head.rel.as_name()?;
    let head_peer = rule.head.peer.as_name()?;
    if head_peer != me {
        return None;
    }
    if peer.schema.kind_of(head_rel) == Some(RelationKind::Extensional) {
        return None;
    }
    let head = DAtom::new(qualify(head_rel, me), rule.head.args.clone());
    let mut body = Vec::with_capacity(rule.body.len());
    for item in &rule.body {
        match item {
            WBodyItem::Literal(l) => {
                let rel = l.atom.rel.as_name()?;
                let atom_peer = l.atom.peer.as_name()?;
                if atom_peer != me {
                    return None;
                }
                let datom = DAtom::new(qualify(rel, me), l.atom.args.clone());
                body.push(if l.negated {
                    DItem::not_atom(datom)
                } else {
                    DItem::atom(datom)
                });
            }
            WBodyItem::Cmp { op, lhs, rhs } => {
                body.push(DItem::cmp(*op, lhs.clone(), rhs.clone()));
            }
            WBodyItem::Assign { var, expr } => {
                body.push(DItem::assign(*var, expr.clone()));
            }
        }
    }
    Some(DRule::new(head, body))
}

/// Compiles the peer's own compilable rules into a stratified program.
/// Returns `None` when nothing compiles or the compiled subset fails
/// validation (unsafe under the kernel's check, or unstratifiable) — the
/// caller then falls back to full per-stage recomputation.
pub(crate) fn compile_local(peer: &Peer) -> Option<(Program, HashSet<RuleId>)> {
    let mut rules = Vec::new();
    let mut compiled = HashSet::new();
    for entry in &peer.rules {
        if let Some(dr) = compile_rule(&entry.rule, peer.name, peer) {
            rules.push(dr);
            compiled.insert(entry.id);
        }
    }
    if rules.is_empty() {
        return None;
    }
    // Compiled bodies are fully local, so positive-atom joins commute and
    // the greedy join-order optimizer applies (WebdamLog body order only
    // carries meaning up to the delegation split, which these rules never
    // reach). Reorder against live cardinalities before validation.
    let rules = optimize::reorder_rules(&rules, &LiveStats { peer });
    match Program::new(rules) {
        // The peer's stage-level fixpoint cap bounds the compiled layer
        // too — set_fixpoint_limit must keep meaning what it says. The
        // peer-level engine toggle (`Peer::set_compiled_stage`) rides
        // along: an interpreted peer runs its maintained view on the
        // interpreter too, so the whole peer is one semantic reference.
        Ok(program) => {
            let config = wdl_datalog::EvalConfig::with_workers(peer.eval_workers)
                .with_compiled(peer.compiled_stage);
            Some((
                program
                    .with_iteration_limit(peer.fixpoint_limit)
                    .with_eval_config(config),
                compiled,
            ))
        }
        Err(_) => None,
    }
}

impl Peer {
    /// The view's base: the extensional store plus maintained remote
    /// contributions (dynamic-layer derivations are added as they are
    /// produced, stage by stage).
    pub(crate) fn current_base(&self) -> crate::Result<Database> {
        let mut base = self.store.clone();
        for (rel, origins) in &self.remote_contrib {
            let q = qualify(*rel, self.name);
            for tuples in origins.values() {
                for t in tuples {
                    base.insert_tuple(q, t.clone())?;
                }
            }
        }
        Ok(base)
    }

    /// Rebuilds the compiled layer if the ruleset epoch moved (or nothing
    /// is materialized yet).
    pub(crate) fn ensure_view(&mut self) -> ViewStatus {
        if let Some(state) = &self.incr {
            if state.epoch == self.ruleset_epoch {
                return ViewStatus::Current;
            }
        }
        // Compilation already failed at this epoch: stay on the recompute
        // path without re-attempting, and — crucially — without touching
        // the base log, which the recompute cache replays.
        if self.incr_failed_epoch == Some(self.ruleset_epoch) {
            return ViewStatus::Unavailable;
        }
        // Rebuild path: everything below either consumes the base log or
        // drops it, so a cached recompute working database can no longer
        // catch up from the log.
        self.working = None;
        self.incr = None;
        self.prev_dynamic.clear();
        let Some((program, compiled)) = compile_local(self) else {
            self.incr_failed_epoch = Some(self.ruleset_epoch);
            self.base_log.clear();
            return ViewStatus::Unavailable;
        };
        let Ok(base) = self.current_base() else {
            self.base_log.clear();
            return ViewStatus::Unavailable;
        };
        self.base_log.clear();
        // A rebuild is where a freshly added rule does its first (and in
        // one-shot flows, only) round of derivation, so the construction
        // fixpoint must feed the trace like any maintenance pass would.
        let mut prof = self
            .tracer
            .is_some()
            .then(wdl_datalog::profile::RuleProfile::new);
        match MaterializedView::new_profiled(program, base, prof.as_mut()) {
            Ok(view) => {
                if let (Some(mut p), Some(tr)) = (prof, self.tracer.as_mut()) {
                    for (head, c) in p.drain() {
                        tr.record(crate::TraceEvent::RuleEval {
                            peer: self.name,
                            stage: self.stage,
                            rule: head,
                            dur_ns: c.ns,
                            delta_in: c.delta_in,
                            derived: c.derived,
                        });
                    }
                }
                self.incr = Some(IncrementalState {
                    view,
                    epoch: self.ruleset_epoch,
                    compiled,
                });
                ViewStatus::Rebuilt
            }
            Err(_) => ViewStatus::Unavailable,
        }
    }
}

/// Outcome of [`Peer::ensure_view`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ViewStatus {
    /// A view from an earlier stage is still valid.
    Current,
    /// The view was (re)built this stage from the current base.
    Rebuilt,
    /// No compiled layer is available; run the full recompute loop.
    Unavailable,
}
