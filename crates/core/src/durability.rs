//! The durability seam: how a peer streams its persistent changes to a
//! storage engine without depending on one.
//!
//! A [`DurabilitySink`] is the write side of a write-ahead log. The peer
//! calls [`DurabilitySink::record_fact`] for every *extensional base fact*
//! change, in commit order, at the moment the in-memory store changes —
//! transient state (remote contributions for intensional relations, derived
//! snapshots) is deliberately not recorded, because it is re-derived or
//! re-sent by the protocol after a restart and persisting it would turn
//! admissible post-crash divergence into silent staleness. At the end of
//! every stage the peer calls [`DurabilitySink::sync`], which is the group
//! commit point: buffered records become durable there, and structural
//! changes (schema, rules, delegations, trust, grants — everything
//! [`crate::PeerState`] carries besides facts) force a full checkpoint.
//!
//! The engine that implements this trait lives in `wdl-store`; keeping the
//! trait here keeps the dependency arrow pointing outward (core knows
//! nothing about files, segments or WALs).

use crate::{Peer, Result};
use wdl_datalog::{Symbol, Tuple};

/// Receives a peer's durable mutations in commit order.
///
/// `Send` because peers (and therefore their sinks) migrate onto
/// [`crate::ShardedRuntime`] worker threads.
pub trait DurabilitySink: Send {
    /// An extensional base fact changed. `rel` is the qualified predicate
    /// (`rel@peer`); `added` is `true` for an insertion, `false` for a
    /// deletion. Called after the in-memory store mutated, so this must
    /// only buffer — durability is decided at [`DurabilitySink::sync`].
    fn record_fact(&mut self, rel: Symbol, tuple: &Tuple, added: bool);

    /// A session-layer delivery watermark advanced (see
    /// [`Peer::note_session_watermark`]): direction `dir` 0 = delivered
    /// from `remote`, 1 = acked by `remote`, now at `(inc, seq)`. Like
    /// [`DurabilitySink::record_fact`] this must only buffer; the
    /// watermark becomes durable at the next [`DurabilitySink::sync`],
    /// in the same group commit as the facts it covers. The default
    /// does nothing — sinks predating the session layer stay correct
    /// (sessions then re-deliver instead of deduplicating, which the
    /// application layer tolerates for persistent updates).
    fn record_watermark(&mut self, remote: Symbol, dir: u8, inc: u64, seq: u64) {
        let _ = (remote, dir, inc, seq);
    }

    /// Group-commit point, called at the end of every stage (and by
    /// [`Peer::sync_durability`]). Flush buffered records; when
    /// `meta_dirty` is `true`, structural state changed since the last
    /// sync and the sink must capture a full checkpoint of `peer`.
    fn sync(&mut self, peer: &Peer, meta_dirty: bool) -> Result<()>;
}

impl Peer {
    /// Attaches a durability sink. Every subsequent extensional change is
    /// recorded into it and every stage ends with a group commit. The
    /// peer is marked structurally dirty so the first sync captures a
    /// full checkpoint.
    pub fn set_durability(&mut self, sink: Box<dyn DurabilitySink>) {
        self.durability = Some(sink);
        self.meta_dirty = true;
    }

    /// Detaches and returns the durability sink, leaving the peer
    /// in-memory only.
    pub fn clear_durability(&mut self) -> Option<Box<dyn DurabilitySink>> {
        self.durability.take()
    }

    /// Whether a durability sink is attached.
    pub fn durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Forces a group commit outside the stage loop (the stage loop calls
    /// this automatically). No-op without a sink.
    pub fn sync_durability(&mut self) -> Result<()> {
        // Take/put-back so the sink can read the peer while borrowed out.
        let Some(mut sink) = self.durability.take() else {
            return Ok(());
        };
        let res = sink.sync(self, self.meta_dirty);
        self.durability = Some(sink);
        if res.is_ok() {
            self.meta_dirty = false;
        }
        res
    }

    /// Dumps every extensional relation as process-independent columns
    /// (see [`wdl_datalog::ColumnExport`]), keyed by *unqualified*
    /// relation name and sorted by it, so checkpoints are deterministic.
    /// Declared-but-empty relations are included — recovery must restore
    /// the empty relation, not forget the declaration.
    pub fn export_extensional(&self) -> Vec<(Symbol, wdl_datalog::ColumnExport)> {
        let mut out: Vec<(Symbol, wdl_datalog::ColumnExport)> = Vec::new();
        for decl in self.schema.iter() {
            if decl.kind != crate::RelationKind::Extensional {
                continue;
            }
            let q = crate::qualify(decl.rel, self.name);
            let dump = match self.store.relation(q) {
                Some(rel) => rel.export_columns(),
                None => wdl_datalog::ColumnExport {
                    arity: decl.arity,
                    rows: 0,
                    values: Vec::new(),
                    cells: Vec::new(),
                },
            };
            out.push((decl.rel, dump));
        }
        out.sort_by_key(|(rel, _)| rel.to_string());
        out
    }

    /// Installs a recovered extensional relation from a column dump,
    /// bypassing the durability sink and the base-change log (recovery
    /// must not re-log what it replays). The relation must already be
    /// declared extensional with a matching arity — checkpoints carry the
    /// schema, so a segment for an undeclared relation is corruption.
    pub fn import_extensional(
        &mut self,
        rel: impl Into<Symbol>,
        dump: &wdl_datalog::ColumnExport,
    ) -> Result<()> {
        let rel = rel.into();
        if self.schema.kind_of(rel) != Some(crate::RelationKind::Extensional) {
            return Err(crate::WdlError::SchemaViolation(format!(
                "segment for {rel} but the relation is not declared extensional"
            )));
        }
        if self.schema.arity_of(rel) != Some(dump.arity) {
            return Err(crate::WdlError::SchemaViolation(format!(
                "segment for {rel} has arity {}, schema says {:?}",
                dump.arity,
                self.schema.arity_of(rel)
            )));
        }
        let rebuilt = dump.into_relation()?;
        self.store
            .copy_relation(crate::qualify(rel, self.name), &rebuilt)?;
        Ok(())
    }
}
