//! A WebdamLog peer: schema, storage, rules, delegations, ACL state.

use crate::acl::AccessControl;
use crate::grants::RelationGrants;
use crate::stage::StageStats;
use crate::{
    qualify, Delegation, DelegationId, FactKind, Message, Payload, RelationKind, Result, Schema,
    WFact, WRule, WdlError,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use wdl_datalog::{Database, Symbol, Tuple, Value};

/// Identifier of a rule owned by a peer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RuleId {
    /// The owning peer.
    pub peer: Symbol,
    /// Per-peer counter.
    pub idx: u32,
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.peer, self.idx)
    }
}

/// A rule owned by the peer, with its id (the demo UI lists rules this way,
/// Figure 3).
#[derive(Clone, Debug)]
pub struct RuleEntry {
    /// Identifier (stable across removals).
    pub id: RuleId,
    /// The rule.
    pub rule: WRule,
}

/// A WebdamLog peer.
///
/// A peer hosts relations (extensional and intensional), runs its own rules
/// plus rules delegated to it, and exchanges facts and rules with other
/// peers through [`Peer::run_stage`] / [`Peer::enqueue`]. See the crate
/// documentation for the full model.
pub struct Peer {
    pub(crate) name: Symbol,
    pub(crate) schema: Schema,
    /// Extensional facts, stored under qualified predicates `rel@peer`.
    pub(crate) store: Database,
    /// Intensional snapshot of the last completed stage.
    pub(crate) derived: Database,
    /// Maintained contributions received from other peers for intensional
    /// relations: `rel -> origin -> tuples`.
    pub(crate) remote_contrib: HashMap<Symbol, HashMap<Symbol, HashSet<Tuple>>>,
    pub(crate) rules: Vec<RuleEntry>,
    pub(crate) next_rule_idx: u32,
    /// Delegations installed here by other peers.
    pub(crate) delegated: Vec<Delegation>,
    pub(crate) acl: AccessControl,
    pub(crate) grants: RelationGrants,
    pub(crate) inbox: Vec<Message>,
    /// Extensional self-updates derived by rules, applied at next stage.
    pub(crate) pending_updates: Vec<WFact>,
    /// Explicit API-driven messages to other peers, flushed at next stage.
    pub(crate) outbox_explicit: Vec<Message>,
    /// Delegations this peer emitted at its previous stage (for diffing).
    pub(crate) prev_delegations: HashMap<DelegationId, Delegation>,
    /// Derived facts sent to each target at the previous stage (for diffing).
    pub(crate) prev_sent: HashMap<Symbol, HashSet<WFact>>,
    pub(crate) stage: u64,
    pub(crate) fixpoint_limit: usize,
    /// Seminaive worker threads for the compiled local program (1 = serial).
    pub(crate) eval_workers: usize,
    /// Maintained materialization of the compilable (fully local) rules;
    /// `None` until the first stage builds it, or when compilation is not
    /// possible (see `maintain.rs`).
    pub(crate) incr: Option<crate::maintain::IncrementalState>,
    /// Bumped by every mutation that changes rule compilation (rule
    /// add/remove/replace, schema declarations); the view rebuilds when it
    /// trails this counter.
    pub(crate) ruleset_epoch: u64,
    /// Base-fact changes (qualified store + remote-contribution updates)
    /// since the last stage, consumed by the incremental path.
    pub(crate) base_log: Vec<(wdl_datalog::Fact, bool)>,
    /// Local facts the dynamic rule layer derived at the previous stage
    /// (fed to the view as external support; retracted when re-derivation
    /// stops producing them).
    pub(crate) prev_dynamic: HashSet<wdl_datalog::Fact>,
    /// Whether stage-layer rules run as compiled register-file prefix
    /// plans (default) or on the `Subst` reference interpreter.
    pub(crate) compiled_stage: bool,
    /// Bumped on every access to the mutable grants handle: the hoisted
    /// per-origin ACL read gates of cached stage plans must be re-derived
    /// when grants may have changed.
    pub(crate) grants_epoch: u64,
    /// Cached classified stage plans (see `stage_plan.rs`).
    pub(crate) stage_plans: crate::stage_plan::StagePlans,
    /// Reusable working database for the recompute fixpoint (store +
    /// contributions + derivations of the last recompute stage), rolled
    /// back/forward via `base_log` instead of cloning the store every
    /// stage. `None` whenever any other consumer drained or dropped the
    /// base log (the incremental path, a view rebuild) — the next
    /// recompute stage then rebuilds it from scratch.
    pub(crate) working: Option<crate::stage::RecomputeCache>,
    /// Knob for [`Peer::set_recompute_cache`]; `false` pins the seed
    /// engine's clone-per-stage behaviour as the bench baseline.
    pub(crate) recompute_cache: bool,
    /// The ruleset epoch at which `compile_local` last came back empty, so
    /// quiescent uncompilable peers (pure hubs, delegation-only peers)
    /// skip re-attempting compilation — and keep their base log for the
    /// recompute cache — every stage.
    pub(crate) incr_failed_epoch: Option<u64>,
    /// Trace sink + label cache when tracing is enabled; `None` (the
    /// default) keeps every hook a single branch with zero allocations
    /// and no clock reads (see `trace.rs`).
    pub(crate) tracer: Option<Box<crate::trace::PeerTracer>>,
    /// Counters of the last completed stage (for `stats` reporting).
    pub(crate) last_stats: StageStats,
    /// Fixpoint work accumulated across all stages (for `report`).
    pub(crate) cum_eval: wdl_datalog::EvalStats,
    /// Durability sink, when this peer persists its state (see
    /// `durability.rs`). `None` (the default) keeps the peer fully
    /// in-memory with zero overhead on the mutation paths.
    pub(crate) durability: Option<Box<dyn crate::DurabilitySink>>,
    /// Structural (non-fact) state changed since the last durability sync;
    /// forces a full checkpoint at the next group commit.
    pub(crate) meta_dirty: bool,
    /// Session-layer delivery watermarks, keyed by `(remote peer,
    /// direction)` where direction 0 = delivered (frames from `remote`
    /// this peer has applied) and 1 = acked (frames to `remote` the
    /// remote has durably applied); the value is `(remote incarnation,
    /// cumulative sequence number)`. Persisted through the durability
    /// sink so a recovered peer resumes its sessions without re-applying
    /// (or losing) in-flight traffic.
    pub(crate) session_watermarks: BTreeMap<(Symbol, u8), (u64, u64)>,
}

impl Peer {
    /// Creates a peer named `name`.
    pub fn new(name: impl Into<Symbol>) -> Peer {
        Peer {
            name: name.into(),
            schema: Schema::new(),
            store: Database::new(),
            derived: Database::new(),
            remote_contrib: HashMap::new(),
            rules: Vec::new(),
            next_rule_idx: 0,
            delegated: Vec::new(),
            acl: AccessControl::new(),
            grants: RelationGrants::new(),
            inbox: Vec::new(),
            pending_updates: Vec::new(),
            outbox_explicit: Vec::new(),
            prev_delegations: HashMap::new(),
            prev_sent: HashMap::new(),
            stage: 0,
            fixpoint_limit: 10_000,
            eval_workers: 1,
            incr: None,
            ruleset_epoch: 0,
            base_log: Vec::new(),
            prev_dynamic: HashSet::new(),
            compiled_stage: true,
            grants_epoch: 0,
            stage_plans: crate::stage_plan::StagePlans::default(),
            working: None,
            recompute_cache: true,
            incr_failed_epoch: None,
            tracer: None,
            last_stats: StageStats::default(),
            cum_eval: wdl_datalog::EvalStats::default(),
            durability: None,
            meta_dirty: false,
            session_watermarks: BTreeMap::new(),
        }
    }

    /// The peer's name.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// Stages completed so far.
    pub fn stage(&self) -> u64 {
        self.stage
    }

    /// Immutable access control state.
    pub fn acl(&self) -> &AccessControl {
        &self.acl
    }

    /// Mutable access control state (trust peers, change policy).
    pub fn acl_mut(&mut self) -> &mut AccessControl {
        self.meta_dirty = true;
        &mut self.acl
    }

    /// Relation-level grants (the paper's sketched discretionary model).
    pub fn grants(&self) -> &RelationGrants {
        &self.grants
    }

    /// Relation-level grants, mutably (restrict/grant/declassify).
    ///
    /// Any access through this handle may change what delegated rules can
    /// read, so it conservatively bumps the grants epoch — cached stage
    /// plans (whose per-literal ACL read gates are hoisted to compile
    /// time) re-classify at the next stage.
    pub fn grants_mut(&mut self) -> &mut RelationGrants {
        self.grants_epoch += 1;
        self.meta_dirty = true;
        &mut self.grants
    }

    /// Selects compiled register-file evaluation for this peer's stage
    /// loop (`true`, the default) or the symbol-keyed `Subst` interpreter
    /// (`false`) — the stage-layer mirror of the datalog kernel's
    /// `EvalConfig::with_compiled(false)`. Both paths compute identical
    /// outcomes, delegations and blocked-read counts (property-tested in
    /// `tests/stage_parity.rs`); the interpreter is retained as the
    /// semantic reference and bench baseline. The toggle also selects the
    /// engine of the maintained local view and of [`Peer::query`], so the
    /// whole peer runs one engine.
    ///
    /// Like [`Peer::set_eval_workers`] and [`Peer::set_fixpoint_limit`],
    /// this is a runtime tuning knob, **not durable state**: snapshots
    /// ([`crate::PeerState`]) carry semantic state only, so a restored
    /// peer starts back on the default (compiled) engine — re-apply the
    /// toggle after restore when pinning the interpreter matters.
    pub fn set_compiled_stage(&mut self, compiled: bool) {
        if self.compiled_stage != compiled {
            self.compiled_stage = compiled;
            // The maintained view's program carries the engine choice;
            // force a rebuild.
            self.ruleset_epoch += 1;
        }
    }

    /// Whether the stage loop runs compiled plans (see
    /// [`Peer::set_compiled_stage`]).
    pub fn compiled_stage(&self) -> bool {
        self.compiled_stage
    }

    /// Enables (`true`, the default) or disables the recompute path's
    /// working-database reuse. With the cache on, a recompute stage rolls
    /// the previous stage's working database back (removing its recorded
    /// derivations) and forward (replaying the base log) — O(|change| +
    /// |derived|) — instead of paying `store.clone()` plus full
    /// remote-contribution injection every stage. Both settings compute
    /// identical stages; `false` pins the clone-per-stage baseline for
    /// benchmarks (`e13_stage`). Like [`Peer::set_compiled_stage`], this is
    /// a tuning knob, not durable state.
    pub fn set_recompute_cache(&mut self, enabled: bool) {
        self.recompute_cache = enabled;
        if !enabled {
            self.working = None;
        }
    }

    /// Whether recompute stages reuse the working database (see
    /// [`Peer::set_recompute_cache`]).
    pub fn recompute_cache(&self) -> bool {
        self.recompute_cache
    }

    /// Installs a trace sink: every subsequent stage records
    /// [`crate::TraceEvent`]s (stage timings, per-rule costs, message
    /// causality, delegation churn, blocked reads) into it. Replaces
    /// any previously installed sink.
    ///
    /// Like [`Peer::set_compiled_stage`], this is a runtime tuning
    /// knob, **not durable state**: snapshots ([`crate::PeerState`])
    /// carry semantic state only, so a restored peer comes up untraced.
    /// Tracing never changes what a stage computes (pinned by the
    /// `trace_parity` suite); with no sink installed every hook is one
    /// branch, zero allocations and no clock reads (pinned by
    /// `trace_alloc`).
    pub fn set_trace_sink(&mut self, sink: Box<dyn crate::TraceSink>) {
        self.tracer = Some(crate::trace::PeerTracer::new(sink));
    }

    /// Removes the trace sink, returning the peer to the zero-cost
    /// untraced path.
    pub fn clear_trace_sink(&mut self) {
        self.tracer = None;
    }

    /// Whether a trace sink is installed.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Records a session-layer retransmission batch toward `to` (called
    /// by the transport driver; a no-op when untraced).
    pub fn trace_session_retransmits(&mut self, to: Symbol, count: u64) {
        if count == 0 {
            return;
        }
        let from = self.name;
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(crate::TraceEvent::SessionRetransmit { from, to, count });
        }
    }

    /// Records a session liveness transition for `remote`
    /// (0 = Up, 1 = Suspect, 2 = Down); a no-op when untraced.
    pub fn trace_session_health(&mut self, remote: Symbol, state: u8) {
        let observer = self.name;
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(crate::TraceEvent::SessionHealth {
                observer,
                remote,
                state,
            });
        }
    }

    /// Drains buffered trace events from the installed sink (empty when
    /// untraced or the sink does not buffer). Runtimes call this once
    /// per round to feed their aggregator.
    pub fn drain_trace(&mut self) -> Vec<crate::TraceEvent> {
        match &mut self.tracer {
            Some(t) => t.sink.drain(),
            None => Vec::new(),
        }
    }

    /// [`Peer::drain_trace`], but appending onto `out` so the sink keeps
    /// its buffer capacity — the runtimes' once-per-round drain of a
    /// large fleet stays allocation-free in the steady state.
    pub fn drain_trace_into(&mut self, out: &mut Vec<crate::TraceEvent>) {
        if let Some(t) = &mut self.tracer {
            t.sink.drain_into(out);
        }
    }

    /// Counters of the peer's last completed stage (all zeros before
    /// the first stage runs).
    pub fn last_stage_stats(&self) -> crate::StageStats {
        self.last_stats
    }

    /// Fixpoint work accumulated across every stage this peer has run:
    /// `iterations` sums fixpoint rounds, `derivations` head
    /// instantiations, `facts_derived` locally new facts.
    pub fn cumulative_eval_stats(&self) -> wdl_datalog::EvalStats {
        self.cum_eval
    }

    /// Messages queued for ingestion at the next stage, in arrival order.
    /// Observability for runtimes and parity tests — the inbox is consumed
    /// by [`Peer::run_stage`].
    pub fn inbox(&self) -> &[Message] {
        &self.inbox
    }

    /// The peer's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Caps the per-stage local fixpoint round count (default 10,000).
    pub fn set_fixpoint_limit(&mut self, limit: usize) {
        self.fixpoint_limit = limit;
    }

    /// Sets the seminaive worker-thread count for this peer's compiled
    /// local program (default 1 = serial; see `wdl_datalog::EvalConfig`).
    /// An already-materialized view is retuned in place (worker count does
    /// not change what the program computes, so no rebuild is needed);
    /// future compilations pick the new count up from the peer.
    pub fn set_eval_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if self.eval_workers == workers {
            return;
        }
        self.eval_workers = workers;
        if let Some(state) = &mut self.incr {
            state.view.set_workers(workers);
        }
    }

    /// Declares a local relation.
    pub fn declare(
        &mut self,
        rel: impl Into<Symbol>,
        arity: usize,
        kind: RelationKind,
    ) -> Result<()> {
        let rel = rel.into();
        self.schema.declare(rel, arity, kind)?;
        if kind == RelationKind::Extensional {
            self.store.declare(qualify(rel, self.name), arity)?;
        }
        self.ruleset_epoch += 1;
        self.meta_dirty = true;
        Ok(())
    }

    /// Installs a whole program batch atomically, vetted by a static
    /// checker (normally `wdl-analyze`'s `StaticChecker`; use
    /// [`crate::NoCheck`] to opt out).
    ///
    /// Order of operations:
    ///
    /// 1. the checker analyzes the batch against this peer's current
    ///    state; any [`crate::Severity::Error`] diagnostic rejects the
    ///    whole batch with [`WdlError::Rejected`] **before any fact,
    ///    rule or declaration is applied** (and hence before anything
    ///    can be emitted to other peers);
    /// 2. the batch is validated against the engine's intrinsic rules
    ///    (schema compatibility, fact ownership and arity, WebdamLog
    ///    safety) on scratch state — a validation failure also leaves
    ///    the peer untouched;
    /// 3. declarations, rules and facts are applied, in that order.
    ///
    /// Warnings do not block: they are returned in the
    /// [`crate::InstallReport`] and recorded on the trace stream as
    /// [`crate::TraceEvent::AnalyzerDiagnostic`] events when a sink is
    /// installed.
    pub fn install(
        &mut self,
        batch: crate::ProgramBatch,
        check: &dyn crate::ProgramCheck,
    ) -> Result<crate::InstallReport> {
        let diags = check.check(self, &batch);
        if diags.iter().any(|d| d.is_error()) {
            return Err(WdlError::Rejected(diags));
        }

        // Validate the whole batch on scratch state before mutating.
        let mut scratch = self.schema.clone();
        for &(rel, arity, kind) in &batch.declarations {
            scratch.declare(rel, arity, kind)?;
        }
        for fact in &batch.facts {
            if fact.peer != self.name {
                return Err(WdlError::SchemaViolation(format!(
                    "fact {fact} is addressed to peer {}, not {}",
                    fact.peer, self.name
                )));
            }
            match scratch.get(fact.rel) {
                Some(decl) if decl.kind != RelationKind::Extensional => {
                    return Err(WdlError::SchemaViolation(format!(
                        "fact {fact} targets intensional relation {}",
                        fact.rel
                    )));
                }
                Some(decl) if decl.arity != fact.tuple.len() => {
                    return Err(WdlError::SchemaViolation(format!(
                        "fact {fact} has arity {}, relation {} is declared with {}",
                        fact.tuple.len(),
                        fact.rel,
                        decl.arity
                    )));
                }
                Some(_) => {}
                // insert_local auto-declares unknown relations as
                // extensional; mirror that here so later facts of the
                // same relation are checked against the first's arity.
                None => scratch.declare(fact.rel, fact.tuple.len(), RelationKind::Extensional)?,
            }
        }
        for (rule, _span) in &batch.rules {
            rule.check_safety()?;
        }

        // Apply. Every step below is infallible given the validation
        // above succeeded against the same scratch schema.
        let mut report = crate::InstallReport {
            declarations: batch.declarations.len(),
            ..Default::default()
        };
        for (rel, arity, kind) in batch.declarations {
            self.declare(rel, arity, kind)?;
        }
        for (rule, _span) in batch.rules {
            report.rules.push(self.add_rule(rule)?);
        }
        for fact in batch.facts {
            let values: Vec<Value> = fact.tuple.to_vec();
            self.insert_local(fact.rel, values)?;
            report.facts += 1;
        }

        let me = self.name;
        if let Some(tr) = self.tracer.as_mut() {
            for d in &diags {
                tr.record(crate::TraceEvent::AnalyzerDiagnostic {
                    peer: me,
                    code: d.code.number(),
                    severity: match d.severity {
                        crate::Severity::Warning => 0,
                        crate::Severity::Error => 1,
                    },
                });
            }
        }
        report.warnings = diags;
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Rule management (the demo UI's inspect / add / remove, Figure 3)
    // ------------------------------------------------------------------

    /// Adds a rule after checking WebdamLog safety. Returns its id.
    pub fn add_rule(&mut self, rule: WRule) -> Result<RuleId> {
        rule.check_safety()?;
        let id = RuleId {
            peer: self.name,
            idx: self.next_rule_idx,
        };
        self.next_rule_idx += 1;
        self.rules.push(RuleEntry { id, rule });
        self.ruleset_epoch += 1;
        self.meta_dirty = true;
        Ok(id)
    }

    /// Removes a rule by id. Delegations it produced are revoked at the next
    /// stage (the diff notices their absence).
    pub fn remove_rule(&mut self, id: RuleId) -> Result<WRule> {
        let idx = self
            .rules
            .iter()
            .position(|e| e.id == id)
            .ok_or_else(|| WdlError::UnknownRule(id.to_string()))?;
        self.ruleset_epoch += 1;
        self.meta_dirty = true;
        Ok(self.rules.remove(idx).rule)
    }

    /// Replaces the body/head of an existing rule (the demo's "customize a
    /// rule" flow), keeping its id.
    pub fn replace_rule(&mut self, id: RuleId, rule: WRule) -> Result<WRule> {
        rule.check_safety()?;
        let entry = self
            .rules
            .iter_mut()
            .find(|e| e.id == id)
            .ok_or_else(|| WdlError::UnknownRule(id.to_string()))?;
        self.ruleset_epoch += 1;
        self.meta_dirty = true;
        Ok(std::mem::replace(&mut entry.rule, rule))
    }

    /// The peer's own rules.
    pub fn rules(&self) -> &[RuleEntry] {
        &self.rules
    }

    /// Rules installed here by other peers.
    pub fn installed_delegations(&self) -> &[Delegation] {
        &self.delegated
    }

    /// Delegations waiting for user approval.
    pub fn pending_delegations(&self) -> &[crate::PendingDelegation] {
        self.acl.pending()
    }

    /// Approves a pending delegation: it becomes an installed rule, effective
    /// at the next stage (the demo: "the program of Jules is changed once the
    /// approval is granted").
    pub fn approve_delegation(&mut self, id: DelegationId) -> Result<()> {
        let d = self
            .acl
            .take_pending(id)
            .ok_or_else(|| WdlError::UnknownRule(format!("pending delegation {id}")))?;
        self.install_delegation(d);
        Ok(())
    }

    /// Rejects (drops) a pending delegation.
    pub fn reject_delegation(&mut self, id: DelegationId) -> Result<()> {
        if self.acl.drop_pending(id) {
            Ok(())
        } else {
            Err(WdlError::UnknownRule(format!("pending delegation {id}")))
        }
    }

    /// Installs a delegation directly, bypassing the approval queue — the
    /// owner's prerogative (used by approval itself, by state restore, and
    /// by tests). Remote peers can only install through messages, which are
    /// gated by the ACL.
    pub fn install_delegation(&mut self, d: Delegation) {
        if !self.delegated.iter().any(|x| x.id == d.id) {
            self.delegated.push(d);
            self.meta_dirty = true;
        }
    }

    pub(crate) fn remove_delegation(&mut self, id: DelegationId) -> bool {
        let before = self.delegated.len();
        self.delegated.retain(|d| d.id != id);
        if self.delegated.len() != before {
            self.meta_dirty = true;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Fact management
    // ------------------------------------------------------------------

    /// Inserts a fact into a local extensional relation, effective
    /// immediately (used for setup and by the GUI-replacement drivers).
    /// Auto-declares unknown relations as extensional.
    pub fn insert_local(&mut self, rel: impl Into<Symbol>, values: Vec<Value>) -> Result<bool> {
        let rel = rel.into();
        self.ensure_extensional(rel, values.len())?;
        let q = qualify(rel, self.name);
        let tuple: wdl_datalog::Tuple = values.into();
        let added = self.store.insert_tuple(q, tuple.clone())?;
        if added {
            self.log_base_change(wdl_datalog::Fact { pred: q, tuple }, true);
        }
        Ok(added)
    }

    /// Deletes a fact from a local extensional relation.
    pub fn delete_local(&mut self, rel: impl Into<Symbol>, values: Vec<Value>) -> Result<bool> {
        let rel = rel.into();
        if self.schema.kind_of(rel) != Some(RelationKind::Extensional) {
            return Err(WdlError::SchemaViolation(format!(
                "cannot delete from non-extensional relation {rel}"
            )));
        }
        let fact = WFact::new(rel, self.name, values);
        let dfact = wdl_datalog::Fact {
            pred: fact.qualified(),
            tuple: fact.tuple,
        };
        let removed = self.store.remove(&dfact);
        if removed {
            self.log_base_change(dfact, false);
        }
        Ok(removed)
    }

    /// Sends an explicit insertion to another peer's extensional relation
    /// (delivered with the next stage's messages).
    pub fn insert_remote(
        &mut self,
        target: impl Into<Symbol>,
        rel: impl Into<Symbol>,
        values: Vec<Value>,
    ) {
        let target = target.into();
        self.outbox_explicit.push(Message::new(
            self.name,
            target,
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![WFact::new(rel.into(), target, values)],
                retractions: vec![],
            },
        ));
    }

    /// Sends an explicit deletion to another peer's extensional relation.
    pub fn delete_remote(
        &mut self,
        target: impl Into<Symbol>,
        rel: impl Into<Symbol>,
        values: Vec<Value>,
    ) {
        let target = target.into();
        self.outbox_explicit.push(Message::new(
            self.name,
            target,
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![],
                retractions: vec![WFact::new(rel.into(), target, values)],
            },
        ));
    }

    /// Queues an incoming message for the next stage.
    pub fn enqueue(&mut self, msg: Message) {
        self.inbox.push(msg);
    }

    /// True iff messages are waiting to be ingested.
    pub fn has_pending_input(&self) -> bool {
        !self.inbox.is_empty()
            || !self.pending_updates.is_empty()
            || !self.outbox_explicit.is_empty()
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Current tuples of a local relation: extensional relations read the
    /// store, intensional relations read the last stage's derivation
    /// snapshot.
    pub fn relation_facts(&self, rel: impl Into<Symbol>) -> Vec<Tuple> {
        let rel = rel.into();
        let q = qualify(rel, self.name);
        let db = match self.schema.kind_of(rel) {
            Some(RelationKind::Extensional) => &self.store,
            Some(RelationKind::Intensional) => &self.derived,
            None => return Vec::new(),
        };
        db.relation(q)
            .map(|r| r.iter().collect())
            .unwrap_or_default()
    }

    /// Runs an ad-hoc query — a rule body — against the peer's current
    /// state (extensional store plus the last stage's derivations), and
    /// returns every satisfying substitution. This is the demo's *Query
    /// tab* ("launch one of the pre-defined queries, or write their own
    /// WebdamLog queries", §4).
    ///
    /// Queries are local: every atom must name this peer. Querying remote
    /// relations requires a rule (and hence delegation) — queries are
    /// read-only and instantaneous by design.
    pub fn query(&self, body: &[crate::WBodyItem]) -> Result<Vec<wdl_datalog::Subst>> {
        use wdl_datalog::BodyItem as DItem;
        let mut compiled: Vec<DItem> = Vec::with_capacity(body.len());
        for item in body {
            match item {
                crate::WBodyItem::Literal(l) => {
                    let (Some(rel), Some(peer)) = (l.atom.rel.as_name(), l.atom.peer.as_name())
                    else {
                        return Err(WdlError::UnsafeDistribution(format!(
                            "query atoms must have constant names: {}",
                            l.atom
                        )));
                    };
                    if peer != self.name {
                        return Err(WdlError::UnsafeDistribution(format!(
                            "query atom {} is not local to {} — use a rule for remote data",
                            l.atom, self.name
                        )));
                    }
                    let datom =
                        wdl_datalog::Atom::new(qualify(rel, self.name), l.atom.args.clone());
                    compiled.push(if l.negated {
                        DItem::not_atom(datom)
                    } else {
                        DItem::atom(datom)
                    });
                }
                crate::WBodyItem::Cmp { op, lhs, rhs } => {
                    compiled.push(DItem::cmp(*op, lhs.clone(), rhs.clone()));
                }
                crate::WBodyItem::Assign { var, expr } => {
                    compiled.push(DItem::assign(*var, expr.clone()));
                }
            }
        }
        // Query view: store plus the latest derivation snapshot.
        let mut db = self.store.clone();
        db.absorb(&self.derived)?;
        // Ad-hoc queries ride the same engine selection as the stage loop:
        // a compiled prefix plan when possible, the interpreter otherwise
        // (or when a body the plan compiler rejects must keep its
        // runtime-error-per-reaching-binding semantics).
        if self.compiled_stage {
            if let Ok(plan) = wdl_datalog::eval::BodyPlan::compile(&compiled, &[]) {
                let mut out = Vec::new();
                let mut scratch = wdl_datalog::eval::BodyScratch::new();
                plan.run(&db, &mut scratch, &[], &mut |regs| {
                    let mut s = wdl_datalog::Subst::new();
                    for &(v, r) in plan.bindings() {
                        s.bind(v, regs[r as usize].value());
                    }
                    out.push(s);
                    Ok(())
                })?;
                return Ok(out);
            }
        }
        Ok(wdl_datalog::eval::evaluate_body(
            &db,
            &compiled,
            wdl_datalog::Subst::new(),
        )?)
    }

    /// Runs a grouped aggregation over a local query body — the engine
    /// behind "select and rank photos based on their annotations" (§3.5).
    /// Same locality rules as [`Peer::query`].
    pub fn aggregate(
        &self,
        body: &[crate::WBodyItem],
        group_by: &[Symbol],
        func: wdl_datalog::aggregate::AggFunc,
        over: Option<Symbol>,
    ) -> Result<Vec<wdl_datalog::aggregate::AggRow>> {
        use wdl_datalog::BodyItem as DItem;
        // Reuse query's compilation by round-tripping through it would lose
        // the body; compile the same way here.
        let mut compiled: Vec<DItem> = Vec::with_capacity(body.len());
        for item in body {
            match item {
                crate::WBodyItem::Literal(l) => {
                    let (Some(rel), Some(peer)) = (l.atom.rel.as_name(), l.atom.peer.as_name())
                    else {
                        return Err(WdlError::UnsafeDistribution(format!(
                            "aggregate atoms must have constant names: {}",
                            l.atom
                        )));
                    };
                    if peer != self.name {
                        return Err(WdlError::UnsafeDistribution(format!(
                            "aggregate atom {} is not local to {}",
                            l.atom, self.name
                        )));
                    }
                    let datom =
                        wdl_datalog::Atom::new(qualify(rel, self.name), l.atom.args.clone());
                    compiled.push(if l.negated {
                        DItem::not_atom(datom)
                    } else {
                        DItem::atom(datom)
                    });
                }
                crate::WBodyItem::Cmp { op, lhs, rhs } => {
                    compiled.push(DItem::cmp(*op, lhs.clone(), rhs.clone()));
                }
                crate::WBodyItem::Assign { var, expr } => {
                    compiled.push(DItem::assign(*var, expr.clone()));
                }
            }
        }
        let mut db = self.store.clone();
        db.absorb(&self.derived)?;
        let q = wdl_datalog::aggregate::AggQuery {
            body: compiled,
            group_by: group_by.to_vec(),
            func,
            over,
        };
        Ok(q.eval(&db)?)
    }

    /// Like [`Peer::relation_facts`] but as printable [`WFact`]s.
    pub fn facts_of(&self, rel: impl Into<Symbol>) -> Vec<WFact> {
        let rel = rel.into();
        self.relation_facts(rel)
            .into_iter()
            .map(|tuple| WFact {
                rel,
                peer: self.name,
                tuple,
            })
            .collect()
    }

    /// Records a store/contribution change for the incremental path. Cheap
    /// and unconditional; the log is drained (or discarded) every stage.
    ///
    /// This is also the single durability tap: every extensional-store
    /// mutation flows through here, so an attached sink sees exactly the
    /// durable changes. Transient remote contributions for *intensional*
    /// relations also pass through (the incremental path needs them) but
    /// are filtered out by store membership — only extensional qualified
    /// predicates are declared in `store`, and the qualified flattening is
    /// injective, so the test is exact.
    pub(crate) fn log_base_change(&mut self, fact: wdl_datalog::Fact, added: bool) {
        if let Some(sink) = &mut self.durability {
            if self.store.relation(fact.pred).is_some() {
                sink.record_fact(fact.pred, &fact.tuple, added);
            }
        }
        self.base_log.push((fact, added));
    }

    // ------------------------------------------------------------------
    // Session watermarks (reliable-delivery layer, `wdl-net::session`)
    // ------------------------------------------------------------------

    /// Records a session watermark observed by the transport layer:
    /// direction 0 = delivered-from-`remote`, 1 = acked-by-`remote`, at
    /// `(inc, seq)`. The update is monotone — an older incarnation, or an
    /// older seq within the same incarnation, is ignored — and is
    /// forwarded to the durability sink so the next group commit makes it
    /// crash-safe together with the facts it covers.
    pub fn note_session_watermark(&mut self, remote: Symbol, dir: u8, inc: u64, seq: u64) {
        let key = (remote, dir);
        let newer = match self.session_watermarks.get(&key) {
            Some(&(old_inc, old_seq)) => inc > old_inc || (inc == old_inc && seq > old_seq),
            None => true,
        };
        if !newer {
            return;
        }
        self.session_watermarks.insert(key, (inc, seq));
        if let Some(sink) = &mut self.durability {
            sink.record_watermark(remote, dir, inc, seq);
        }
    }

    /// Restores a watermark during recovery (snapshot load or WAL
    /// replay) without echoing it back into the durability sink.
    pub fn restore_session_watermark(&mut self, remote: Symbol, dir: u8, inc: u64, seq: u64) {
        let key = (remote, dir);
        let newer = match self.session_watermarks.get(&key) {
            Some(&(old_inc, old_seq)) => inc > old_inc || (inc == old_inc && seq > old_seq),
            None => true,
        };
        if newer {
            self.session_watermarks.insert(key, (inc, seq));
        }
    }

    /// The peer's session watermarks: `(remote, direction) -> (remote
    /// incarnation, cumulative seq)`; direction 0 = delivered, 1 = acked.
    pub fn session_watermarks(&self) -> &BTreeMap<(Symbol, u8), (u64, u64)> {
        &self.session_watermarks
    }

    /// Forgets what was previously sent to `remote`, so the next stage
    /// re-emits this peer's full derived contribution (and delegation
    /// set) to it. Called when the session layer detects that `remote`
    /// restarted with a new incarnation: the restarted peer lost its
    /// transient remote contributions, and the stage diff against
    /// `prev_sent` would otherwise never re-send them.
    pub fn resync_target(&mut self, remote: Symbol) {
        self.prev_sent.remove(&remote);
    }

    pub(crate) fn ensure_extensional(&mut self, rel: Symbol, arity: usize) -> Result<()> {
        match self.schema.kind_of(rel) {
            Some(RelationKind::Extensional) => {
                if self.schema.arity_of(rel) != Some(arity) {
                    return Err(WdlError::SchemaViolation(format!(
                        "relation {rel} has arity {:?}, got {arity}",
                        self.schema.arity_of(rel)
                    )));
                }
                Ok(())
            }
            Some(RelationKind::Intensional) => Err(WdlError::SchemaViolation(format!(
                "relation {rel} is intensional; only rules may write it"
            ))),
            None => self.declare(rel, arity, RelationKind::Extensional),
        }
    }
}

impl fmt::Debug for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Peer")
            .field("name", &self.name)
            .field("stage", &self.stage)
            .field("rules", &self.rules.len())
            .field("delegated", &self.delegated.len())
            .field("store_facts", &self.store.fact_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_insert() {
        let mut p = Peer::new("alice");
        p.declare("pictures", 2, RelationKind::Extensional).unwrap();
        assert!(p
            .insert_local("pictures", vec![Value::from(1), Value::from("a.jpg")])
            .unwrap());
        assert!(!p
            .insert_local("pictures", vec![Value::from(1), Value::from("a.jpg")])
            .unwrap());
        assert_eq!(p.relation_facts("pictures").len(), 1);
        assert_eq!(
            p.facts_of("pictures")[0].to_string(),
            "pictures@alice(1, \"a.jpg\")"
        );
    }

    #[test]
    fn auto_declaration_on_insert() {
        let mut p = Peer::new("bob");
        p.insert_local("notes", vec![Value::from("hi")]).unwrap();
        assert_eq!(
            p.schema().kind_of(Symbol::intern("notes")),
            Some(RelationKind::Extensional)
        );
    }

    #[test]
    fn cannot_insert_into_intensional() {
        let mut p = Peer::new("carol");
        p.declare("view", 1, RelationKind::Intensional).unwrap();
        assert!(matches!(
            p.insert_local("view", vec![Value::from(1)]),
            Err(WdlError::SchemaViolation(_))
        ));
    }

    #[test]
    fn delete_local_works() {
        let mut p = Peer::new("dave");
        p.insert_local("r", vec![Value::from(1)]).unwrap();
        assert!(p.delete_local("r", vec![Value::from(1)]).unwrap());
        assert!(!p.delete_local("r", vec![Value::from(1)]).unwrap());
        assert!(p.relation_facts("r").is_empty());
    }

    #[test]
    fn rule_lifecycle() {
        let mut p = Peer::new("erin");
        let id = p
            .add_rule(WRule::example_attendee_pictures("erin"))
            .unwrap();
        assert_eq!(p.rules().len(), 1);
        let replaced = p
            .replace_rule(id, WRule::example_attendee_pictures("erin"))
            .unwrap();
        assert_eq!(replaced.to_string(), p.rules()[0].rule.to_string());
        p.remove_rule(id).unwrap();
        assert!(p.rules().is_empty());
        assert!(p.remove_rule(id).is_err());
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut p = Peer::new("frank");
        let bad = WRule::new(
            crate::WAtom::at("out", "frank", vec![wdl_datalog::Term::var("x")]),
            vec![],
        );
        assert!(p.add_rule(bad).is_err());
    }

    #[test]
    fn arity_enforced_on_insert() {
        let mut p = Peer::new("gina");
        p.declare("r", 2, RelationKind::Extensional).unwrap();
        assert!(p.insert_local("r", vec![Value::from(1)]).is_err());
    }

    #[test]
    fn query_reads_store_and_derived() {
        use crate::{WAtom, WBodyItem};
        use wdl_datalog::{CmpOp, Term};
        let mut p = Peer::new("query-peer");
        p.insert_local("rate", vec![Value::from(1), Value::from(5)])
            .unwrap();
        p.insert_local("rate", vec![Value::from(2), Value::from(2)])
            .unwrap();
        let body = vec![
            WAtom::at("rate", "query-peer", vec![Term::var("id"), Term::var("r")]).into(),
            WBodyItem::cmp(CmpOp::Ge, Term::var("r"), Term::cst(4)),
        ];
        let rows = p.query(&body).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(Symbol::intern("id")), Some(&Value::from(1)));
    }

    #[test]
    fn aggregate_groups_and_folds() {
        use crate::WAtom;
        use wdl_datalog::aggregate::AggFunc;
        use wdl_datalog::Term;
        let mut p = Peer::new("agg-peer");
        for (pic, r) in [(1, 5), (1, 3), (2, 4)] {
            p.insert_local("rate", vec![Value::from(pic), Value::from(r)])
                .unwrap();
        }
        let body =
            vec![WAtom::at("rate", "agg-peer", vec![Term::var("pic"), Term::var("r")]).into()];
        let rows = p
            .aggregate(
                &body,
                &[Symbol::intern("pic")],
                AggFunc::Avg,
                Some(Symbol::intern("r")),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, Value::from(4)); // pic 1: (5+3)/2
        assert_eq!(rows[1].value, Value::from(4)); // pic 2: 4
    }

    #[test]
    fn query_rejects_remote_atoms() {
        use crate::WAtom;
        use wdl_datalog::Term;
        let p = Peer::new("query-local");
        let body = vec![WAtom::at("r", "elsewhere", vec![Term::var("x")]).into()];
        assert!(matches!(
            p.query(&body),
            Err(WdlError::UnsafeDistribution(_))
        ));
    }

    /// Re-tuning the worker count keeps the materialized view alive (no
    /// O(database) rebuild) and threads the count into its program.
    #[test]
    fn set_eval_workers_retunes_live_view_in_place() {
        use crate::{WAtom, WRule};
        use wdl_datalog::Term;
        let mut p = Peer::new("tune");
        p.declare("v", 1, RelationKind::Intensional).unwrap();
        p.insert_local("b", vec![Value::from(1)]).unwrap();
        p.add_rule(WRule::new(
            WAtom::at("v", "tune", vec![Term::var("x")]),
            vec![WAtom::at("b", "tune", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        p.run_stage().unwrap();
        let epoch = p.ruleset_epoch;
        assert_eq!(p.incr.as_ref().unwrap().view.program().workers(), 1);

        p.set_eval_workers(3);
        assert_eq!(p.ruleset_epoch, epoch, "no recompile forced");
        assert_eq!(p.incr.as_ref().unwrap().view.program().workers(), 3);
        let out = p.run_stage().unwrap();
        assert!(!out.changed, "retune does not disturb the view");
        assert_eq!(p.relation_facts("v").len(), 1);

        // A later rebuild (rule change) compiles with the tuned count.
        p.add_rule(WRule::new(
            WAtom::at("v", "tune", vec![Term::var("x")]),
            vec![WAtom::at("c", "tune", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.incr.as_ref().unwrap().view.program().workers(), 3);
    }

    #[test]
    fn explicit_remote_updates_buffer_in_outbox() {
        let mut p = Peer::new("henry");
        p.insert_remote("sigmod", "pictures", vec![Value::from(1)]);
        p.delete_remote("sigmod", "pictures", vec![Value::from(2)]);
        assert!(p.has_pending_input());
        assert_eq!(p.outbox_explicit.len(), 2);
    }
}
