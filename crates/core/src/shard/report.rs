//! Per-round reporting for the sharded runtime.

use crate::StageStats;
use std::collections::HashMap;
use wdl_datalog::Symbol;

/// Result of one [`crate::shard::ShardedRuntime::tick`] round.
///
/// Superset of the information in [`crate::runtime::TickReport`], extended
/// with the scheduling counters that make scale-out behaviour observable:
/// how many peers actually ran versus how many exist, and how many
/// messages the admission controller held back for the next round.
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    /// The 1-based round this report describes.
    pub round: u64,
    /// Messages routed at the end of the round (delivered next round).
    pub messages: usize,
    /// Messages whose target peer does not exist in this runtime.
    pub undeliverable: usize,
    /// Whether any peer that ran observed or produced a change.
    pub changed: bool,
    /// Peers that actually executed a stage this round (had a non-empty
    /// inbox, buffered local updates, or were mutated since their last
    /// stage). Quiescent peers are skipped and cost nothing.
    pub peers_run: usize,
    /// Total peers registered in the runtime this round.
    pub peers_total: usize,
    /// Messages withheld by per-peer inbox admission control; they stay
    /// queued and are delivered in arrival order over subsequent rounds.
    pub deferred: usize,
    /// Per-peer stage stats for the peers that ran (collected only when
    /// [`crate::shard::ShardedRuntime::set_collect_stats`] is on).
    pub stats: HashMap<Symbol, StageStats>,
}

impl ShardReport {
    /// Fraction of registered peers that executed a stage this round —
    /// the headline scale metric: a bursty workload over a large network
    /// should keep this near `active / total`, not near 1.
    pub fn active_fraction(&self) -> f64 {
        if self.peers_total == 0 {
            0.0
        } else {
            self.peers_run as f64 / self.peers_total as f64
        }
    }
}

impl std::fmt::Display for ShardReport {
    /// One status line per round, the shape a REPL or log tail wants:
    ///
    /// ```text
    /// round 3: ran 500/100000 peers (0.5% active), routed 1000, deferred 250, undeliverable 0, changed
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "round {}: ran {}/{} peers ({:.1}% active), routed {}, deferred {}, undeliverable {}, {}",
            self.round,
            self.peers_run,
            self.peers_total,
            self.active_fraction() * 100.0,
            self.messages,
            self.deferred,
            self.undeliverable,
            if self.changed { "changed" } else { "quiet" },
        )
    }
}
