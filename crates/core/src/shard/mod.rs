//! Sharded scale-out runtime: inbox-driven scheduling over worker shards.
//!
//! [`crate::runtime::LocalRuntime`] runs every peer every round — the right
//! reference semantics, but O(total peers) per round even when almost all
//! of them are idle. A conference with 10⁵–10⁶ attendee peers and a few
//! hundred actively-publishing ones spends its time ticking the quiet
//! majority. [`ShardedRuntime`] keeps the observable semantics and drops
//! that cost:
//!
//! * **Sharding** — peers are partitioned round-robin across a fixed set
//!   of long-lived worker threads ([`self::worker`]), each owning its
//!   peers' full state. No locks: the coordinator talks to shards over
//!   channels, and a peer lives on exactly one shard for its lifetime.
//! * **Inbox-driven scheduling** — a shard runs a peer's stage only when
//!   the peer has pending input (messages, buffered self-updates) or was
//!   mutated since its last stage. A quiescent peer costs *zero* per
//!   round: it is not iterated, not polled, not cloned.
//! * **Batched routing** — each round's outgoing messages are merged
//!   coordinator-side in **global peer-insertion order** (workers tag
//!   each message with the sender's insertion sequence number) and routed
//!   once, so every inbox receives exactly the message sequence the
//!   sequential [`crate::runtime::LocalRuntime::tick`] would have
//!   produced. Messages produced in round *t* are delivered in round
//!   *t+1*, also as in the reference.
//! * **Admission control** — a per-peer, per-round inbox budget
//!   ([`ShardedRuntime::set_inbox_budget`]) bounds how much of a bursty
//!   hub's fan-in is admitted per round; overflow stays queued in arrival
//!   order and is counted as `deferred` in the [`ShardReport`]. With the
//!   default unlimited budget, execution is round-for-round
//!   observationally identical to the reference runtime
//!   (`tests/shard_parity.rs` pins this across scenario generators,
//!   seeds, and shard counts); with a finite budget the same quiescent
//!   state is reached over more rounds.
//!
//! The one intentional divergence from `LocalRuntime::tick`: error timing
//! matches [`crate::runtime::LocalRuntime::par_tick`] — a round completes
//! everywhere and the failure of the earliest peer in insertion order is
//! reported, with the failing peer's input retained for retry.

mod report;
mod worker;

pub use report::ShardReport;

use crate::runtime::QuiescenceReport;
use crate::{Message, Peer, Result, WdlError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::thread::JoinHandle;
use wdl_datalog::{Symbol, Tuple, Value};
use worker::{Cmd, RoundResult, Worker};

struct ShardHandle {
    cmd: Sender<Cmd>,
    results: Receiver<RoundResult>,
    join: Option<JoinHandle<()>>,
}

/// Where a peer lives: its shard and its global insertion sequence.
#[derive(Clone, Copy)]
struct Loc {
    shard: usize,
    seq: u64,
}

/// Messages awaiting delivery to one peer, in arrival order.
struct PendingEntry {
    name: Symbol,
    queue: VecDeque<Message>,
}

/// A multi-threaded network of WebdamLog peers that schedules only the
/// peers with work to do. See the [module docs](self) for the design.
///
/// ```
/// use wdl_core::{Peer, shard::ShardedRuntime};
/// use wdl_datalog::Value;
///
/// let mut rt = ShardedRuntime::new(4);
/// rt.add_peer(Peer::new("alice")).unwrap();
/// rt.add_peer(Peer::new("bob")).unwrap();
/// rt.insert_local("alice", "note", vec![Value::from("hi")]).unwrap();
/// let report = rt.run_to_quiescence(8).unwrap();
/// assert!(report.quiescent);
/// assert_eq!(rt.relation_facts("alice", "note").unwrap().len(), 1);
/// ```
pub struct ShardedRuntime {
    shards: Vec<ShardHandle>,
    directory: HashMap<Symbol, Loc>,
    /// Undelivered routed messages, keyed by target peer's insertion
    /// sequence so per-round admission iterates deterministically and
    /// costs O(peers with pending input), not O(total peers).
    pending: BTreeMap<u64, PendingEntry>,
    next_seq: u64,
    round: u64,
    inbox_budget: usize,
    collect_stats: bool,
    /// Whether owned peers currently carry trace sinks.
    tracing: bool,
    /// Coordinator-side trace aggregation; kept after `set_tracing(false)`
    /// so collected results stay queryable.
    agg: Option<wdl_obs::Aggregator>,
}

impl ShardedRuntime {
    /// Creates a runtime with `shards` worker threads (clamped to ≥ 1).
    pub fn new(shards: usize) -> ShardedRuntime {
        let shards = (0..shards.max(1))
            .map(|i| {
                let (cmd_tx, cmd_rx) = unbounded();
                let (res_tx, res_rx) = unbounded();
                let join = std::thread::Builder::new()
                    .name(format!("wdl-shard-{i}"))
                    .spawn(move || Worker::new(cmd_rx, res_tx).run())
                    .expect("spawn shard worker");
                ShardHandle {
                    cmd: cmd_tx,
                    results: res_rx,
                    join: Some(join),
                }
            })
            .collect();
        ShardedRuntime {
            shards,
            directory: HashMap::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            round: 0,
            inbox_budget: usize::MAX,
            collect_stats: true,
            tracing: false,
            agg: None,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Caps how many queued messages one peer ingests per round (clamped
    /// to ≥ 1); overflow carries to later rounds in arrival order and is
    /// reported as [`ShardReport::deferred`]. Default: unlimited.
    pub fn set_inbox_budget(&mut self, budget: usize) {
        self.inbox_budget = budget.max(1);
    }

    /// The current per-peer, per-round inbox admission budget.
    pub fn inbox_budget(&self) -> usize {
        self.inbox_budget
    }

    /// Toggles per-peer [`crate::StageStats`] collection in tick reports.
    ///
    /// **On by default** — every [`ShardedRuntime::tick`] ships each run
    /// peer's [`crate::StageStats`] back through the result channel and
    /// into [`ShardReport::stats`]. At bench scale (10⁵+ peers, bursty
    /// rounds) that per-round map is measurable overhead with no
    /// consumer, so large-scale runs opt **out** with
    /// `set_collect_stats(false)`; the cheap scalar counters on the
    /// report (`peers_run`, `messages`, `deferred`, …) are unaffected.
    pub fn set_collect_stats(&mut self, collect: bool) {
        self.collect_stats = collect;
    }

    /// Whether per-peer stage stats are collected into tick reports.
    pub fn collect_stats(&self) -> bool {
        self.collect_stats
    }

    /// Turns structured tracing on or off across every shard.
    ///
    /// Turning it **on** installs a buffering [`crate::TraceSink`] on every
    /// owned peer — without waking quiescent peers (tracing is a tuning
    /// knob, not input) — and aggregates on the coordinator. Each tick drains the run peers' buffers (shard
    /// order, ascending sequence within a shard), records one
    /// [`crate::TraceEvent::ShardRound`] with the round's routing/deferral
    /// counters, and closes the aggregator round. Re-enabling **resumes**
    /// an existing aggregator — toggling is cheap and lossless; call
    /// [`ShardedRuntime::reset_trace`] for a fresh one. Turning it **off**
    /// clears the sinks but keeps the aggregator queryable.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if on && self.agg.is_none() {
            self.agg = Some(wdl_obs::Aggregator::new());
        }
        for shard in 0..self.shards.len() {
            self.send(shard, Cmd::SetTracing(on));
        }
    }

    /// Discards all collected trace data. The next
    /// [`ShardedRuntime::set_tracing`] (or the current session, if tracing
    /// is on) starts from an empty aggregator.
    pub fn reset_trace(&mut self) {
        self.agg = self.tracing.then(wdl_obs::Aggregator::new);
    }

    /// True iff tracing is currently enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// The trace aggregator, if profiling ever ran
    /// ([`ShardedRuntime::set_tracing`]).
    pub fn trace(&self) -> Option<&wdl_obs::Aggregator> {
        self.agg.as_ref()
    }

    /// Mutable access to the trace aggregator (e.g. for JSONL export).
    pub fn trace_mut(&mut self) -> Option<&mut wdl_obs::Aggregator> {
        self.agg.as_mut()
    }

    /// Adds a peer, assigning it round-robin to a shard. Like
    /// [`crate::runtime::LocalRuntime::add_peer`], peers added mid-run
    /// participate from the next round, and a taken name is the
    /// recoverable [`WdlError::DuplicatePeer`].
    pub fn add_peer(&mut self, peer: Peer) -> Result<Symbol> {
        let name = peer.name();
        if self.directory.contains_key(&name) {
            return Err(WdlError::DuplicatePeer(name.to_string()));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = (seq % self.shards.len() as u64) as usize;
        self.directory.insert(name, Loc { shard, seq });
        self.send(
            shard,
            Cmd::AddPeer {
                seq,
                peer: Box::new(peer),
            },
        );
        Ok(name)
    }

    /// Removes a peer and returns it. Messages already routed to it but
    /// not yet ingested are moved into its inbox, preserving
    /// [`crate::runtime::LocalRuntime::remove_peer`]'s contract that the
    /// inbox travels with the peer.
    pub fn remove_peer(&mut self, name: impl Into<Symbol>) -> Option<Peer> {
        let name = name.into();
        let loc = self.directory.remove(&name)?;
        let (tx, rx) = unbounded();
        self.send(loc.shard, Cmd::RemovePeer { name, reply: tx });
        let mut peer = *rx.recv().expect("shard worker alive")?;
        if let Some(entry) = self.pending.remove(&loc.seq) {
            for msg in entry.queue {
                peer.enqueue(msg);
            }
        }
        Some(peer)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True iff no peers.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Names of all peers, in insertion order.
    pub fn peer_names(&self) -> Vec<Symbol> {
        let mut named: Vec<(u64, Symbol)> = self
            .directory
            .iter()
            .map(|(name, loc)| (loc.seq, *name))
            .collect();
        named.sort_by_key(|(seq, _)| *seq);
        named.into_iter().map(|(_, name)| name).collect()
    }

    /// True iff a peer with this name exists.
    pub fn contains(&self, name: impl Into<Symbol>) -> bool {
        self.directory.contains_key(&name.into())
    }

    /// Runs a read-only closure against a peer on its owning shard and
    /// returns the result, or `None` if the peer does not exist. The
    /// closure must be `Send + 'static` — it crosses a thread boundary.
    pub fn with_peer<R, F>(&self, name: impl Into<Symbol>, f: F) -> Option<R>
    where
        F: FnOnce(&Peer) -> R + Send + 'static,
        R: Send + 'static,
    {
        let name = name.into();
        let loc = *self.directory.get(&name)?;
        let (tx, rx) = unbounded();
        self.send(
            loc.shard,
            Cmd::WithPeer {
                name,
                job: Box::new(move |peer| {
                    let _ = tx.send(f(peer));
                }),
            },
        );
        rx.recv().ok()
    }

    /// Runs a mutating closure against a peer on its owning shard and
    /// returns the result, or `None` if the peer does not exist. The peer
    /// is marked dirty: its stage runs next round even if no message
    /// arrives (mirroring how `LocalRuntime::tick` runs every peer after
    /// an out-of-band mutation).
    pub fn with_peer_mut<R, F>(&mut self, name: impl Into<Symbol>, f: F) -> Option<R>
    where
        F: FnOnce(&mut Peer) -> R + Send + 'static,
        R: Send + 'static,
    {
        let name = name.into();
        let loc = *self.directory.get(&name)?;
        let (tx, rx) = unbounded();
        self.send(
            loc.shard,
            Cmd::WithPeerMut {
                name,
                job: Box::new(move |peer| {
                    let _ = tx.send(f(peer));
                }),
            },
        );
        rx.recv().ok()
    }

    /// [`Peer::insert_local`] on a named peer.
    pub fn insert_local(
        &mut self,
        peer: impl Into<Symbol>,
        rel: impl Into<Symbol>,
        values: Vec<Value>,
    ) -> Result<bool> {
        let peer = peer.into();
        let rel = rel.into();
        self.with_peer_mut(peer, move |p| p.insert_local(rel, values))
            .ok_or_else(|| WdlError::UnknownPeer(peer.to_string()))?
    }

    /// [`Peer::delete_local`] on a named peer.
    pub fn delete_local(
        &mut self,
        peer: impl Into<Symbol>,
        rel: impl Into<Symbol>,
        values: Vec<Value>,
    ) -> Result<bool> {
        let peer = peer.into();
        let rel = rel.into();
        self.with_peer_mut(peer, move |p| p.delete_local(rel, values))
            .ok_or_else(|| WdlError::UnknownPeer(peer.to_string()))?
    }

    /// [`Peer::relation_facts`] on a named peer (`None` if no such peer).
    pub fn relation_facts(
        &self,
        peer: impl Into<Symbol>,
        rel: impl Into<Symbol>,
    ) -> Option<Vec<Tuple>> {
        let rel = rel.into();
        self.with_peer(peer, move |p| p.relation_facts(rel))
    }

    /// Injects a message from outside the runtime. It joins the target's
    /// pending queue and is ingested (budget permitting) next round.
    /// Returns false and drops the message if the target is unknown.
    pub fn deliver(&mut self, msg: Message) -> bool {
        match self.directory.get(&msg.to) {
            Some(loc) => {
                self.pending
                    .entry(loc.seq)
                    .or_insert_with(|| PendingEntry {
                        name: msg.to,
                        queue: VecDeque::new(),
                    })
                    .queue
                    .push_back(msg);
                true
            }
            None => false,
        }
    }

    /// Messages routed to a peer but not yet ingested, in delivery order.
    /// At a tick boundary (unlimited budget) this is exactly the inbox the
    /// reference runtime's peer would hold — the parity suite compares
    /// the two, canonicalized.
    pub fn pending_messages(&self, name: impl Into<Symbol>) -> Vec<Message> {
        let name = name.into();
        self.directory
            .get(&name)
            .and_then(|loc| self.pending.get(&loc.seq))
            .map(|entry| entry.queue.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Runs one round: admit pending messages under the per-peer budget,
    /// run every shard's active peers concurrently, then merge and route
    /// the produced messages in global insertion order (delivered next
    /// round). Cost is O(active peers + routed messages).
    pub fn tick(&mut self) -> Result<ShardReport> {
        self.round += 1;
        let mut report = ShardReport {
            round: self.round,
            peers_total: self.directory.len(),
            ..ShardReport::default()
        };

        // Admission: drain each pending queue (insertion-sequence order,
        // deterministic) up to the budget into its shard's delivery batch.
        let mut batches: Vec<Vec<Message>> = self.shards.iter().map(|_| Vec::new()).collect();
        let mut emptied: Vec<u64> = Vec::new();
        for (&seq, entry) in self.pending.iter_mut() {
            let take = self.inbox_budget.min(entry.queue.len());
            match self.directory.get(&entry.name) {
                Some(loc) => {
                    batches[loc.shard].extend(entry.queue.drain(..take));
                    report.deferred += entry.queue.len();
                }
                // Unreachable today (remove_peer drains the queue), but a
                // directory miss must not wedge the queue forever.
                None => {
                    report.undeliverable += entry.queue.len();
                    entry.queue.clear();
                }
            }
            if entry.queue.is_empty() {
                emptied.push(seq);
            }
        }
        for seq in emptied {
            self.pending.remove(&seq);
        }

        // Fan out, then collect every shard's result (a barrier, like the
        // reference tick's end-of-round routing point).
        for (shard, deliveries) in batches.into_iter().enumerate() {
            self.send(
                shard,
                Cmd::Round {
                    deliveries,
                    collect_stats: self.collect_stats,
                },
            );
        }
        let mut outbox: Vec<(u64, Message)> = Vec::new();
        let mut first_err: Option<(u64, WdlError)> = None;
        for shard in &self.shards {
            let result = shard.results.recv().expect("shard worker alive");
            report.changed |= result.changed;
            report.peers_run += result.peers_run;
            report.undeliverable += result.undeliverable;
            for (name, stats) in result.stats {
                report.stats.insert(name, stats);
            }
            if !result.trace.is_empty() {
                if let Some(agg) = self.agg.as_mut() {
                    agg.ingest(&result.trace);
                }
            }
            outbox.extend(result.outbox);
            for (seq, err) in result.errors {
                if first_err.as_ref().is_none_or(|(s, _)| seq < *s) {
                    first_err = Some((seq, err));
                }
            }
        }
        if let Some((_, err)) = first_err {
            return Err(err);
        }

        // Merge: stable sort by sender insertion sequence reproduces the
        // sequential tick's routing order exactly.
        outbox.sort_by_key(|(seq, _)| *seq);
        for (_, msg) in outbox {
            if self.deliver(msg) {
                report.messages += 1;
            } else {
                report.undeliverable += 1;
            }
        }
        if self.tracing {
            if let Some(agg) = self.agg.as_mut() {
                agg.ingest(&[crate::TraceEvent::ShardRound {
                    round: self.round,
                    routed: report.messages as u64,
                    deferred: report.deferred as u64,
                    peers_run: report.peers_run as u64,
                    peers_total: report.peers_total as u64,
                }]);
                agg.end_round();
            }
        }
        Ok(report)
    }

    /// Ticks until a fully quiet round — nothing changed, nothing sent,
    /// nothing deferred — or until `max_rounds` is exhausted. With an
    /// unlimited inbox budget the round count matches
    /// [`crate::runtime::LocalRuntime::run_to_quiescence`].
    pub fn run_to_quiescence(&mut self, max_rounds: usize) -> Result<QuiescenceReport> {
        let mut report = QuiescenceReport::default();
        for _ in 0..max_rounds {
            let tick = self.tick()?;
            report.rounds += 1;
            report.messages += tick.messages;
            report.undeliverable += tick.undeliverable;
            if !tick.changed && tick.messages == 0 && tick.deferred == 0 {
                report.quiescent = true;
                return Ok(report);
            }
        }
        Ok(report)
    }

    fn send(&self, shard: usize, cmd: Cmd) {
        if self.shards[shard].cmd.send(cmd).is_err() {
            panic!("shard worker {shard} is gone");
        }
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            let _ = shard.cmd.send(Cmd::Shutdown);
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("shards", &self.shards.len())
            .field("peers", &self.directory.len())
            .field("round", &self.round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::UntrustedPolicy;
    use crate::{Payload, WRule};

    fn open_peer(name: &str) -> Peer {
        let mut p = Peer::new(name);
        p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
        p
    }

    #[test]
    fn duplicate_peer_is_recoverable() {
        let mut rt = ShardedRuntime::new(2);
        rt.add_peer(Peer::new("dup")).unwrap();
        match rt.add_peer(Peer::new("dup")) {
            Err(WdlError::DuplicatePeer(name)) => assert_eq!(name, "dup"),
            other => panic!("expected DuplicatePeer, got {other:?}"),
        }
        assert_eq!(rt.len(), 1);
        rt.add_peer(Peer::new("dup2")).unwrap();
        assert!(rt.run_to_quiescence(4).unwrap().quiescent);
    }

    #[test]
    fn undeliverable_messages_counted() {
        let mut rt = ShardedRuntime::new(3);
        let mut p = open_peer("solo");
        p.insert_remote("ghost", "r", vec![Value::from(1)]);
        rt.add_peer(p).unwrap();
        let tick = rt.tick().unwrap();
        assert_eq!(tick.undeliverable, 1);
        assert_eq!(tick.messages, 0);
        assert_eq!(tick.peers_run, 1);
    }

    /// The paper's delegation round trip runs identically on the sharded
    /// runtime: install, derive, then revoke on deselection — across
    /// shard boundaries.
    #[test]
    fn delegation_round_trip_across_shards() {
        let mut rt = ShardedRuntime::new(2);
        rt.add_peer(open_peer("jules")).unwrap();
        rt.add_peer(open_peer("emilien")).unwrap();
        rt.with_peer_mut("jules", |jules| {
            jules
                .declare("attendeePictures", 4, crate::RelationKind::Intensional)
                .unwrap();
            jules
                .add_rule(WRule::example_attendee_pictures("jules"))
                .unwrap();
        })
        .unwrap();
        rt.insert_local("jules", "selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        rt.insert_local(
            "emilien",
            "pictures",
            vec![
                Value::from(1),
                Value::from("sea.jpg"),
                Value::from("emilien"),
                Value::bytes(&[1, 2, 3]),
            ],
        )
        .unwrap();

        let r = rt.run_to_quiescence(16).unwrap();
        assert!(r.quiescent, "did not quiesce: {r:?}");
        assert_eq!(
            rt.relation_facts("jules", "attendeePictures")
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            rt.with_peer("emilien", |p| p.installed_delegations().len())
                .unwrap(),
            1
        );

        rt.delete_local("jules", "selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        let r = rt.run_to_quiescence(16).unwrap();
        assert!(r.quiescent);
        assert!(rt
            .relation_facts("jules", "attendeePictures")
            .unwrap()
            .is_empty());
        assert!(rt
            .with_peer("emilien", |p| p.installed_delegations().is_empty())
            .unwrap());
    }

    /// Quiescent peers are skipped: after convergence, a burst touching
    /// one peer re-runs only the peers the burst reaches, not the fleet.
    #[test]
    fn quiescent_peers_are_skipped() {
        let mut rt = ShardedRuntime::new(4);
        for i in 0..50 {
            rt.add_peer(open_peer(&format!("idle-{i}"))).unwrap();
        }
        rt.add_peer(open_peer("hub")).unwrap();
        let r = rt.run_to_quiescence(8).unwrap();
        assert!(r.quiescent);

        rt.insert_local("hub", "item", vec![Value::from(1)])
            .unwrap();
        let tick = rt.tick().unwrap();
        assert_eq!(tick.peers_run, 1, "only the dirty hub runs");
        assert_eq!(tick.peers_total, 51);
        assert!(tick.active_fraction() < 0.05);
        // The quiet confirming round also only re-checks the hub.
        let tick = rt.tick().unwrap();
        assert!(tick.peers_run <= 1);
    }

    /// A finite inbox budget defers hub fan-in across rounds but reaches
    /// the same final state, with `deferred` accounting for the carry.
    #[test]
    fn admission_control_carries_overflow() {
        let build = |budget: Option<usize>| {
            let mut rt = ShardedRuntime::new(2);
            if let Some(b) = budget {
                rt.set_inbox_budget(b);
            }
            rt.add_peer(open_peer("hub")).unwrap();
            for i in 0..10 {
                let mut p = open_peer(&format!("fan-{i}"));
                p.insert_remote("hub", "sightings", vec![Value::from(i)]);
                rt.add_peer(p).unwrap();
            }
            rt
        };

        let mut limited = build(Some(2));
        let mut saw_deferred = false;
        let mut rounds = 0;
        loop {
            let tick = limited.tick().unwrap();
            saw_deferred |= tick.deferred > 0;
            rounds += 1;
            assert!(rounds < 64, "did not converge under budget");
            if !tick.changed && tick.messages == 0 && tick.deferred == 0 {
                break;
            }
        }
        assert!(saw_deferred, "budget of 2 over fan-in of 10 must defer");

        let mut unlimited = build(None);
        let quick = unlimited.run_to_quiescence(16).unwrap();
        assert!(quick.quiescent);
        assert!(
            rounds > quick.rounds,
            "deferral must cost extra rounds ({rounds} vs {})",
            quick.rounds
        );
        let mut a = limited.relation_facts("hub", "sightings").unwrap();
        let mut b = unlimited.relation_facts("hub", "sightings").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "budgeted run must converge to the same state");
    }

    /// `remove_peer` hands back the peer with its undelivered messages
    /// moved into its inbox, and the name becomes reusable.
    #[test]
    fn remove_peer_preserves_pending_inbox() {
        let mut rt = ShardedRuntime::new(2);
        rt.add_peer(open_peer("target")).unwrap();
        rt.add_peer(open_peer("other")).unwrap();
        rt.run_to_quiescence(4).unwrap();
        rt.deliver(Message::new(
            Symbol::intern("other"),
            Symbol::intern("target"),
            Payload::Facts {
                kind: crate::FactKind::Persistent,
                additions: vec![crate::WFact::new("mail", "target", [Value::from("hi")])],
                retractions: vec![],
            },
        ));
        assert_eq!(rt.pending_messages("target").len(), 1);
        let removed = rt.remove_peer("target").unwrap();
        assert_eq!(removed.inbox().len(), 1);
        assert!(rt.pending_messages("target").is_empty());
        assert!(rt.remove_peer("target").is_none());
        rt.add_peer(open_peer("target")).unwrap();
        assert_eq!(rt.len(), 2);
        assert!(rt.run_to_quiescence(4).unwrap().quiescent);
    }

    /// Peer names come back in global insertion order regardless of which
    /// shard owns them.
    #[test]
    fn peer_names_in_insertion_order() {
        let mut rt = ShardedRuntime::new(3);
        for name in ["pa", "pb", "pc", "pd", "pe"] {
            rt.add_peer(Peer::new(name)).unwrap();
        }
        rt.remove_peer("pc");
        let names: Vec<String> = rt.peer_names().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, vec!["pa", "pb", "pd", "pe"]);
        assert!(rt.contains("pd"));
        assert!(!rt.contains("pc"));
    }
}
