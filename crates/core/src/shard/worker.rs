//! The shard worker: a long-lived thread owning a stable subset of peers.
//!
//! Each worker keeps its peers in a `BTreeMap` keyed by **global insertion
//! sequence number** — the order peers were added to the whole runtime, not
//! to this shard — plus an `active` set of the peers that must run next
//! round. A peer enters the active set when a message is delivered to it,
//! when it is mutated through [`Cmd::WithPeerMut`], or when it is first
//! added (its pre-loaded store and rules have never run a stage); it leaves
//! the set after a stage that consumed all of its pending input. A round
//! therefore costs O(active peers in this shard), not O(peers in this
//! shard): a quiescent peer is never touched.
//!
//! Tagging every outgoing message with the sender's sequence number lets
//! the coordinator merge the shard outboxes back into exactly the routing
//! order [`crate::runtime::LocalRuntime::tick`] would have used.

use crate::{Message, Peer, StageStats, WdlError};
use crossbeam::channel::{Receiver, Sender};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use wdl_datalog::Symbol;

/// A job shipped to a worker to observe one of its peers in place.
pub(crate) type ReadJob = Box<dyn FnOnce(&Peer) + Send>;
/// A job shipped to a worker to mutate one of its peers in place.
pub(crate) type WriteJob = Box<dyn FnOnce(&mut Peer) + Send>;

/// Commands the coordinator sends to a shard worker.
pub(crate) enum Cmd {
    /// Take ownership of a peer (global insertion sequence `seq`).
    AddPeer { seq: u64, peer: Box<Peer> },
    /// Give a peer back (inbox intact); replies `None` if unknown.
    RemovePeer {
        name: Symbol,
        reply: Sender<Option<Box<Peer>>>,
    },
    /// Run a read-only job against a peer. If the peer is unknown the job
    /// is dropped unrun (the caller observes its reply channel closing).
    WithPeer { name: Symbol, job: ReadJob },
    /// Run a mutating job against a peer and mark it active: the next
    /// round must run its stage even if no message arrives.
    WithPeerMut { name: Symbol, job: WriteJob },
    /// Ingest this round's admitted deliveries, run every active peer's
    /// stage, and reply with a [`RoundResult`] on the result channel.
    Round {
        deliveries: Vec<Message>,
        collect_stats: bool,
    },
    /// Install (or clear) trace sinks on every owned peer — including
    /// quiescent ones, *without* activating them: tracing is a tuning
    /// knob, not input, and must not wake the idle fleet.
    SetTracing(bool),
    /// Exit the worker loop.
    Shutdown,
}

/// What one shard produced in one round.
#[derive(Default)]
pub(crate) struct RoundResult {
    /// Outgoing messages tagged with the sender's global sequence number,
    /// in ascending sequence order (each sender's emission order intact).
    pub(crate) outbox: Vec<(u64, Message)>,
    pub(crate) changed: bool,
    pub(crate) peers_run: usize,
    /// Deliveries addressed to a peer this shard no longer owns.
    pub(crate) undeliverable: usize,
    pub(crate) stats: Vec<(Symbol, StageStats)>,
    /// Stage failures, tagged with the failing peer's sequence number so
    /// the coordinator can report the earliest one in insertion order.
    pub(crate) errors: Vec<(u64, WdlError)>,
    /// Trace events drained from the peers that ran, in ascending
    /// sequence order (empty unless tracing is on).
    pub(crate) trace: Vec<crate::TraceEvent>,
}

/// One shard's thread-local state and command loop.
pub(crate) struct Worker {
    rx: Receiver<Cmd>,
    results: Sender<RoundResult>,
    /// Global insertion sequence → peer, iterated in ascending order.
    slots: BTreeMap<u64, Peer>,
    by_name: HashMap<Symbol, u64>,
    /// Sequence numbers of peers that must run next round.
    active: BTreeSet<u64>,
    /// Whether owned peers carry trace sinks (late-added peers inherit).
    tracing: bool,
}

impl Worker {
    pub(crate) fn new(rx: Receiver<Cmd>, results: Sender<RoundResult>) -> Worker {
        Worker {
            rx,
            results,
            slots: BTreeMap::new(),
            by_name: HashMap::new(),
            active: BTreeSet::new(),
            tracing: false,
        }
    }

    pub(crate) fn run(mut self) {
        while let Ok(cmd) = self.rx.recv() {
            match cmd {
                Cmd::AddPeer { seq, peer } => {
                    self.by_name.insert(peer.name(), seq);
                    let mut peer = *peer;
                    if self.tracing {
                        peer.set_trace_sink(Box::new(wdl_obs::BufferSink::new()));
                    }
                    self.slots.insert(seq, peer);
                    // A new peer's first stage has never run: its initial
                    // facts and rules may derive, delegate, or ship.
                    self.active.insert(seq);
                }
                Cmd::RemovePeer { name, reply } => {
                    let peer = self.by_name.remove(&name).map(|seq| {
                        self.active.remove(&seq);
                        Box::new(self.slots.remove(&seq).expect("by_name maps into slots"))
                    });
                    let _ = reply.send(peer);
                }
                Cmd::WithPeer { name, job } => {
                    if let Some(seq) = self.by_name.get(&name) {
                        job(&self.slots[seq]);
                    }
                }
                Cmd::WithPeerMut { name, job } => {
                    if let Some(&seq) = self.by_name.get(&name) {
                        job(self.slots.get_mut(&seq).expect("mapped"));
                        self.active.insert(seq);
                    }
                }
                Cmd::Round {
                    deliveries,
                    collect_stats,
                } => {
                    let result = self.round(deliveries, collect_stats);
                    if self.results.send(result).is_err() {
                        break; // coordinator gone
                    }
                }
                Cmd::SetTracing(on) => {
                    self.tracing = on;
                    for peer in self.slots.values_mut() {
                        if on {
                            // Keep an already-installed sink: its buffer
                            // capacity is warm, and resume must be cheap.
                            if !peer.tracing() {
                                peer.set_trace_sink(Box::new(wdl_obs::BufferSink::new()));
                            }
                        } else {
                            peer.clear_trace_sink();
                        }
                    }
                }
                Cmd::Shutdown => break,
            }
        }
    }

    fn round(&mut self, deliveries: Vec<Message>, collect_stats: bool) -> RoundResult {
        let mut result = RoundResult::default();
        for msg in deliveries {
            match self.by_name.get(&msg.to) {
                Some(&seq) => {
                    self.slots.get_mut(&seq).expect("mapped").enqueue(msg);
                    self.active.insert(seq);
                }
                None => result.undeliverable += 1,
            }
        }
        // Snapshot: stages can park input for the *next* round (buffered
        // self-updates), which re-activates a peer mid-iteration.
        let run_now: Vec<u64> = self.active.iter().copied().collect();
        for seq in run_now {
            let peer = self.slots.get_mut(&seq).expect("active maps into slots");
            match peer.run_stage() {
                Ok(out) => {
                    result.peers_run += 1;
                    result.changed |= out.changed;
                    if collect_stats {
                        result.stats.push((peer.name(), out.stats));
                    }
                    result
                        .outbox
                        .extend(out.messages.into_iter().map(|m| (seq, m)));
                    if self.tracing {
                        peer.drain_trace_into(&mut result.trace);
                    }
                    if !peer.has_pending_input() {
                        self.active.remove(&seq);
                    }
                }
                // Stay active: the coordinator surfaces the error and the
                // peer retries (with its input intact) on the next tick.
                Err(e) => result.errors.push((seq, e)),
            }
        }
        result
    }
}
