//! Error types for the WebdamLog engine.

use wdl_datalog::DatalogError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, WdlError>;

/// Errors raised by the WebdamLog layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WdlError {
    /// Error bubbled up from the datalog kernel.
    Datalog(DatalogError),
    /// A rule violates WebdamLog safety (beyond plain datalog safety): e.g.
    /// the peer term of the first non-local atom is not bound by the prefix.
    UnsafeDistribution(String),
    /// A relation was used inconsistently with its declaration.
    SchemaViolation(String),
    /// Referenced an unknown peer.
    UnknownPeer(String),
    /// Added a peer whose name is already taken in the runtime.
    DuplicatePeer(String),
    /// Referenced an unknown rule id.
    UnknownRule(String),
    /// An operation was denied by access control.
    AccessDenied(String),
    /// The runtime did not reach quiescence within the stage budget.
    NoQuiescence {
        /// The stage budget that was exhausted.
        stages: usize,
    },
    /// A peer-name or relation-name variable was bound to a non-string value.
    BadNameBinding(String),
    /// The maintained materialization disappeared between stage
    /// classification and evaluation (e.g. a concurrent invalidation).
    /// Recoverable: the stage loop falls back to full recomputation.
    ViewInvalidated(String),
    /// The attached durability sink failed to persist state (I/O error,
    /// corrupt on-disk state). The in-memory peer is still consistent, but
    /// its changes since the last successful sync are not durable.
    Durability(String),
    /// A program batch was rejected by the static analyzer before any of
    /// it was applied ([`crate::Peer::install`]). Carries every diagnostic
    /// the analyzer raised, errors and warnings alike.
    Rejected(Vec<crate::Diagnostic>),
}

impl std::fmt::Display for WdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WdlError::Datalog(e) => write!(f, "datalog: {e}"),
            WdlError::UnsafeDistribution(m) => write!(f, "unsafe distribution: {m}"),
            WdlError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            WdlError::UnknownPeer(m) => write!(f, "unknown peer: {m}"),
            WdlError::DuplicatePeer(m) => write!(f, "duplicate peer: {m}"),
            WdlError::UnknownRule(m) => write!(f, "unknown rule: {m}"),
            WdlError::AccessDenied(m) => write!(f, "access denied: {m}"),
            WdlError::NoQuiescence { stages } => {
                write!(f, "runtime did not quiesce within {stages} stages")
            }
            WdlError::BadNameBinding(m) => write!(f, "bad name binding: {m}"),
            WdlError::ViewInvalidated(m) => write!(f, "view invalidated: {m}"),
            WdlError::Durability(m) => write!(f, "durability: {m}"),
            WdlError::Rejected(diags) => {
                let errors = diags.iter().filter(|d| d.is_error()).count();
                write!(f, "program rejected by static analysis ({errors} error")?;
                if errors != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                if let Some(first) = diags.iter().find(|d| d.is_error()) {
                    write!(f, ": {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for WdlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WdlError::Datalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatalogError> for WdlError {
    fn from(e: DatalogError) -> Self {
        WdlError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: WdlError = DatalogError::Arithmetic("x".into()).into();
        assert!(e.to_string().contains("datalog"));
        assert!(WdlError::NoQuiescence { stages: 7 }
            .to_string()
            .contains('7'));
    }
}
