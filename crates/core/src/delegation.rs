//! Delegations: rules installed by one peer at another.
//!
//! Delegation is the headline novelty of WebdamLog (§2: "delegation allows a
//! peer to install a rule at a remote peer"). A delegation is re-derived at
//! every stage of its origin; when the supporting valuation disappears the
//! origin sends a revocation, so downstream state tracks upstream state.

use crate::WRule;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use wdl_datalog::Symbol;

/// Content-addressed identity of a delegation.
///
/// Computed from the *textual* form of (origin, target, rule) so that the
/// origin and the target — possibly different processes with different
/// symbol tables — agree on the id, and so that the same delegation derived
/// through several valuations deduplicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DelegationId(u64);

impl DelegationId {
    /// Computes the id for `(origin, target, rule)`.
    pub fn compute(origin: Symbol, target: Symbol, rule: &WRule) -> DelegationId {
        let mut h = DefaultHasher::new();
        origin.as_str().hash(&mut h);
        target.as_str().hash(&mut h);
        rule.canonical_text().hash(&mut h);
        DelegationId(h.finish())
    }

    /// Raw value (for logging and wire encoding).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw wire value (revocation messages carry ids
    /// without the rule body, so the receiver cannot recompute them).
    pub fn from_raw(raw: u64) -> DelegationId {
        DelegationId(raw)
    }
}

impl fmt::Debug for DelegationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dlg:{:016x}", self.0)
    }
}

impl fmt::Display for DelegationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A rule one peer asks another to run on its behalf.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delegation {
    /// Stable content-addressed identity.
    pub id: DelegationId,
    /// The peer that derived (and owns) the delegation.
    pub origin: Symbol,
    /// The peer asked to run the rule.
    pub target: Symbol,
    /// The instantiated remainder rule to install.
    pub rule: WRule,
}

impl Delegation {
    /// Builds a delegation, computing its content id.
    pub fn new(origin: Symbol, target: Symbol, rule: WRule) -> Delegation {
        let id = DelegationId::compute(origin, target, &rule);
        Delegation {
            id,
            origin,
            target,
            rule,
        }
    }
}

impl fmt::Debug for Delegation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} -> {}] {}",
            self.id, self.origin, self.target, self.rule
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn id_is_content_addressed() {
        let r = WRule::example_attendee_pictures("Jules");
        let a = Delegation::new(sym("Jules"), sym("Emilien"), r.clone());
        let b = Delegation::new(sym("Jules"), sym("Emilien"), r.clone());
        assert_eq!(a.id, b.id);
        let c = Delegation::new(sym("Jules"), sym("Julia"), r);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn id_distinguishes_rules() {
        let a = Delegation::new(
            sym("p"),
            sym("q"),
            WRule::example_attendee_pictures("Jules"),
        );
        let b = Delegation::new(
            sym("p"),
            sym("q"),
            WRule::example_attendee_pictures("Emilien"),
        );
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn debug_form_mentions_parties() {
        let d = Delegation::new(
            sym("Julia"),
            sym("Jules"),
            WRule::example_attendee_pictures("Julia"),
        );
        let s = format!("{d:?}");
        assert!(s.contains("Julia"));
        assert!(s.contains("Jules"));
    }
}
