//! Control of delegation (paper §3, "Delegation and access control").
//!
//! The demo's model, reproduced here exactly: "each delegation sent by an
//! untrusted peer will be pending in a queue until the user explicitly
//! accepts it via the Web interface. By default, all peers except the sigmod
//! peer will be considered untrusted." The interface here is programmatic
//! (`pending`, `approve`, `reject`) instead of a Web page; the Wepic example
//! binaries expose it interactively.

use crate::Delegation;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use wdl_datalog::Symbol;

/// What to do with an arriving delegation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelegationDecision {
    /// Install immediately (trusted origin).
    Install,
    /// Park in the pending queue until the user decides.
    Queue,
    /// Drop outright.
    Reject,
}

/// Policy for delegations from peers not in the trusted set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UntrustedPolicy {
    /// Queue for explicit approval (the demo's behaviour).
    #[default]
    Queue,
    /// Accept everything (useful for closed experiments).
    Accept,
    /// Reject everything.
    Reject,
}

/// A delegation waiting for the user's decision.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingDelegation {
    /// The delegation itself.
    pub delegation: Delegation,
    /// Stage counter of the receiving peer when it arrived.
    pub received_stage: u64,
}

/// Per-peer access-control state.
#[derive(Clone, Debug, Default)]
pub struct AccessControl {
    trusted: HashSet<Symbol>,
    policy: UntrustedPolicy,
    pending: Vec<PendingDelegation>,
}

impl AccessControl {
    /// Fresh state: nobody trusted, untrusted delegations queue.
    pub fn new() -> AccessControl {
        AccessControl::default()
    }

    /// Marks `peer` as trusted; its delegations install immediately.
    pub fn trust(&mut self, peer: impl Into<Symbol>) {
        self.trusted.insert(peer.into());
    }

    /// Removes `peer` from the trusted set (already-installed delegations
    /// stay installed; the paper's model gates installation, not execution).
    pub fn untrust(&mut self, peer: impl Into<Symbol>) {
        self.trusted.remove(&peer.into());
    }

    /// True iff `peer` is trusted.
    pub fn is_trusted(&self, peer: Symbol) -> bool {
        self.trusted.contains(&peer)
    }

    /// The trusted peers, sorted by name (for deterministic export).
    pub fn trusted_peers(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.trusted.iter().copied().collect();
        v.sort_by_key(|s| s.as_str());
        v
    }

    /// The current policy for untrusted origins.
    pub fn untrusted_policy(&self) -> UntrustedPolicy {
        self.policy
    }

    /// Sets the policy applied to untrusted origins.
    pub fn set_untrusted_policy(&mut self, policy: UntrustedPolicy) {
        self.policy = policy;
    }

    /// Decides what to do with a delegation from `origin`.
    pub fn decide(&self, origin: Symbol) -> DelegationDecision {
        if self.trusted.contains(&origin) {
            DelegationDecision::Install
        } else {
            match self.policy {
                UntrustedPolicy::Queue => DelegationDecision::Queue,
                UntrustedPolicy::Accept => DelegationDecision::Install,
                UntrustedPolicy::Reject => DelegationDecision::Reject,
            }
        }
    }

    /// Parks a delegation.
    pub(crate) fn push_pending(&mut self, delegation: Delegation, stage: u64) {
        // A re-sent identical delegation should not duplicate in the queue.
        if self
            .pending
            .iter()
            .any(|p| p.delegation.id == delegation.id)
        {
            return;
        }
        self.pending.push(PendingDelegation {
            delegation,
            received_stage: stage,
        });
    }

    /// The pending queue, oldest first (what the demo UI shows at the top of
    /// its Figure 3: "Julia is sending a rule to Jules").
    pub fn pending(&self) -> &[PendingDelegation] {
        &self.pending
    }

    /// Removes and returns the pending delegation with `id`, if present.
    pub(crate) fn take_pending(&mut self, id: crate::DelegationId) -> Option<Delegation> {
        let idx = self.pending.iter().position(|p| p.delegation.id == id)?;
        Some(self.pending.remove(idx).delegation)
    }

    /// Drops a pending delegation (e.g. when its origin revokes it before
    /// the user decided).
    pub(crate) fn drop_pending(&mut self, id: crate::DelegationId) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.delegation.id != id);
        self.pending.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WRule;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn dlg(origin: &str) -> Delegation {
        Delegation::new(
            sym(origin),
            sym("me"),
            WRule::example_attendee_pictures(origin),
        )
    }

    #[test]
    fn default_queues_untrusted() {
        let acl = AccessControl::new();
        assert_eq!(acl.decide(sym("stranger")), DelegationDecision::Queue);
    }

    #[test]
    fn trusted_installs_immediately() {
        let mut acl = AccessControl::new();
        acl.trust("sigmod");
        assert_eq!(acl.decide(sym("sigmod")), DelegationDecision::Install);
        acl.untrust("sigmod");
        assert_eq!(acl.decide(sym("sigmod")), DelegationDecision::Queue);
    }

    #[test]
    fn policy_switches() {
        let mut acl = AccessControl::new();
        acl.set_untrusted_policy(UntrustedPolicy::Accept);
        assert_eq!(acl.decide(sym("x")), DelegationDecision::Install);
        acl.set_untrusted_policy(UntrustedPolicy::Reject);
        assert_eq!(acl.decide(sym("x")), DelegationDecision::Reject);
    }

    #[test]
    fn pending_queue_dedups_and_removes() {
        let mut acl = AccessControl::new();
        let d = dlg("Julia");
        acl.push_pending(d.clone(), 1);
        acl.push_pending(d.clone(), 2);
        assert_eq!(acl.pending().len(), 1);
        assert!(acl.take_pending(d.id).is_some());
        assert!(acl.take_pending(d.id).is_none());
    }

    #[test]
    fn drop_pending_on_revoke() {
        let mut acl = AccessControl::new();
        let d = dlg("Julia");
        acl.push_pending(d.clone(), 1);
        assert!(acl.drop_pending(d.id));
        assert!(!acl.drop_pending(d.id));
        assert!(acl.pending().is_empty());
    }
}
