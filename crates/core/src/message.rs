//! Messages exchanged between peers.
//!
//! The paper's stage step 3: "the peer sends facts (updates) and rules
//! (delegations) to other peers". We add revocations — the inverse of
//! delegations — and distinguish *persistent* updates (explicit insertions/
//! deletions of extensional facts) from *derived* diffs (contributions to a
//! remote view that retract when the sender's derivations retract).

use crate::{Delegation, DelegationId, WFact};
use serde::{Deserialize, Serialize};
use std::fmt;
use wdl_datalog::Symbol;

/// How the receiver should treat a batch of facts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FactKind {
    /// An explicit update: apply additions and retractions to the stored
    /// (extensional) relation.
    Persistent,
    /// A rule-derived diff. The receiver interprets it against its own
    /// schema: for an *extensional* target relation, additions are applied
    /// as insertions and retractions are ignored (PODS'11: derivations into
    /// extensional relations are monotone insertion updates); for an
    /// *intensional* target, the batch maintains the sender's contribution
    /// to the view.
    Derived,
}

/// The body of a message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Fact additions/retractions.
    Facts {
        /// Interpretation at the receiver.
        kind: FactKind,
        /// Facts to add.
        additions: Vec<WFact>,
        /// Facts to retract.
        retractions: Vec<WFact>,
    },
    /// Rules to install at the receiver.
    Delegate(Vec<Delegation>),
    /// Previously installed delegations to remove.
    Revoke(Vec<DelegationId>),
    /// An opaque session-layer control or data frame (reliable-delivery
    /// sub-protocol). Never reaches the stage loop: the session endpoint
    /// consumes these below the application layer.
    Session(Vec<u8>),
}

impl Payload {
    /// Rough count of items, for stats.
    pub fn item_count(&self) -> usize {
        match self {
            Payload::Facts {
                additions,
                retractions,
                ..
            } => additions.len() + retractions.len(),
            Payload::Delegate(ds) => ds.len(),
            Payload::Revoke(ids) => ids.len(),
            Payload::Session(_) => 0,
        }
    }
}

/// A routed message between two peers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Sender peer.
    pub from: Symbol,
    /// Receiver peer.
    pub to: Symbol,
    /// Content.
    pub payload: Payload,
}

impl Message {
    /// Builds a message.
    pub fn new(from: Symbol, to: Symbol, payload: Payload) -> Message {
        Message { from, to, payload }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            Payload::Facts {
                kind,
                additions,
                retractions,
            } => write!(
                f,
                "{} -> {}: {:?} facts +{} -{}",
                self.from,
                self.to,
                kind,
                additions.len(),
                retractions.len()
            ),
            Payload::Delegate(ds) => {
                write!(
                    f,
                    "{} -> {}: delegate {} rule(s)",
                    self.from,
                    self.to,
                    ds.len()
                )
            }
            Payload::Revoke(ids) => {
                write!(
                    f,
                    "{} -> {}: revoke {} rule(s)",
                    self.from,
                    self.to,
                    ids.len()
                )
            }
            Payload::Session(bytes) => {
                write!(
                    f,
                    "{} -> {}: session frame ({} bytes)",
                    self.from,
                    self.to,
                    bytes.len()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdl_datalog::Value;

    #[test]
    fn item_counts() {
        let f = WFact::new("r", "p", vec![Value::from(1)]);
        let p = Payload::Facts {
            kind: FactKind::Persistent,
            additions: vec![f.clone(), f.clone()],
            retractions: vec![f],
        };
        assert_eq!(p.item_count(), 3);
        assert_eq!(Payload::Revoke(vec![]).item_count(), 0);
    }

    #[test]
    fn display_summarizes() {
        let m = Message::new(
            Symbol::intern("a"),
            Symbol::intern("b"),
            Payload::Delegate(vec![]),
        );
        assert_eq!(m.to_string(), "a -> b: delegate 0 rule(s)");
    }
}
