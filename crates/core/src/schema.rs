//! Relation declarations: extensional vs intensional.

use crate::{Result, WdlError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wdl_datalog::Symbol;

/// Whether a relation is stored or derived (paper/PODS'11 distinction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationKind {
    /// Base facts, persistent, changed by explicit updates; rule heads
    /// targeting an extensional relation generate *insertions* applied at
    /// the following stage.
    Extensional,
    /// Derived facts, recomputed at every stage from rules (a view). Facts
    /// received from other peers for an intensional relation are maintained
    /// contributions: they are retracted when the sender's derivations
    /// retract.
    Intensional,
}

/// One relation's declaration at a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationDecl {
    /// Relation name (unqualified; the owning peer is implicit).
    pub rel: Symbol,
    /// Number of columns.
    pub arity: usize,
    /// Stored or derived.
    pub kind: RelationKind,
}

/// The set of relations a peer hosts.
///
/// WebdamLog peers "may discover new peers and new relations" (§2): unknown
/// relations appearing in received updates are auto-declared extensional,
/// matching the open-world behaviour of the demo system.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Schema {
    decls: HashMap<Symbol, RelationDecl>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declares a relation. Redeclaration with identical shape is a no-op;
    /// changing arity or kind is a [`WdlError::SchemaViolation`].
    pub fn declare(&mut self, rel: Symbol, arity: usize, kind: RelationKind) -> Result<()> {
        match self.decls.get(&rel) {
            Some(existing) if existing.arity != arity || existing.kind != kind => {
                Err(WdlError::SchemaViolation(format!(
                    "relation {rel} already declared with arity {} and kind {:?}",
                    existing.arity, existing.kind
                )))
            }
            Some(_) => Ok(()),
            None => {
                self.decls.insert(rel, RelationDecl { rel, arity, kind });
                Ok(())
            }
        }
    }

    /// Looks up a declaration.
    pub fn get(&self, rel: Symbol) -> Option<&RelationDecl> {
        self.decls.get(&rel)
    }

    /// The kind of `rel`, if declared.
    pub fn kind_of(&self, rel: Symbol) -> Option<RelationKind> {
        self.decls.get(&rel).map(|d| d.kind)
    }

    /// The arity of `rel`, if declared.
    pub fn arity_of(&self, rel: Symbol) -> Option<usize> {
        self.decls.get(&rel).map(|d| d.arity)
    }

    /// True iff declared.
    pub fn is_declared(&self, rel: Symbol) -> bool {
        self.decls.contains_key(&rel)
    }

    /// Iterates over declarations (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &RelationDecl> {
        self.decls.values()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True iff no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn declare_and_lookup() {
        let mut s = Schema::new();
        s.declare(sym("pictures"), 4, RelationKind::Extensional)
            .unwrap();
        assert_eq!(s.arity_of(sym("pictures")), Some(4));
        assert_eq!(s.kind_of(sym("pictures")), Some(RelationKind::Extensional));
        assert!(s.is_declared(sym("pictures")));
        assert!(!s.is_declared(sym("ghost")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn idempotent_redeclaration() {
        let mut s = Schema::new();
        s.declare(sym("r"), 2, RelationKind::Intensional).unwrap();
        assert!(s.declare(sym("r"), 2, RelationKind::Intensional).is_ok());
        assert!(s.declare(sym("r"), 3, RelationKind::Intensional).is_err());
        assert!(s.declare(sym("r"), 2, RelationKind::Extensional).is_err());
    }
}
