//! In-process runtime: owns a set of peers and routes their messages.
//!
//! This is the deterministic substrate used by tests, examples and benches —
//! the equivalent of running every demo laptop and the Webdam cloud inside
//! one process. Stage semantics are identical over the TCP transport in
//! `wdl-net`; only delivery changes.

use crate::{Message, Peer, Result, StageOutput, StageStats};
use std::collections::HashMap;
use wdl_datalog::Symbol;

/// Compile-time proof that the parallel runtime is sound to build: peers
/// (with their databases, maintained views and inboxes) move across scoped
/// threads, and databases are probed concurrently through `&`.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<Peer>();
    send::<Message>();
    send::<StageOutput>();
    sync::<wdl_datalog::Database>();
    sync::<wdl_datalog::Relation>();
}

/// Result of one synchronous round of stages across all peers.
#[derive(Clone, Debug, Default)]
pub struct TickReport {
    /// Messages routed at the end of the round.
    pub messages: usize,
    /// Messages whose target peer does not exist in this runtime.
    pub undeliverable: usize,
    /// Whether any peer observed or produced a change.
    pub changed: bool,
    /// Per-peer stage stats for this round.
    pub stats: HashMap<Symbol, StageStats>,
}

/// Result of running to quiescence.
#[derive(Clone, Debug, Default)]
pub struct QuiescenceReport {
    /// True iff a fully quiet round was reached within the budget.
    pub quiescent: bool,
    /// Rounds executed (including the final quiet one).
    pub rounds: usize,
    /// Total messages routed.
    pub messages: usize,
    /// Total undeliverable messages dropped.
    pub undeliverable: usize,
}

/// A deterministic, single-process network of WebdamLog peers.
///
/// Peers execute stages round-robin in insertion order; messages produced in
/// round *t* are ingested at round *t+1*. This models the demo's Figure 2
/// topology with reproducible interleavings.
pub struct LocalRuntime {
    peers: Vec<Peer>,
    /// Name → position in `peers`, kept in sync with every add/remove so
    /// lookup (and hence per-message delivery) is O(1) instead of a linear
    /// scan. `peers` itself stays in insertion order for tick determinism.
    index: HashMap<Symbol, usize>,
    /// Thread budget for [`LocalRuntime::par_tick`]; 1 = sequential.
    workers: usize,
    /// Whether peers currently carry trace sinks ([`LocalRuntime::set_tracing`]).
    tracing: bool,
    /// Online trace aggregation; kept after `set_tracing(false)` so results
    /// stay queryable once profiling stops.
    agg: Option<wdl_obs::Aggregator>,
    /// Reused per-round event staging buffer for [`LocalRuntime::drain_traces`].
    trace_scratch: Vec<crate::TraceEvent>,
}

impl Default for LocalRuntime {
    fn default() -> LocalRuntime {
        LocalRuntime {
            peers: Vec::new(),
            index: HashMap::new(),
            workers: 1,
            tracing: false,
            agg: None,
            trace_scratch: Vec::new(),
        }
    }
}

impl LocalRuntime {
    /// Empty runtime.
    pub fn new() -> LocalRuntime {
        LocalRuntime::default()
    }

    /// Sets the thread budget used by [`LocalRuntime::par_tick`] (clamped
    /// to at least 1; capped by the peer count at tick time). `tick` stays
    /// sequential regardless — parallel execution is always explicit.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured thread budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Turns structured tracing on or off.
    ///
    /// Turning it **on** installs a buffering [`crate::TraceSink`] on every
    /// peer (current and future); each tick drains every peer's buffer
    /// into the [`wdl_obs::Aggregator`] in peer insertion order
    /// (deterministic) and closes the aggregator's round. Re-enabling
    /// **resumes** an existing aggregator — toggling is cheap and
    /// lossless; call [`LocalRuntime::reset_trace`] for a fresh one.
    /// Turning it **off** removes the sinks — the hot path goes back to
    /// the untraced peer loop — but keeps the aggregator, so
    /// `top`/`critpath`/export keep working on what was collected.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if on {
            if self.agg.is_none() {
                self.agg = Some(wdl_obs::Aggregator::new());
            }
            for peer in &mut self.peers {
                if !peer.tracing() {
                    peer.set_trace_sink(Box::new(wdl_obs::BufferSink::new()));
                }
            }
        } else {
            for peer in &mut self.peers {
                peer.clear_trace_sink();
            }
        }
    }

    /// Discards all collected trace data. The next [`LocalRuntime::set_tracing`]
    /// (or the current session, if tracing is on) starts from an empty
    /// aggregator.
    pub fn reset_trace(&mut self) {
        self.agg = self.tracing.then(wdl_obs::Aggregator::new);
    }

    /// True iff tracing is currently enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// The trace aggregator, if profiling ever ran ([`LocalRuntime::set_tracing`]).
    pub fn trace(&self) -> Option<&wdl_obs::Aggregator> {
        self.agg.as_ref()
    }

    /// Mutable access to the trace aggregator (e.g. for JSONL export).
    pub fn trace_mut(&mut self) -> Option<&mut wdl_obs::Aggregator> {
        self.agg.as_mut()
    }

    /// Drains every traced peer's event buffer into the aggregator (peer
    /// insertion order) and closes the round. No-op unless tracing is on.
    fn drain_traces(&mut self) {
        if !self.tracing {
            return;
        }
        let Some(agg) = self.agg.as_mut() else { return };
        self.trace_scratch.clear();
        for peer in &mut self.peers {
            peer.drain_trace_into(&mut self.trace_scratch);
        }
        if !self.trace_scratch.is_empty() {
            agg.ingest(&self.trace_scratch);
        }
        agg.end_round();
    }

    /// Adds a peer. Peers added mid-run participate from the next round —
    /// this is how the demo's "audience members launch their own peers"
    /// scenario is modelled (E8). Returns [`crate::WdlError::DuplicatePeer`]
    /// if the name is already taken (recoverable — e.g. a late joiner
    /// picking a clashing name must not bring the whole runtime down).
    pub fn add_peer(&mut self, peer: Peer) -> Result<Symbol> {
        let name = peer.name();
        if self.index.contains_key(&name) {
            return Err(crate::WdlError::DuplicatePeer(name.to_string()));
        }
        self.index.insert(name, self.peers.len());
        self.peers.push(peer);
        if self.tracing {
            // Late joiners inherit the runtime's tracing state, so a
            // profiled run covers peers added mid-run (E8).
            self.peers
                .last_mut()
                .expect("just pushed")
                .set_trace_sink(Box::new(wdl_obs::BufferSink::new()));
        }
        Ok(name)
    }

    /// Removes a peer, returning it (its inbox is preserved). The removal
    /// shifts later peers down one slot (preserving their relative
    /// insertion order, which tick determinism depends on) and remaps
    /// their index entries.
    pub fn remove_peer(&mut self, name: impl Into<Symbol>) -> Option<Peer> {
        let name = name.into();
        let idx = self.index.remove(&name)?;
        let peer = self.peers.remove(idx);
        for slot in self.index.values_mut() {
            if *slot > idx {
                *slot -= 1;
            }
        }
        Some(peer)
    }

    /// Looks up a peer.
    pub fn peer(&self, name: impl Into<Symbol>) -> Option<&Peer> {
        let idx = *self.index.get(&name.into())?;
        Some(&self.peers[idx])
    }

    /// Looks up a peer mutably.
    pub fn peer_mut(&mut self, name: impl Into<Symbol>) -> Option<&mut Peer> {
        let idx = *self.index.get(&name.into())?;
        Some(&mut self.peers[idx])
    }

    /// Names of all peers, in insertion order.
    pub fn peer_names(&self) -> Vec<Symbol> {
        self.peers.iter().map(Peer::name).collect()
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True iff no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Injects a message from outside the runtime (e.g. from a wrapper or a
    /// remote transport bridge).
    pub fn deliver(&mut self, msg: Message) -> bool {
        match self.peer_mut(msg.to) {
            Some(p) => {
                p.enqueue(msg);
                true
            }
            None => false,
        }
    }

    /// Runs one stage on every peer, then routes the produced messages.
    pub fn tick(&mut self) -> Result<TickReport> {
        let mut report = TickReport::default();
        let mut outgoing: Vec<Message> = Vec::new();
        for peer in &mut self.peers {
            let out = peer.run_stage()?;
            report.changed |= out.changed;
            report.stats.insert(peer.name(), out.stats);
            outgoing.extend(out.messages);
        }
        for msg in outgoing {
            if self.deliver(msg) {
                report.messages += 1;
            } else {
                report.undeliverable += 1;
            }
        }
        self.drain_traces();
        Ok(report)
    }

    /// Runs one stage on a *single* peer, then routes the messages it
    /// produced — the event-at-a-time hook the simulation layer and
    /// schedule-exploration tests build on. Interleaving `step_peer` calls
    /// in any fair order (every peer keeps getting stepped until quiet)
    /// reaches the same quiescent state as the round-robin [`tick`]
    /// (`LocalRuntime::tick`) loop; `tests/sim_conformance.rs` sweeps
    /// random schedules to pin that down.
    pub fn step_peer(&mut self, name: impl Into<Symbol>) -> Result<TickReport> {
        let name = name.into();
        let Some(peer) = self.peer_mut(name) else {
            return Err(crate::WdlError::UnknownPeer(name.to_string()));
        };
        let out = peer.run_stage()?;
        let mut report = TickReport {
            changed: out.changed,
            ..TickReport::default()
        };
        report.stats.insert(name, out.stats);
        for msg in out.messages {
            if self.deliver(msg) {
                report.messages += 1;
            } else {
                report.undeliverable += 1;
            }
        }
        self.drain_traces();
        Ok(report)
    }

    /// Like [`LocalRuntime::tick`], but runs peers' stages concurrently on
    /// scoped worker threads, then merges at a barrier.
    ///
    /// A stage only reads a peer's own state plus its inbox (filled at the
    /// *previous* barrier), so peers are independent within a round; the
    /// only cross-peer effect — message routing — happens after every
    /// stage has finished, in **stable peer order** (insertion order, the
    /// same order [`LocalRuntime::tick`] uses). Every inbox therefore
    /// receives the same message sequence as under the sequential tick,
    /// and the two are observationally identical round for round
    /// (property-tested in `tests/parallel_properties.rs`). The one
    /// divergence is error timing: `tick` stops at the first failing peer,
    /// while `par_tick` completes the round and reports the failure of the
    /// earliest peer in insertion order.
    pub fn par_tick(&mut self) -> Result<TickReport> {
        let n = self.peers.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return self.tick();
        }
        // Round-robin assignment so every configured worker gets peers
        // (contiguous div_ceil chunking would leave threads idle whenever
        // `workers` does not divide the peer count).
        let mut buckets: Vec<Vec<(usize, &mut Peer)>> = (0..workers).map(|_| Vec::new()).collect();
        for (idx, peer) in self.peers.iter_mut().enumerate() {
            buckets[idx % workers].push((idx, peer));
        }
        let (tx, rx) = crossbeam::channel::unbounded();
        crossbeam::thread::scope(|scope| {
            for bucket in buckets {
                let tx = tx.clone();
                scope.spawn(move || {
                    for (idx, peer) in bucket {
                        let out = peer.run_stage();
                        let _ = tx.send((idx, peer.name(), out));
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<(Symbol, Result<StageOutput>)>> = (0..n).map(|_| None).collect();
        for (idx, name, out) in rx.try_iter() {
            slots[idx] = Some((name, out));
        }
        // Post-barrier merge in peer insertion order: deterministic, and
        // identical to the sequential tick's routing order.
        let mut report = TickReport::default();
        let mut outgoing: Vec<Message> = Vec::new();
        for slot in slots {
            let (name, out) = slot.expect("every peer reports exactly once");
            let out = out?;
            report.changed |= out.changed;
            report.stats.insert(name, out.stats);
            outgoing.extend(out.messages);
        }
        for msg in outgoing {
            if self.deliver(msg) {
                report.messages += 1;
            } else {
                report.undeliverable += 1;
            }
        }
        self.drain_traces();
        Ok(report)
    }

    /// Ticks until a round where nothing changed and nothing was sent, or
    /// until `max_rounds` is exhausted.
    pub fn run_to_quiescence(&mut self, max_rounds: usize) -> Result<QuiescenceReport> {
        self.quiesce(max_rounds, false)
    }

    /// [`LocalRuntime::run_to_quiescence`] over [`LocalRuntime::par_tick`]:
    /// every round runs peers concurrently under the configured worker
    /// budget.
    pub fn par_run_to_quiescence(&mut self, max_rounds: usize) -> Result<QuiescenceReport> {
        self.quiesce(max_rounds, true)
    }

    fn quiesce(&mut self, max_rounds: usize, parallel: bool) -> Result<QuiescenceReport> {
        let mut report = QuiescenceReport::default();
        for _ in 0..max_rounds {
            let tick = if parallel {
                self.par_tick()?
            } else {
                self.tick()?
            };
            report.rounds += 1;
            report.messages += tick.messages;
            report.undeliverable += tick.undeliverable;
            if !tick.changed && tick.messages == 0 {
                report.quiescent = true;
                return Ok(report);
            }
        }
        Ok(report)
    }
}

impl std::fmt::Debug for LocalRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalRuntime")
            .field("peers", &self.peer_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::UntrustedPolicy;
    use crate::{RelationKind, WAtom, WRule};
    use wdl_datalog::{Term, Value};

    fn open_peer(name: &str) -> Peer {
        let mut p = Peer::new(name);
        p.acl_mut().set_untrusted_policy(UntrustedPolicy::Accept);
        p
    }

    #[test]
    fn empty_runtime_quiesces_immediately() {
        let mut rt = LocalRuntime::new();
        let r = rt.run_to_quiescence(5).unwrap();
        assert!(r.quiescent);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn duplicate_peer_is_recoverable() {
        let mut rt = LocalRuntime::new();
        rt.add_peer(Peer::new("dup")).unwrap();
        match rt.add_peer(Peer::new("dup")) {
            Err(crate::WdlError::DuplicatePeer(name)) => assert_eq!(name, "dup"),
            other => panic!("expected DuplicatePeer, got {other:?}"),
        }
        // The runtime stays usable after the rejected add.
        assert_eq!(rt.len(), 1);
        rt.add_peer(Peer::new("dup2")).unwrap();
        assert!(rt.run_to_quiescence(4).unwrap().quiescent);
    }

    /// `remove_peer` keeps the name→index map consistent: later peers shift
    /// down but stay addressable, and re-adding the removed name works.
    #[test]
    fn remove_peer_remaps_index() {
        let mut rt = LocalRuntime::new();
        rt.add_peer(Peer::new("ra")).unwrap();
        rt.add_peer(Peer::new("rb")).unwrap();
        rt.add_peer(Peer::new("rc")).unwrap();
        assert!(rt.remove_peer("ra").is_some());
        assert_eq!(rt.peer_names(), vec!["rb".into(), "rc".into()]);
        assert!(rt.peer("rb").is_some());
        assert!(rt.peer_mut("rc").is_some());
        assert!(rt.remove_peer("ra").is_none());
        rt.add_peer(Peer::new("ra")).unwrap();
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.peer("ra").unwrap().name(), Symbol::intern("ra"));
    }

    #[test]
    fn undeliverable_messages_counted() {
        let mut rt = LocalRuntime::new();
        let mut p = open_peer("solo");
        p.insert_remote("ghost", "r", vec![Value::from(1)]);
        rt.add_peer(p).unwrap();
        let tick = rt.tick().unwrap();
        assert_eq!(tick.undeliverable, 1);
        assert_eq!(tick.messages, 0);
    }

    /// `par_tick` preserves stage semantics: the paper's delegation round
    /// trip (install, derive, revoke on deselect) behaves identically when
    /// every round runs peers on worker threads.
    #[test]
    fn par_tick_runs_delegation_round_trip() {
        let mut rt = LocalRuntime::new();
        rt.set_workers(3);
        rt.add_peer(open_peer("jules")).unwrap();
        rt.add_peer(open_peer("emilien")).unwrap();
        rt.add_peer(open_peer("bystander")).unwrap();

        let jules = rt.peer_mut("jules").unwrap();
        jules
            .declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        jules
            .add_rule(WRule::example_attendee_pictures("jules"))
            .unwrap();
        jules
            .insert_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        rt.peer_mut("emilien")
            .unwrap()
            .insert_local(
                "pictures",
                vec![
                    Value::from(1),
                    Value::from("sea.jpg"),
                    Value::from("emilien"),
                    Value::bytes(&[1, 2, 3]),
                ],
            )
            .unwrap();

        let r = rt.par_run_to_quiescence(16).unwrap();
        assert!(r.quiescent, "did not quiesce: {r:?}");
        assert_eq!(
            rt.peer("jules")
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            1
        );

        rt.peer_mut("jules")
            .unwrap()
            .delete_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        let r = rt.par_run_to_quiescence(16).unwrap();
        assert!(r.quiescent);
        assert!(rt
            .peer("jules")
            .unwrap()
            .relation_facts("attendeePictures")
            .is_empty());
        assert!(rt
            .peer("emilien")
            .unwrap()
            .installed_delegations()
            .is_empty());
    }

    /// The full paper delegation round trip: Jules' selection pulls
    /// Emilien's pictures through a delegated rule, and deselection
    /// retracts them.
    #[test]
    fn delegation_round_trip_with_retraction() {
        let mut rt = LocalRuntime::new();
        rt.add_peer(open_peer("jules")).unwrap();
        rt.add_peer(open_peer("emilien")).unwrap();

        let jules = rt.peer_mut("jules").unwrap();
        jules
            .declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        jules
            .add_rule(WRule::example_attendee_pictures("jules"))
            .unwrap();
        jules
            .insert_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();

        let emilien = rt.peer_mut("emilien").unwrap();
        emilien
            .insert_local(
                "pictures",
                vec![
                    Value::from(1),
                    Value::from("sea.jpg"),
                    Value::from("emilien"),
                    Value::bytes(&[1, 2, 3]),
                ],
            )
            .unwrap();

        let r = rt.run_to_quiescence(16).unwrap();
        assert!(r.quiescent, "did not quiesce: {r:?}");
        assert_eq!(
            rt.peer("jules")
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            1
        );

        // Deselect: delegation revoked, facts retracted, view empties.
        rt.peer_mut("jules")
            .unwrap()
            .delete_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        let r = rt.run_to_quiescence(16).unwrap();
        assert!(r.quiescent);
        assert!(rt
            .peer("jules")
            .unwrap()
            .relation_facts("attendeePictures")
            .is_empty());
        assert!(rt
            .peer("emilien")
            .unwrap()
            .installed_delegations()
            .is_empty());
    }

    /// New pictures at the delegatee flow to the delegator without any new
    /// delegation traffic (the installed rule keeps running).
    #[test]
    fn installed_delegation_tracks_new_facts() {
        let mut rt = LocalRuntime::new();
        rt.add_peer(open_peer("jules")).unwrap();
        rt.add_peer(open_peer("emilien")).unwrap();
        let jules = rt.peer_mut("jules").unwrap();
        jules
            .declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        jules
            .add_rule(WRule::example_attendee_pictures("jules"))
            .unwrap();
        jules
            .insert_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        rt.run_to_quiescence(16).unwrap();
        assert!(rt
            .peer("jules")
            .unwrap()
            .relation_facts("attendeePictures")
            .is_empty());

        rt.peer_mut("emilien")
            .unwrap()
            .insert_local(
                "pictures",
                vec![
                    Value::from(9),
                    Value::from("new.jpg"),
                    Value::from("emilien"),
                    Value::bytes(&[9]),
                ],
            )
            .unwrap();
        rt.run_to_quiescence(16).unwrap();
        assert_eq!(
            rt.peer("jules")
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            1
        );
    }

    /// Stepping peers one at a time through the `step_peer` hook reaches
    /// the same outcome as the lockstep `tick` loop, and routes messages
    /// the same way.
    #[test]
    fn step_peer_matches_tick_outcome() {
        let build = || {
            let mut rt = LocalRuntime::new();
            rt.add_peer(open_peer("sp-jules")).unwrap();
            rt.add_peer(open_peer("sp-emilien")).unwrap();
            let jules = rt.peer_mut("sp-jules").unwrap();
            jules
                .declare("attendeePictures", 4, RelationKind::Intensional)
                .unwrap();
            jules
                .add_rule(WRule::example_attendee_pictures("sp-jules"))
                .unwrap();
            jules
                .insert_local("selectedAttendee", vec![Value::from("sp-emilien")])
                .unwrap();
            rt.peer_mut("sp-emilien")
                .unwrap()
                .insert_local(
                    "pictures",
                    vec![
                        Value::from(1),
                        Value::from("sea.jpg"),
                        Value::from("sp-emilien"),
                        Value::bytes(&[1]),
                    ],
                )
                .unwrap();
            rt
        };

        let mut lockstep = build();
        lockstep.run_to_quiescence(16).unwrap();

        // An unfair but eventually-fair schedule: jules twice per round.
        let mut stepped = build();
        for _ in 0..24 {
            stepped.step_peer("sp-jules").unwrap();
            stepped.step_peer("sp-jules").unwrap();
            stepped.step_peer("sp-emilien").unwrap();
        }
        assert_eq!(
            stepped
                .peer("sp-jules")
                .unwrap()
                .relation_facts("attendeePictures"),
            lockstep
                .peer("sp-jules")
                .unwrap()
                .relation_facts("attendeePictures"),
        );
        assert_eq!(
            stepped
                .peer("sp-jules")
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            1
        );
    }

    #[test]
    fn step_peer_unknown_peer_errors() {
        let mut rt = LocalRuntime::new();
        assert!(matches!(
            rt.step_peer("nobody"),
            Err(crate::WdlError::UnknownPeer(_))
        ));
    }

    /// Multi-hop: a remote fact lands in an extensional relation at a third
    /// peer (explicit update path).
    #[test]
    fn explicit_remote_update_propagates() {
        let mut rt = LocalRuntime::new();
        rt.add_peer(open_peer("a")).unwrap();
        rt.add_peer(open_peer("b")).unwrap();
        rt.peer_mut("a")
            .unwrap()
            .insert_remote("b", "mail", vec![Value::from("hi")]);
        rt.run_to_quiescence(8).unwrap();
        assert_eq!(rt.peer("b").unwrap().relation_facts("mail").len(), 1);
    }

    /// Peers can join mid-run and the system reconverges (demo scenario:
    /// audience members launch their own Wepic peers).
    #[test]
    fn late_joining_peer_reconverges() {
        let mut rt = LocalRuntime::new();
        rt.add_peer(open_peer("jules")).unwrap();
        let jules = rt.peer_mut("jules").unwrap();
        jules
            .declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        jules
            .add_rule(WRule::example_attendee_pictures("jules"))
            .unwrap();
        jules
            .insert_local("selectedAttendee", vec![Value::from("newpeer")])
            .unwrap();
        // Delegation target does not exist yet.
        let r = rt.run_to_quiescence(8).unwrap();
        assert!(r.undeliverable > 0);

        // The peer joins; Jules' rule must re-delegate. Force re-derivation
        // by touching the selection (the engine diffs delegations, so an
        // identical set emits nothing).
        let mut newpeer = open_peer("newpeer");
        newpeer
            .insert_local(
                "pictures",
                vec![
                    Value::from(1),
                    Value::from("p.jpg"),
                    Value::from("newpeer"),
                    Value::bytes(&[1]),
                ],
            )
            .unwrap();
        rt.add_peer(newpeer).unwrap();
        let jules = rt.peer_mut("jules").unwrap();
        jules
            .delete_local("selectedAttendee", vec![Value::from("newpeer")])
            .unwrap();
        rt.run_to_quiescence(8).unwrap();
        let jules = rt.peer_mut("jules").unwrap();
        jules
            .insert_local("selectedAttendee", vec![Value::from("newpeer")])
            .unwrap();
        let r = rt.run_to_quiescence(16).unwrap();
        assert!(r.quiescent);
        assert_eq!(
            rt.peer("jules")
                .unwrap()
                .relation_facts("attendeePictures")
                .len(),
            1
        );
    }

    /// The cascading delegation of the paper's transfer rule:
    /// jules -> emilien (bind protocol) -> back to jules (selectedPictures)
    /// -> fact lands at emilien under the protocol relation.
    #[test]
    fn cascading_delegation_protocol_dispatch() {
        let mut rt = LocalRuntime::new();
        rt.add_peer(open_peer("jules")).unwrap();
        rt.add_peer(open_peer("emilien")).unwrap();

        // $protocol@$attendee($name) :- selectedAttendee@jules($attendee),
        //     communicate@$attendee($protocol), selectedPictures@jules($name)
        let rule = WRule::new(
            WAtom::new(
                crate::NameTerm::var("protocol"),
                crate::NameTerm::var("attendee"),
                vec![Term::var("name")],
            ),
            vec![
                WAtom::at("selectedAttendee", "jules", vec![Term::var("attendee")]).into(),
                WAtom::new(
                    crate::NameTerm::name("communicate"),
                    crate::NameTerm::var("attendee"),
                    vec![Term::var("protocol")],
                )
                .into(),
                WAtom::at("selectedPictures", "jules", vec![Term::var("name")]).into(),
            ],
        );
        let jules = rt.peer_mut("jules").unwrap();
        jules.add_rule(rule).unwrap();
        jules
            .insert_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        jules
            .insert_local("selectedPictures", vec![Value::from("sea.jpg")])
            .unwrap();

        let emilien = rt.peer_mut("emilien").unwrap();
        emilien
            .insert_local("communicate", vec![Value::from("wepicInbox")])
            .unwrap();
        emilien
            .declare("wepicInbox", 1, RelationKind::Intensional)
            .unwrap();

        let r = rt.run_to_quiescence(24).unwrap();
        assert!(r.quiescent);
        let inbox = rt.peer("emilien").unwrap().relation_facts("wepicInbox");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0][0], Value::from("sea.jpg"));
        // Jules now runs a delegated rule installed by emilien (the bounce).
        assert_eq!(rt.peer("jules").unwrap().installed_delegations().len(), 1);
    }
}
