//! Compiled stage-layer rule plans: the WebdamLog matcher on the
//! register-file plan engine.
//!
//! The stage loop used to evaluate every rule — own and delegated — with
//! the `Subst` interpreter (`stage.rs::walk`): literal by literal, cloning
//! a symbol-keyed substitution per join candidate. This module compiles
//! each rule **once per (rule, ruleset epoch, grants epoch)** into a
//! [`StageRulePlan`]:
//!
//! 1. **Classification.** The body splits at the first item the compiled
//!    engine cannot run locally: a literal whose peer is a constant other
//!    than `me` (the delegation split the paper prescribes), a literal with
//!    a *variable* relation or peer name (resolvable only from runtime
//!    bindings), or — for delegated rules — the first local literal whose
//!    relation the origin may not read (the per-literal ACL read gate,
//!    hoisted to compile time per origin; grants changes bump
//!    `Peer::grants_epoch`, invalidating the cache).
//! 2. **Prefix compilation.** Everything before the cut — local
//!    constant-named literals (positive and negated), comparisons,
//!    assignments — compiles to a [`wdl_datalog::eval::BodyPlan`]: a
//!    register-file plan that yields the register file of every satisfying
//!    assignment instead of firing a head.
//! 3. **Cut action.** What happens per yielded register file depends on the
//!    [`Cut`]: fire the head (fully local body), count a blocked read
//!    (hoisted ACL gate), or instantiate the remainder — deduplicated on
//!    the registers the remainder actually reads for the static-delegation
//!    case, or resumed through the reference interpreter for
//!    variable-named cut literals.
//!
//! The interpreter stays selectable as the semantic reference via
//! [`crate::Peer::set_compiled_stage`]`(false)` — mirroring the datalog
//! kernel's `EvalConfig::with_compiled(false)` — and the stage-parity
//! property suite (`tests/stage_parity.rs`) pins the two paths to identical
//! outcomes, delegations, and blocked-read counts.

use crate::{qualify, RelationGrants, WAtom, WBodyItem, WRule};
use std::collections::{HashMap, HashSet};
use wdl_datalog::eval::{BodyPlan, BodyScratch};
use wdl_datalog::intern::ValueId;
use wdl_datalog::{Atom as DAtom, BodyItem as DItem, Subst, Symbol, Term, Value};

/// Where a head-position name comes from at emission time.
pub(crate) enum NameSrc {
    /// Constant name.
    Const(Symbol),
    /// Register holding a (string) value; the `Symbol` is the variable's
    /// name, kept for parity-faithful error messages.
    Reg(u16, Symbol),
}

/// Where a head-column value comes from at emission time.
pub(crate) enum ArgSrc {
    /// Constant value.
    Const(Value),
    /// Register.
    Reg(u16),
}

/// A fully-local rule's head, resolvable straight from the register file.
pub(crate) struct HeadPlan {
    pub(crate) rel: NameSrc,
    pub(crate) peer: NameSrc,
    pub(crate) args: Vec<ArgSrc>,
}

impl HeadPlan {
    fn build(head: &WAtom, plan: &BodyPlan) -> Option<HeadPlan> {
        let name_src = |nt: &crate::NameTerm| -> Option<NameSrc> {
            match nt {
                crate::NameTerm::Name(s) => Some(NameSrc::Const(*s)),
                crate::NameTerm::Var(v) => Some(NameSrc::Reg(plan.register_of(*v)?, *v)),
            }
        };
        let rel = name_src(&head.rel)?;
        let peer = name_src(&head.peer)?;
        let mut args = Vec::with_capacity(head.args.len());
        for t in &head.args {
            args.push(match t {
                Term::Const(v) => ArgSrc::Const(v.clone()),
                Term::Var(v) => ArgSrc::Reg(plan.register_of(*v)?),
            });
        }
        Some(HeadPlan { rel, peer, args })
    }
}

/// What happens when the compiled prefix yields a register file.
pub(crate) enum Cut {
    /// The prefix is the whole body: fire the head.
    Head(HeadPlan),
    /// The cut literal is ACL-blocked for this origin: count one blocked
    /// read per yielded binding (hoisted per-literal read gate).
    Blocked,
    /// The cut literal has a constant remote peer: the remainder
    /// `body[idx..]` becomes a delegation. Identical projections of the
    /// `live` registers instantiate identical delegations, so suspensions
    /// are deduplicated on that projection before the remainder is built.
    Delegate {
        idx: usize,
        live: Vec<(Symbol, u16)>,
    },
    /// Anything else (variable relation/peer names at the cut, or a body
    /// the plan compiler rejects mid-way): resume the reference
    /// interpreter at `idx` from the yielded bindings, once per yield (no
    /// dedup — the continuation may fire heads, and per-binding counters
    /// must match the interpreter exactly).
    Resume {
        idx: usize,
        live: Vec<(Symbol, u16)>,
    },
}

/// One rule, classified and compiled for stage evaluation.
pub(crate) enum StageRulePlan {
    /// The rule runs entirely on the `Subst` interpreter (compilation not
    /// applicable or not worthwhile).
    Interpreted,
    /// Compiled local prefix plus cut action.
    Compiled(CompiledRule),
}

/// The compiled form: prefix plan + what to do at the cut.
pub(crate) struct CompiledRule {
    pub(crate) plan: BodyPlan,
    pub(crate) cut: Cut,
}

impl CompiledRule {
    /// Builds the projection of `live` registers used as the delegation
    /// dedup key.
    pub(crate) fn live_key(live: &[(Symbol, u16)], regs: &[ValueId]) -> Box<[ValueId]> {
        live.iter().map(|&(_, r)| regs[r as usize]).collect()
    }

    /// Reconstructs a substitution holding exactly the `live` bindings —
    /// what the interpreter continuation (or remainder instantiation)
    /// reads.
    pub(crate) fn live_subst(live: &[(Symbol, u16)], regs: &[ValueId]) -> Subst {
        let mut s = Subst::new();
        for &(v, r) in live {
            s.bind(v, regs[r as usize].value());
        }
        s
    }
}

/// Variables the remainder `body[idx..]` or the head can read, restricted
/// to those the prefix plan actually binds.
fn live_vars(rule: &WRule, idx: usize, plan: &BodyPlan) -> Vec<(Symbol, u16)> {
    let mut mentioned: Vec<Symbol> = Vec::new();
    for item in &rule.body[idx..] {
        item.reads(&mut mentioned);
        item.binds(&mut mentioned);
    }
    rule.head.all_variables(&mut mentioned);
    let mut out: Vec<(Symbol, u16)> = Vec::new();
    for v in mentioned {
        if out.iter().any(|&(s, _)| s == v) {
            continue;
        }
        if let Some(r) = plan.register_of(v) {
            out.push((v, r));
        }
    }
    out
}

/// Classifies and compiles one rule for evaluation at `me` (on behalf of
/// `origin` when the rule is a delegation). Never fails: anything the
/// compiled path cannot express exactly degrades to
/// [`StageRulePlan::Interpreted`] or to a [`Cut::Resume`] continuation,
/// both of which reproduce the interpreter's semantics verbatim.
pub(crate) fn classify(
    rule: &WRule,
    me: Symbol,
    origin: Option<Symbol>,
    grants: &RelationGrants,
    view_bases: &HashMap<Symbol, HashSet<Symbol>>,
) -> StageRulePlan {
    enum CutKind {
        Blocked,
        Delegate,
        Resume,
    }
    let mut items: Vec<DItem> = Vec::new();
    let mut cut_at: Option<(usize, CutKind)> = None;
    for (i, item) in rule.body.iter().enumerate() {
        match item {
            WBodyItem::Literal(l) => match (l.atom.rel.as_name(), l.atom.peer.as_name()) {
                (Some(rel), Some(p)) if p == me => {
                    if let Some(o) = origin {
                        if !grants.can_read(rel, o, view_bases) {
                            cut_at = Some((i, CutKind::Blocked));
                            break;
                        }
                    }
                    let datom = DAtom::new(qualify(rel, me), l.atom.args.clone());
                    items.push(if l.negated {
                        DItem::not_atom(datom)
                    } else {
                        DItem::atom(datom)
                    });
                }
                (_, Some(p)) if p != me => {
                    cut_at = Some((i, CutKind::Delegate));
                    break;
                }
                _ => {
                    cut_at = Some((i, CutKind::Resume));
                    break;
                }
            },
            WBodyItem::Cmp { op, lhs, rhs } => {
                items.push(DItem::cmp(*op, lhs.clone(), rhs.clone()));
            }
            WBodyItem::Assign { var, expr } => {
                items.push(DItem::assign(*var, expr.clone()));
            }
        }
    }
    let Ok(plan) = BodyPlan::compile(&items, &[]) else {
        // An item the plan compiler rejects (e.g. a comparison over a
        // variable no positive atom binds) raises its error at *runtime*
        // in the interpreter, and only for bindings that reach it — keep
        // those semantics by interpreting the whole rule.
        return StageRulePlan::Interpreted;
    };
    let cut = match cut_at {
        None => match HeadPlan::build(&rule.head, &plan) {
            Some(h) => Cut::Head(h),
            // A head variable the body does not bind: the interpreter
            // raises per-binding; fall back.
            None => {
                let live = live_vars(rule, rule.body.len(), &plan);
                Cut::Resume {
                    idx: rule.body.len(),
                    live,
                }
            }
        },
        Some((_, CutKind::Blocked)) => Cut::Blocked,
        Some((i, CutKind::Delegate)) => Cut::Delegate {
            idx: i,
            live: live_vars(rule, i, &plan),
        },
        Some((i, CutKind::Resume)) => Cut::Resume {
            idx: i,
            live: live_vars(rule, i, &plan),
        },
    };
    StageRulePlan::Compiled(CompiledRule { plan, cut })
}

/// Per-peer cache of classified stage plans, invalidated when the ruleset
/// epoch (rule/schema changes, which also move `view_bases`) or the grants
/// epoch (ACL mutations, which move the hoisted read gates) advances.
/// Delegated entries are keyed by content-addressed [`crate::DelegationId`],
/// so delegation churn reuses plans without invalidation.
#[derive(Default)]
pub(crate) struct StagePlans {
    pub(crate) epoch: u64,
    pub(crate) grants_epoch: u64,
    pub(crate) own: HashMap<crate::RuleId, StageRulePlan>,
    pub(crate) delegated: HashMap<crate::DelegationId, StageRulePlan>,
    /// Shared register-file / probe-key buffers, reused across plans.
    pub(crate) scratch: BodyScratch,
}

impl StagePlans {
    /// Drops every cached plan if either epoch moved.
    pub(crate) fn ensure_epoch(&mut self, epoch: u64, grants_epoch: u64) {
        if self.epoch != epoch || self.grants_epoch != grants_epoch {
            self.own.clear();
            self.delegated.clear();
            self.epoch = epoch;
            self.grants_epoch = grants_epoch;
        }
    }

    /// Drops cached plans for delegations that are no longer installed
    /// (content-addressed ids re-use surviving entries).
    pub(crate) fn retain_delegations(&mut self, installed: &[crate::Delegation]) {
        if self.delegated.len() > installed.len() {
            let ids: HashSet<crate::DelegationId> = installed.iter().map(|d| d.id).collect();
            self.delegated.retain(|id, _| ids.contains(id));
        }
    }
}

/// Key into [`StagePlans`] for one rule evaluation. Also the key of the
/// tracer's rule-label cache (`Eq`/`Hash`), so a traced stage interns
/// each rule's label once instead of formatting it per round.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PlanKey {
    /// One of the peer's own rules.
    Own(crate::RuleId),
    /// An installed delegation.
    Delegated(crate::DelegationId),
}
