//! The WebdamLog computation stage (paper §2):
//!
//! > "A computation stage of the WebdamLog engine is broken down into three
//! > steps. First, the peer loads the inputs received from the remote peers
//! > since the previous stage. Second, the peer runs a fixpoint computation
//! > of its program. Third, the peer sends facts (updates) and rules
//! > (delegations) to other peers."
//!
//! The fixpoint evaluates every rule — own and delegated — left to right.
//! When evaluation reaches the first non-local atom, the instantiated
//! remainder becomes a [`Delegation`] to that atom's peer. Delegations and
//! remote fact batches are *diffed* against the previous stage so that
//! retractions propagate (install/revoke, add/retract).

use crate::stage_plan::{classify, CompiledRule, Cut, HeadPlan, NameSrc, PlanKey, StagePlans};
use crate::{
    qualify, Delegation, DelegationDecision, DelegationId, FactKind, Message, Payload, Peer,
    RelationKind, Result, WBodyItem, WFact, WRule, WdlError,
};
use std::collections::{HashMap, HashSet};
use wdl_datalog::intern::ValueId;
use wdl_datalog::{eval, Atom as DAtom, Database, Fact as DFact, Subst, Symbol};
use wdl_obs::TraceEvent;

/// Counters describing one stage, for observability and the bench harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage number (1-based after the first call).
    pub stage: u64,
    /// Messages ingested in step 1.
    pub ingested_messages: usize,
    /// Buffered extensional self-updates applied at the start of step 2.
    pub applied_updates: usize,
    /// Rounds of the local fixpoint.
    pub fixpoint_rounds: usize,
    /// Head instantiations fired.
    pub derivations: usize,
    /// Facts carried by outgoing messages.
    pub facts_out: usize,
    /// New delegations emitted.
    pub delegations_out: usize,
    /// Delegation revocations emitted.
    pub revocations_out: usize,
    /// Updates rejected during ingestion (schema or ACL violations).
    pub rejected: usize,
    /// Reads by delegated rules blocked by relation grants (the
    /// provenance-derived view policy of the paper's access-control
    /// sketch).
    pub reads_blocked: usize,
}

/// The result of one stage: outgoing messages plus stats.
#[derive(Clone, Debug, Default)]
pub struct StageOutput {
    /// Messages for other peers (the runtime or transport routes them).
    pub messages: Vec<Message>,
    /// Stage counters.
    pub stats: StageStats,
    /// Whether anything observable changed (used for quiescence detection).
    pub changed: bool,
}

/// The recompute path's reusable working database: the saturated database
/// of the last recompute stage plus the list of facts its fixpoint
/// actually inserted (derivations over the base). The next recompute stage
/// removes `derived`, replays the base log, and has exactly
/// `store + contributions` again without cloning either.
pub(crate) struct RecomputeCache {
    pub(crate) db: Database,
    pub(crate) derived: Vec<DFact>,
}

/// Everything a fixpoint pass emits besides local intensional facts.
#[derive(Default)]
struct Outcome {
    delegations: HashMap<DelegationId, Delegation>,
    remote_facts: HashMap<Symbol, HashSet<WFact>>,
    local_ext: HashSet<WFact>,
    derivations: usize,
    reads_blocked: usize,
    /// Local facts the fixpoint actually inserted this stage (recompute
    /// insertions + dynamic-layer fresh facts) — feeds the peer's
    /// cumulative `facts_derived` counter.
    local_new: usize,
}

/// Evaluation context threaded through rule walking: who the rule runs for
/// and what that origin may read here.
struct EvalCtx<'a> {
    peer: Symbol,
    schema: &'a crate::Schema,
    grants: &'a crate::RelationGrants,
    /// Static relation-level provenance of local views (for the default
    /// view read policy).
    view_bases: &'a HashMap<Symbol, HashSet<Symbol>>,
    /// `Some(origin)` when evaluating a delegated rule on `origin`'s
    /// behalf; `None` for the peer's own rules (the owner reads freely).
    origin: Option<Symbol>,
}

impl Peer {
    /// Runs one computation stage; see the module documentation.
    pub fn run_stage(&mut self) -> Result<StageOutput> {
        self.stage += 1;
        let mut stats = StageStats {
            stage: self.stage,
            ..StageStats::default()
        };
        // Tracing hooks pay one branch when no sink is installed — no
        // clock reads, no allocations (pinned by `trace_alloc`).
        let t_stage = self.tracer.as_ref().map(|_| std::time::Instant::now());
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(TraceEvent::StageBegin {
                peer: self.name,
                stage: self.stage,
            });
        }

        // ---- Step 1: load inputs received since the previous stage.
        let inbox = std::mem::take(&mut self.inbox);
        stats.ingested_messages = inbox.len();
        let mut store_changed = false;
        for msg in inbox {
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(TraceEvent::MsgDeliver {
                    from: msg.from,
                    to: self.name,
                    to_stage: self.stage,
                    items: msg.payload.item_count() as u64,
                });
            }
            self.ingest(msg, &mut stats, &mut store_changed)?;
        }

        // Apply extensional self-updates buffered by the previous stage's
        // rule heads ("insertions are applied at the following stage").
        let pending = std::mem::take(&mut self.pending_updates);
        for fact in pending {
            self.ensure_extensional(fact.rel, fact.arity())?;
            let q = fact.qualified();
            let tuple = fact.tuple;
            if self.store.insert_tuple(q, tuple.clone())? {
                stats.applied_updates += 1;
                store_changed = true;
                self.log_base_change(DFact { pred: q, tuple }, true);
            }
        }

        // ---- Step 2: local fixpoint — incremental when a maintained view
        // of the compiled (fully local) rules is available, full recompute
        // otherwise. See `maintain.rs` for the split.
        let (outcome, rounds, derived_changed) = match self.ensure_view() {
            crate::maintain::ViewStatus::Current => self.fixpoint_maintained(false)?,
            crate::maintain::ViewStatus::Rebuilt => self.fixpoint_maintained(true)?,
            // The recompute path owns the base log: it either replays it
            // into the cached working database or discards it with a fresh
            // rebuild.
            crate::maintain::ViewStatus::Unavailable => self.fixpoint_recompute()?,
        };
        stats.fixpoint_rounds = rounds;
        stats.derivations = outcome.derivations;
        stats.reads_blocked = outcome.reads_blocked;

        // Delegation churn does not bump the plan-cache epochs; drop plans
        // whose delegations are gone so the cache cannot grow unboundedly.
        self.stage_plans.retain_delegations(&self.delegated);

        // ---- Step 3: emit facts and rules.
        let mut messages = std::mem::take(&mut self.outbox_explicit);

        // Buffer extensional self-updates for the next stage.
        let mut self_updates = 0usize;
        for fact in &outcome.local_ext {
            let q = fact.qualified();
            if !self
                .store
                .relation(q)
                .is_some_and(|r| r.contains(&fact.tuple))
            {
                self.pending_updates.push(fact.clone());
                self_updates += 1;
            }
        }

        // Delegation diff: install new, revoke vanished.
        let mut installs: HashMap<Symbol, Vec<Delegation>> = HashMap::new();
        let mut revokes: HashMap<Symbol, Vec<DelegationId>> = HashMap::new();
        for (id, d) in &outcome.delegations {
            if !self.prev_delegations.contains_key(id) {
                installs.entry(d.target).or_default().push(d.clone());
            }
        }
        for (id, d) in &self.prev_delegations {
            if !outcome.delegations.contains_key(id) {
                revokes.entry(d.target).or_default().push(*id);
            }
        }
        // Emit per-target messages in sorted target order: hash-map
        // iteration order varies per map instance, and a stage's message
        // order must be a deterministic function of peer state so that
        // seeded simulation runs replay exactly (`tests/sim_conformance`).
        let mut installs: Vec<(Symbol, Vec<Delegation>)> = installs.into_iter().collect();
        installs.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        for (target, ds) in installs {
            stats.delegations_out += ds.len();
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(TraceEvent::DelegationInstall {
                    origin: self.name,
                    target,
                    from_stage: self.stage,
                    count: ds.len() as u64,
                });
            }
            messages.push(Message::new(self.name, target, Payload::Delegate(ds)));
        }
        let mut revokes: Vec<(Symbol, Vec<DelegationId>)> = revokes.into_iter().collect();
        revokes.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        for (target, ids) in revokes {
            stats.revocations_out += ids.len();
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(TraceEvent::DelegationRevoke {
                    origin: self.name,
                    target,
                    from_stage: self.stage,
                    count: ids.len() as u64,
                });
            }
            messages.push(Message::new(self.name, target, Payload::Revoke(ids)));
        }
        self.prev_delegations = outcome.delegations;

        // Remote fact diff per target.
        let targets: HashSet<Symbol> = outcome
            .remote_facts
            .keys()
            .chain(self.prev_sent.keys())
            .copied()
            .collect();
        let mut targets: Vec<Symbol> = targets.into_iter().collect();
        targets.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        let empty = HashSet::new();
        for target in targets {
            let cur = outcome.remote_facts.get(&target).unwrap_or(&empty);
            let prev = self.prev_sent.get(&target).unwrap_or(&empty);
            let additions: Vec<WFact> = cur.difference(prev).cloned().collect();
            let retractions: Vec<WFact> = prev.difference(cur).cloned().collect();
            if !additions.is_empty() || !retractions.is_empty() {
                stats.facts_out += additions.len() + retractions.len();
                messages.push(Message::new(
                    self.name,
                    target,
                    Payload::Facts {
                        kind: FactKind::Derived,
                        additions,
                        retractions,
                    },
                ));
            }
        }
        self.prev_sent = outcome.remote_facts;

        let changed = stats.ingested_messages > 0
            || stats.applied_updates > 0
            || store_changed
            || derived_changed
            || self_updates > 0
            || !messages.is_empty();

        if let Some(tr) = self.tracer.as_mut() {
            for msg in &messages {
                tr.record(TraceEvent::MsgSend {
                    from: self.name,
                    from_stage: self.stage,
                    to: msg.to,
                    items: msg.payload.item_count() as u64,
                });
            }
            if stats.reads_blocked > 0 {
                tr.record(TraceEvent::BlockedReads {
                    peer: self.name,
                    stage: self.stage,
                    count: stats.reads_blocked as u64,
                });
            }
            if let Some(t0) = t_stage {
                tr.record(TraceEvent::StageEnd {
                    peer: self.name,
                    stage: self.stage,
                    dur_ns: t0.elapsed().as_nanos() as u64,
                    derivations: stats.derivations as u64,
                    rounds: stats.fixpoint_rounds as u64,
                    msgs_in: stats.ingested_messages as u64,
                });
            }
        }
        self.last_stats = stats;
        self.cum_eval.iterations += stats.fixpoint_rounds;
        self.cum_eval.derivations += stats.derivations;
        self.cum_eval.facts_derived += outcome.local_new;

        // Group commit: everything this stage changed becomes durable
        // before its messages are handed to the transport, so a peer never
        // tells the world about state it could lose in a crash.
        self.sync_durability()?;

        Ok(StageOutput {
            messages,
            stats,
            changed,
        })
    }

    /// The pre-incremental stage fixpoint: run every rule — own and
    /// delegated — over `store + contributions` to a local fixpoint. Kept
    /// as the fallback for peers whose rule set does not compile (and as
    /// the reference semantics for the incremental path).
    ///
    /// The working database is cached across stages: instead of cloning
    /// the store and re-injecting every remote contribution each stage
    /// (the dominant fixed cost for hub peers), the previous stage's
    /// recorded derivations are removed and the base log is replayed —
    /// the rollback must run *before* the replay so a fact that was both
    /// derived last stage and base-inserted this stage survives.
    fn fixpoint_recompute(&mut self) -> Result<(Outcome, usize, bool)> {
        let mut cache = match self.working.take() {
            Some(mut cache) => {
                for fact in cache.derived.drain(..) {
                    cache.db.remove(&fact);
                }
                // Compress to the last operation per fact: each log entry
                // is a real store/contribution transition, so the last one
                // decides final membership.
                let mut last: HashMap<DFact, bool> = HashMap::new();
                for (fact, added) in self.base_log.drain(..) {
                    last.insert(fact, added);
                }
                for (fact, added) in last {
                    if added {
                        cache.db.insert(fact)?;
                    } else {
                        cache.db.remove(&fact);
                    }
                }
                cache
            }
            None => {
                self.base_log.clear();
                RecomputeCache {
                    db: self.current_base()?,
                    derived: Vec::new(),
                }
            }
        };

        // Static relation-level provenance of this peer's views, for the
        // default view read policy applied to delegated rules.
        let view_bases = crate::grants::view_base_relations(
            self.name,
            self.rules.iter().map(|e| e.rule.clone()),
        );

        // Classified stage plans: taken out of the peer for the duration of
        // the fixpoint (an error path drops the cache, which only costs a
        // re-classification at the next stage).
        let mut plans = std::mem::take(&mut self.stage_plans);
        plans.ensure_epoch(self.ruleset_epoch, self.grants_epoch);
        let use_plans = self.compiled_stage;

        let mut outcome = Outcome::default();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            if rounds > self.fixpoint_limit {
                return Err(WdlError::Datalog(
                    wdl_datalog::DatalogError::IterationLimit(self.fixpoint_limit),
                ));
            }
            let mut new_local: Vec<DFact> = Vec::new();
            let own = self.rules.iter().map(|e| {
                (
                    &e.rule,
                    None,
                    use_plans.then_some(PlanKey::Own(e.id)),
                    PlanKey::Own(e.id),
                )
            });
            let delegated = self.delegated.iter().map(|d| {
                (
                    &d.rule,
                    Some(d.origin),
                    use_plans.then_some(PlanKey::Delegated(d.id)),
                    PlanKey::Delegated(d.id),
                )
            });
            for (rule, origin, key, trace_key) in own.chain(delegated) {
                let ctx = EvalCtx {
                    peer: self.name,
                    schema: &self.schema,
                    grants: &self.grants,
                    view_bases: &view_bases,
                    origin,
                };
                let t0 = self.tracer.as_ref().map(|_| std::time::Instant::now());
                let d0 = outcome.derivations;
                eval_rule(
                    &ctx,
                    &cache.db,
                    rule,
                    key,
                    &mut plans,
                    &mut outcome,
                    &mut new_local,
                )?;
                if let (Some(tr), Some(t0)) = (self.tracer.as_mut(), t0) {
                    let label = tr.rule_label(trace_key, self.name, rule);
                    tr.record(TraceEvent::RuleEval {
                        peer: self.name,
                        stage: self.stage,
                        rule: label,
                        dur_ns: t0.elapsed().as_nanos() as u64,
                        delta_in: 0,
                        derived: (outcome.derivations - d0) as u64,
                    });
                }
            }
            let mut changed = false;
            for fact in new_local {
                // Record only actual insertions: facts already present are
                // base facts (or earlier derivations) and must not be
                // removed by the next stage's rollback.
                if cache.db.insert(fact.clone())? {
                    cache.derived.push(fact);
                    outcome.local_new += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.stage_plans = plans;

        // Snapshot intensional relations (everything in the working
        // database that is not extensional store content).
        let derived = self.snapshot_intensional(&cache.db)?;
        let derived_changed = !db_eq(&derived, &self.derived);
        self.derived = derived;
        if self.recompute_cache {
            self.working = Some(cache);
        }
        Ok((outcome, rounds, derived_changed))
    }

    /// Runs the incremental fixpoint, recovering from a mid-stage view
    /// invalidation ([`WdlError::ViewInvalidated`]) by falling back to a
    /// full recompute — the stage completes either way.
    fn fixpoint_maintained(&mut self, rebuilt: bool) -> Result<(Outcome, usize, bool)> {
        match self.fixpoint_incremental(rebuilt) {
            Err(WdlError::ViewInvalidated(_)) => {
                // The incremental attempt may have consumed part of the
                // base log; neither it nor the recompute cache can be
                // trusted — rebuild the working database from scratch.
                self.working = None;
                self.base_log.clear();
                self.fixpoint_recompute()
            }
            r => r,
        }
    }

    /// Copies the declared intensional relations out of a saturated
    /// database — the per-stage snapshot that `relation_facts`/`query`
    /// read. Shared by the recompute path and incremental rebuilds so the
    /// two can never drift.
    fn snapshot_intensional(&self, db: &Database) -> Result<Database> {
        let mut derived = Database::new();
        for decl in self.schema.iter() {
            if decl.kind == RelationKind::Intensional {
                let q = qualify(decl.rel, self.name);
                derived.declare(q, decl.arity)?;
                if let Some(rel) = db.relation(q) {
                    // Id-plane copy: no per-row value resolution/re-intern.
                    derived.copy_relation(q, rel)?;
                }
            }
        }
        Ok(derived)
    }

    /// The incremental stage fixpoint: the compiled rules' materialization
    /// is *maintained* under the base changes logged since the previous
    /// stage, and only the dynamic rules (delegations, remote atoms,
    /// variable names, extensional heads) are re-evaluated — their local
    /// derivations feed the view as base facts with external support, and
    /// derivations that stop holding are retracted through the view at the
    /// start of the next stage (per-stage soft state, as in the paper).
    fn fixpoint_incremental(&mut self, rebuilt: bool) -> Result<(Outcome, usize, bool)> {
        use wdl_datalog::incremental::Delta;

        // `ensure_view` normally guarantees a view here, but the guarantee
        // is cross-method state: never panic on the stage hot path over it.
        // A missing view is a recoverable error the caller
        // (`fixpoint_maintained`) turns into a full recompute.
        let Some(mut state) = self.incr.take() else {
            return Err(WdlError::ViewInvalidated(format!(
                "peer {} stage {}: maintained view missing at evaluation",
                self.name, self.stage
            )));
        };

        // Net membership changes of the materialization this stage:
        // +1 appeared, -1 disappeared (never beyond ±1 after netting).
        let mut net: HashMap<DFact, i8> = HashMap::new();
        // When traced, the view's differential maintenance records
        // per-rule costs here; they become `RuleEval` events below.
        let mut view_prof: Option<wdl_datalog::profile::RuleProfile> = self
            .tracer
            .is_some()
            .then(wdl_datalog::profile::RuleProfile::new);
        let mut apply =
            |state: &mut crate::maintain::IncrementalState, delta: &Delta| -> Result<()> {
                let out = state.view.apply_profiled(delta, view_prof.as_mut())?;
                for f in out.inserts {
                    match net.entry(f) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            *e.get_mut() += 1;
                            if *e.get() == 0 {
                                e.remove();
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(1);
                        }
                    }
                }
                for f in out.deletes {
                    match net.entry(f) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            *e.get_mut() -= 1;
                            if *e.get() == 0 {
                                e.remove();
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(-1);
                        }
                    }
                }
                Ok(())
            };

        // Base changes since the last stage, compressed to the last
        // operation per fact (each log entry is a real store transition, so
        // the last one decides final membership), plus retraction of the
        // previous stage's dynamic-layer derivations (soft state: what the
        // dynamic rules still support gets re-added below).
        // This drain makes the recompute cache unable to catch up later.
        self.working = None;
        let mut last: HashMap<DFact, bool> = HashMap::new();
        for (fact, added) in self.base_log.drain(..) {
            last.insert(fact, added);
        }
        let mut delta = Delta::new();
        for (fact, added) in last {
            if added {
                delta.insert(fact);
            } else {
                delta.delete(fact);
            }
        }
        // The view's base is a set, so a fact can carry external support
        // from *two* sources at once: the dynamic layer and a maintained
        // remote contribution. Retract the dynamic share only when no
        // contribution still stands, otherwise the fact (and everything
        // compiled on top of it) would vanish while a remote peer still
        // asserts it.
        let prev_dynamic = std::mem::take(&mut self.prev_dynamic);
        let contrib_by_pred: HashMap<Symbol, _> = self
            .remote_contrib
            .iter()
            .map(|(rel, origins)| (qualify(*rel, self.name), origins))
            .collect();
        for fact in prev_dynamic {
            let contributed = contrib_by_pred
                .get(&fact.pred)
                .is_some_and(|origins| origins.values().any(|s| s.contains(&fact.tuple)));
            if !contributed {
                delta.delete(fact);
            }
        }
        if !delta.is_empty() {
            apply(&mut state, &delta)?;
        }

        // Dynamic layer: evaluate non-compiled rules against the
        // materialization until no new local facts appear; each round's
        // fresh facts are folded into the view (so compiled rules react to
        // them) before the next round.
        let view_bases = crate::grants::view_base_relations(
            self.name,
            self.rules.iter().map(|e| e.rule.clone()),
        );
        let mut plans = std::mem::take(&mut self.stage_plans);
        plans.ensure_epoch(self.ruleset_epoch, self.grants_epoch);
        let use_plans = self.compiled_stage;

        let mut outcome = Outcome::default();
        let mut dyn_cur: HashSet<DFact> = HashSet::new();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            if rounds > self.fixpoint_limit {
                return Err(WdlError::Datalog(
                    wdl_datalog::DatalogError::IterationLimit(self.fixpoint_limit),
                ));
            }
            let mut new_local: Vec<DFact> = Vec::new();
            let own = self
                .rules
                .iter()
                .filter(|e| !state.compiled.contains(&e.id))
                .map(|e| {
                    (
                        &e.rule,
                        None,
                        use_plans.then_some(PlanKey::Own(e.id)),
                        PlanKey::Own(e.id),
                    )
                });
            let delegated = self.delegated.iter().map(|d| {
                (
                    &d.rule,
                    Some(d.origin),
                    use_plans.then_some(PlanKey::Delegated(d.id)),
                    PlanKey::Delegated(d.id),
                )
            });
            for (rule, origin, key, trace_key) in own.chain(delegated) {
                let ctx = EvalCtx {
                    peer: self.name,
                    schema: &self.schema,
                    grants: &self.grants,
                    view_bases: &view_bases,
                    origin,
                };
                let t0 = self.tracer.as_ref().map(|_| std::time::Instant::now());
                let d0 = outcome.derivations;
                eval_rule(
                    &ctx,
                    state.view.database(),
                    rule,
                    key,
                    &mut plans,
                    &mut outcome,
                    &mut new_local,
                )?;
                if let (Some(tr), Some(t0)) = (self.tracer.as_mut(), t0) {
                    let label = tr.rule_label(trace_key, self.name, rule);
                    tr.record(TraceEvent::RuleEval {
                        peer: self.name,
                        stage: self.stage,
                        rule: label,
                        dur_ns: t0.elapsed().as_nanos() as u64,
                        delta_in: 0,
                        derived: (outcome.derivations - d0) as u64,
                    });
                }
            }
            let fresh: Vec<DFact> = new_local
                .into_iter()
                .filter(|f| dyn_cur.insert(f.clone()))
                .collect();
            if fresh.is_empty() {
                break;
            }
            outcome.local_new += fresh.len();
            let mut d = Delta::new();
            for f in fresh {
                d.insert(f);
            }
            apply(&mut state, &d)?;
        }
        self.stage_plans = plans;
        self.prev_dynamic = dyn_cur;
        // Fold the view layer's per-rule maintenance costs into the
        // trace, labelled by the maintained head predicate.
        if let (Some(mut prof), Some(tr)) = (view_prof.take(), self.tracer.as_mut()) {
            for (head, c) in prof.drain() {
                tr.record(TraceEvent::RuleEval {
                    peer: self.name,
                    stage: self.stage,
                    rule: head,
                    dur_ns: c.ns,
                    delta_in: c.delta_in,
                    derived: c.derived,
                });
            }
        }

        // Refresh the intensional snapshot: full copy after a rebuild,
        // O(|change|) patching otherwise.
        let derived_changed = if rebuilt {
            let derived = self.snapshot_intensional(state.view.database())?;
            let changed = !db_eq(&derived, &self.derived);
            self.derived = derived;
            changed
        } else {
            let intensional: HashSet<Symbol> = self
                .schema
                .iter()
                .filter(|d| d.kind == RelationKind::Intensional)
                .map(|d| qualify(d.rel, self.name))
                .collect();
            let mut changed = false;
            for (fact, sign) in net {
                if !intensional.contains(&fact.pred) {
                    continue;
                }
                if sign > 0 {
                    self.derived.insert(fact)?;
                    changed = true;
                } else if sign < 0 {
                    self.derived.remove(&fact);
                    changed = true;
                }
            }
            changed
        };

        self.incr = Some(state);
        Ok((outcome, rounds, derived_changed))
    }

    fn ingest(
        &mut self,
        msg: Message,
        stats: &mut StageStats,
        store_changed: &mut bool,
    ) -> Result<()> {
        match msg.payload {
            Payload::Facts {
                kind,
                additions,
                retractions,
            } => {
                for fact in additions {
                    if fact.peer != self.name {
                        stats.rejected += 1;
                        continue;
                    }
                    if !self.grants.can_write(fact.rel, msg.from) {
                        stats.rejected += 1;
                        continue;
                    }
                    match (kind, self.local_kind_or_declare(&fact)?) {
                        (_, RelationKind::Extensional) => {
                            let q = fact.qualified();
                            let tuple = fact.tuple;
                            if self.store.insert_tuple(q, tuple.clone())? {
                                *store_changed = true;
                                self.log_base_change(DFact { pred: q, tuple }, true);
                            }
                        }
                        (FactKind::Derived, RelationKind::Intensional) => {
                            let q = fact.qualified();
                            let tuple = fact.tuple;
                            let entry = self
                                .remote_contrib
                                .entry(fact.rel)
                                .or_default()
                                .entry(msg.from)
                                .or_default();
                            if entry.insert(tuple.clone()) {
                                *store_changed = true;
                                self.log_base_change(DFact { pred: q, tuple }, true);
                            }
                        }
                        (FactKind::Persistent, RelationKind::Intensional) => {
                            // Explicit updates may not write views.
                            stats.rejected += 1;
                        }
                    }
                }
                for fact in retractions {
                    if fact.peer != self.name {
                        stats.rejected += 1;
                        continue;
                    }
                    if !self.grants.can_write(fact.rel, msg.from) {
                        stats.rejected += 1;
                        continue;
                    }
                    #[allow(clippy::collapsible_match)]
                    match (kind, self.schema.kind_of(fact.rel)) {
                        (FactKind::Persistent, Some(RelationKind::Extensional)) => {
                            let dfact = DFact {
                                pred: fact.qualified(),
                                tuple: fact.tuple,
                            };
                            let removed = self.store.remove(&dfact);
                            if removed {
                                *store_changed = true;
                                self.log_base_change(dfact, false);
                            }
                        }
                        (FactKind::Derived, Some(RelationKind::Intensional)) => {
                            let q = fact.qualified();
                            if let Some(origins) = self.remote_contrib.get_mut(&fact.rel) {
                                if let Some(set) = origins.get_mut(&msg.from) {
                                    if set.remove(&fact.tuple) {
                                        *store_changed = true;
                                        // The base fact stands while *any*
                                        // origin still contributes it.
                                        let still =
                                            origins.values().any(|s| s.contains(&fact.tuple));
                                        if !still {
                                            self.log_base_change(
                                                DFact {
                                                    pred: q,
                                                    tuple: fact.tuple,
                                                },
                                                false,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        // Derived retractions against extensional relations
                        // are ignored: derivations into stored relations are
                        // monotone insertion updates (PODS'11 semantics).
                        _ => {}
                    }
                }
            }
            Payload::Delegate(ds) => {
                for d in ds {
                    if d.target != self.name || d.origin != msg.from {
                        stats.rejected += 1;
                        continue;
                    }
                    if d.rule.check_safety().is_err() {
                        stats.rejected += 1;
                        continue;
                    }
                    match self.acl.decide(d.origin) {
                        DelegationDecision::Install => self.install_delegation(d),
                        DelegationDecision::Queue => self.acl.push_pending(d, self.stage),
                        DelegationDecision::Reject => stats.rejected += 1,
                    }
                }
            }
            Payload::Revoke(ids) => {
                for id in ids {
                    let removed = self.remove_delegation(id);
                    let dropped = self.acl.drop_pending(id);
                    if !removed && !dropped {
                        stats.rejected += 1;
                    }
                }
            }
            // Session frames are transport-internal: a session endpoint
            // consumes them before the app layer, so one reaching the
            // stage loop means the peer runs without sessions against a
            // sessioned correspondent. Drop it — the sub-protocol
            // carries no application state.
            Payload::Session(_) => {
                stats.rejected += 1;
            }
        }
        Ok(())
    }

    fn local_kind_or_declare(&mut self, fact: &WFact) -> Result<RelationKind> {
        match self.schema.kind_of(fact.rel) {
            Some(k) => Ok(k),
            None => {
                // Open world: unknown relations materialize as extensional
                // ("peers may discover ... new relations", §2).
                self.declare(fact.rel, fact.arity(), RelationKind::Extensional)?;
                Ok(RelationKind::Extensional)
            }
        }
    }
}

fn db_eq(a: &Database, b: &Database) -> bool {
    if a.fact_count() != b.fact_count() {
        return false;
    }
    a.facts().all(|f| b.contains(&f))
}

/// Evaluates one rule over `working`.
///
/// With `key` set (compiled stage evaluation), the rule's classified plan
/// is fetched from — or compiled into — `plans`, the local prefix runs as
/// a register-file plan, and the cut action fires heads / counts blocked
/// reads / emits delegations from the yielded registers (see
/// `stage_plan.rs`). With `key == None`, the `Subst` reference interpreter
/// ([`walk`]) evaluates the whole rule: local positive atoms join through
/// the datalog matcher and the first non-local atom turns the remainder
/// into a delegation. When the rule is a delegation (`ctx.origin` set),
/// every local relation it reads is gated by the owner's relation grants
/// under the provenance-derived view policy — hoisted to classification
/// time on the compiled path, checked per literal visit by the
/// interpreter; both count the same blocked reads.
fn eval_rule(
    ctx: &EvalCtx<'_>,
    working: &Database,
    rule: &WRule,
    key: Option<PlanKey>,
    plans: &mut StagePlans,
    outcome: &mut Outcome,
    new_local: &mut Vec<DFact>,
) -> Result<()> {
    let Some(key) = key else {
        return walk(ctx, working, rule, 0, Subst::new(), outcome, new_local);
    };
    let StagePlans {
        own,
        delegated,
        scratch,
        ..
    } = plans;
    let srp = match key {
        PlanKey::Own(id) => own
            .entry(id)
            .or_insert_with(|| classify(rule, ctx.peer, ctx.origin, ctx.grants, ctx.view_bases)),
        PlanKey::Delegated(id) => delegated
            .entry(id)
            .or_insert_with(|| classify(rule, ctx.peer, ctx.origin, ctx.grants, ctx.view_bases)),
    };
    match srp {
        crate::stage_plan::StageRulePlan::Interpreted => {
            walk(ctx, working, rule, 0, Subst::new(), outcome, new_local)
        }
        crate::stage_plan::StageRulePlan::Compiled(c) => {
            run_compiled(ctx, working, rule, c, scratch, outcome, new_local)
        }
    }
}

/// Runs a compiled prefix plan, tunneling stage-layer errors through the
/// datalog executor's error channel (the emit callback aborts the walk
/// with a sentinel; the real error is returned to the caller).
fn run_prefix(
    plan: &wdl_datalog::eval::BodyPlan,
    working: &Database,
    scratch: &mut wdl_datalog::eval::BodyScratch,
    emit: &mut dyn FnMut(&[ValueId]) -> Result<()>,
) -> Result<()> {
    const ABORT: usize = usize::MAX - 1;
    let mut werr: Option<WdlError> = None;
    let r = plan.run(working, scratch, &[], &mut |regs| match emit(regs) {
        Ok(()) => Ok(()),
        Err(e) => {
            werr = Some(e);
            Err(wdl_datalog::DatalogError::IterationLimit(ABORT))
        }
    });
    if let Some(e) = werr {
        return Err(e);
    }
    r.map_err(WdlError::from)
}

/// Executes one classified rule: prefix plan, then the cut action per
/// yielded register file.
fn run_compiled(
    ctx: &EvalCtx<'_>,
    working: &Database,
    rule: &WRule,
    c: &CompiledRule,
    scratch: &mut wdl_datalog::eval::BodyScratch,
    outcome: &mut Outcome,
    new_local: &mut Vec<DFact>,
) -> Result<()> {
    match &c.cut {
        Cut::Head(h) => run_prefix(&c.plan, working, scratch, &mut |regs| {
            fire_head_from_regs(ctx, h, regs, outcome, new_local)
        }),
        Cut::Blocked => run_prefix(&c.plan, working, scratch, &mut |_regs| {
            outcome.reads_blocked += 1;
            Ok(())
        }),
        Cut::Delegate { idx, live } => {
            // Identical projections of the live registers instantiate
            // identical remainders (and hence identical content-addressed
            // delegations): dedup before paying for instantiation. The
            // continuation emits no counters, so dedup is exactly
            // semantics-preserving.
            let mut seen: HashSet<Box<[ValueId]>> = HashSet::new();
            run_prefix(&c.plan, working, scratch, &mut |regs| {
                if seen.insert(CompiledRule::live_key(live, regs)) {
                    let subst = CompiledRule::live_subst(live, regs);
                    walk(ctx, working, rule, *idx, subst, outcome, new_local)?;
                }
                Ok(())
            })
        }
        Cut::Resume { idx, live } => run_prefix(&c.plan, working, scratch, &mut |regs| {
            // No dedup: the interpreter continuation may fire heads and
            // count per-binding, and parity requires one continuation per
            // yielded binding.
            let subst = CompiledRule::live_subst(live, regs);
            walk(ctx, working, rule, *idx, subst, outcome, new_local)
        }),
    }
}

/// Resolves a head-position name from the register file, with the same
/// string-typing rule (and error text) as [`crate::NameTerm::resolve`].
fn resolve_name_src(src: &NameSrc, regs: &[ValueId]) -> Result<Symbol> {
    match src {
        NameSrc::Const(s) => Ok(*s),
        NameSrc::Reg(r, var) => match regs[*r as usize].value() {
            wdl_datalog::Value::Str(s) => Ok(Symbol::intern(&s)),
            other => Err(WdlError::BadNameBinding(format!(
                "variable ${var} used as a name is bound to {other} (a {}), expected a string",
                other.type_name()
            ))),
        },
    }
}

/// Fires a fully-local rule's head straight from the register file —
/// the compiled counterpart of [`fire_head`], sharing its routing.
fn fire_head_from_regs(
    ctx: &EvalCtx<'_>,
    h: &HeadPlan,
    regs: &[ValueId],
    outcome: &mut Outcome,
    new_local: &mut Vec<DFact>,
) -> Result<()> {
    outcome.derivations += 1;
    let rel = resolve_name_src(&h.rel, regs)?;
    let peer = resolve_name_src(&h.peer, regs)?;
    let mut values = Vec::with_capacity(h.args.len());
    for a in &h.args {
        values.push(match a {
            crate::stage_plan::ArgSrc::Const(v) => v.clone(),
            crate::stage_plan::ArgSrc::Reg(r) => regs[*r as usize].value(),
        });
    }
    route_head_fact(
        ctx,
        WFact {
            rel,
            peer,
            tuple: values.into(),
        },
        outcome,
        new_local,
    );
    Ok(())
}

/// Shared head-fact routing: local extensional heads buffer self-updates,
/// local intensional (or undeclared) heads derive in place, remote heads
/// ship as derived facts. Used by both the interpreter and the compiled
/// path so the two cannot drift.
fn route_head_fact(
    ctx: &EvalCtx<'_>,
    fact: WFact,
    outcome: &mut Outcome,
    new_local: &mut Vec<DFact>,
) {
    if fact.peer == ctx.peer {
        // Default kind for rule-written local relations is intensional (a
        // rule head defines a view unless declared otherwise).
        match ctx.schema.kind_of(fact.rel) {
            Some(RelationKind::Extensional) => {
                outcome.local_ext.insert(fact);
            }
            _ => {
                new_local.push(DFact {
                    pred: fact.qualified(),
                    tuple: fact.tuple,
                });
            }
        }
    } else {
        outcome
            .remote_facts
            .entry(fact.peer)
            .or_default()
            .insert(fact);
    }
}

fn walk(
    ctx: &EvalCtx<'_>,
    working: &Database,
    rule: &WRule,
    idx: usize,
    subst: Subst,
    outcome: &mut Outcome,
    new_local: &mut Vec<DFact>,
) -> Result<()> {
    let Some(item) = rule.body.get(idx) else {
        return fire_head(ctx, rule, &subst, outcome, new_local);
    };
    match item {
        WBodyItem::Cmp { op, lhs, rhs } => {
            let l = lhs.resolve(&subst).ok_or_else(|| {
                WdlError::UnsafeDistribution(format!("unbound {lhs} in comparison of {rule}"))
            })?;
            let r = rhs.resolve(&subst).ok_or_else(|| {
                WdlError::UnsafeDistribution(format!("unbound {rhs} in comparison of {rule}"))
            })?;
            if op.eval(&l, &r)? {
                walk(ctx, working, rule, idx + 1, subst, outcome, new_local)?;
            }
            Ok(())
        }
        WBodyItem::Assign { var, expr } => {
            let value = expr.eval(&subst)?;
            let mut s = subst;
            if !s.unify_var(*var, &value) {
                return Ok(());
            }
            walk(ctx, working, rule, idx + 1, s, outcome, new_local)
        }
        WBodyItem::Literal(lit) => {
            let atom_peer = lit.atom.peer.resolve(&subst)?.ok_or_else(|| {
                WdlError::UnsafeDistribution(format!(
                    "peer of {} unresolved at evaluation (rule {rule})",
                    lit.atom
                ))
            })?;
            if atom_peer == ctx.peer {
                let rel = lit.atom.rel.resolve(&subst)?.ok_or_else(|| {
                    WdlError::UnsafeDistribution(format!(
                        "relation of {} unresolved at evaluation (rule {rule})",
                        lit.atom
                    ))
                })?;
                // Read gate for delegated rules: the origin must be allowed
                // to read this relation (directly, and through the
                // provenance-derived policy for views).
                if let Some(origin) = ctx.origin {
                    if !ctx.grants.can_read(rel, origin, ctx.view_bases) {
                        outcome.reads_blocked += 1;
                        return Ok(());
                    }
                }
                let datom = DAtom::new(qualify(rel, ctx.peer), lit.atom.args.clone());
                if lit.negated {
                    let fact = datom.ground(&subst).ok_or_else(|| {
                        WdlError::UnsafeDistribution(format!(
                            "negated atom {} not ground (rule {rule})",
                            lit.atom
                        ))
                    })?;
                    if !working.contains(&fact) {
                        walk(ctx, working, rule, idx + 1, subst, outcome, new_local)?;
                    }
                    Ok(())
                } else {
                    let matches = eval::evaluate_body(working, &[datom.into()], subst)?;
                    for s in matches {
                        walk(ctx, working, rule, idx + 1, s, outcome, new_local)?;
                    }
                    Ok(())
                }
            } else {
                // First non-local atom: delegate the instantiated remainder.
                let mut body = Vec::with_capacity(rule.body.len() - idx);
                for item in &rule.body[idx..] {
                    body.push(item.apply(&subst)?);
                }
                let head = rule.head.apply(&subst)?;
                // Onward delegation of a delegated rule is attributed to
                // *this* peer, so access control chains hop by hop — the
                // conservative reading of the paper's model.
                let d = Delegation::new(ctx.peer, atom_peer, WRule::new(head, body));
                outcome.delegations.entry(d.id).or_insert(d);
                Ok(())
            }
        }
    }
}

fn fire_head(
    ctx: &EvalCtx<'_>,
    rule: &WRule,
    subst: &Subst,
    outcome: &mut Outcome,
    new_local: &mut Vec<DFact>,
) -> Result<()> {
    outcome.derivations += 1;
    let fact = rule
        .head
        .ground(subst)?
        .ok_or_else(|| WdlError::UnsafeDistribution(format!("head of {rule} not fully bound")))?;
    route_head_fact(ctx, fact, outcome, new_local);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NameTerm, WAtom};
    use wdl_datalog::{Term, Value};

    fn peer(name: &str) -> Peer {
        let mut p = Peer::new(name);
        p.acl_mut()
            .set_untrusted_policy(crate::acl::UntrustedPolicy::Accept);
        p
    }

    /// Fully-local rule: derives into an intensional relation in one stage.
    #[test]
    fn local_view_rule() {
        let mut p = peer("a");
        p.declare("good", 1, RelationKind::Intensional).unwrap();
        p.insert_local("rate", vec![Value::from(1), Value::from(5)])
            .unwrap();
        p.insert_local("rate", vec![Value::from(2), Value::from(2)])
            .unwrap();
        p.add_rule(WRule::new(
            WAtom::at("good", "a", vec![Term::var("id")]),
            vec![
                WAtom::at("rate", "a", vec![Term::var("id"), Term::var("r")]).into(),
                WBodyItem::cmp(wdl_datalog::CmpOp::Ge, Term::var("r"), Term::cst(4)),
            ],
        ))
        .unwrap();
        let out = p.run_stage().unwrap();
        assert!(out.changed);
        assert_eq!(p.relation_facts("good").len(), 1);
        assert!(out.messages.is_empty());
    }

    /// Rule with extensional head: insertion lands at the *next* stage.
    #[test]
    fn extensional_head_applies_next_stage() {
        let mut p = peer("a");
        p.declare("archive", 1, RelationKind::Extensional).unwrap();
        p.insert_local("item", vec![Value::from(7)]).unwrap();
        p.add_rule(WRule::new(
            WAtom::at("archive", "a", vec![Term::var("x")]),
            vec![WAtom::at("item", "a", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        p.run_stage().unwrap();
        assert!(
            p.relation_facts("archive").is_empty(),
            "buffered, not applied"
        );
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("archive").len(), 1);
    }

    /// First non-local atom produces a delegation, not local evaluation.
    #[test]
    fn remote_atom_delegates() {
        let mut p = peer("jules");
        p.declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        p.insert_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        p.add_rule(WRule::example_attendee_pictures("jules"))
            .unwrap();
        let out = p.run_stage().unwrap();
        let delegs: Vec<&Message> = out
            .messages
            .iter()
            .filter(|m| matches!(m.payload, Payload::Delegate(_)))
            .collect();
        assert_eq!(delegs.len(), 1);
        assert_eq!(delegs[0].to.as_str(), "emilien");
        if let Payload::Delegate(ds) = &delegs[0].payload {
            // The delegated rule is the paper's: attendeePictures@jules(...)
            // :- pictures@emilien(...)
            assert_eq!(
                ds[0].rule.to_string(),
                "attendeePictures@jules($id, $name, $owner, $data) :- \
                 pictures@emilien($id, $name, $owner, $data)"
            );
        }
    }

    /// Deselecting the attendee revokes the delegation (per-stage re-derivation).
    #[test]
    fn delegation_revoked_when_support_disappears() {
        let mut p = peer("jules");
        p.declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        p.insert_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        p.add_rule(WRule::example_attendee_pictures("jules"))
            .unwrap();
        p.run_stage().unwrap();
        p.delete_local("selectedAttendee", vec![Value::from("emilien")])
            .unwrap();
        let out = p.run_stage().unwrap();
        let revokes: Vec<&Message> = out
            .messages
            .iter()
            .filter(|m| matches!(m.payload, Payload::Revoke(_)))
            .collect();
        assert_eq!(revokes.len(), 1);
    }

    /// A stage with nothing to do reports no change.
    #[test]
    fn quiescent_stage_reports_unchanged() {
        let mut p = peer("idle");
        p.insert_local("r", vec![Value::from(1)]).unwrap();
        let first = p.run_stage().unwrap();
        assert!(first.changed || first.messages.is_empty());
        let second = p.run_stage().unwrap();
        assert!(!second.changed);
        assert!(second.messages.is_empty());
    }

    /// Derived facts received for an intensional relation are maintained
    /// per origin and retract when the origin retracts.
    #[test]
    fn derived_contributions_retract() {
        let mut p = peer("jules");
        p.declare("attendeePictures", 1, RelationKind::Intensional)
            .unwrap();
        let add = Message::new(
            Symbol::intern("emilien"),
            Symbol::intern("jules"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![WFact::new(
                    "attendeePictures",
                    "jules",
                    vec![Value::from(1)],
                )],
                retractions: vec![],
            },
        );
        p.enqueue(add);
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("attendeePictures").len(), 1);
        let retract = Message::new(
            Symbol::intern("emilien"),
            Symbol::intern("jules"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![],
                retractions: vec![WFact::new(
                    "attendeePictures",
                    "jules",
                    vec![Value::from(1)],
                )],
            },
        );
        p.enqueue(retract);
        p.run_stage().unwrap();
        assert!(p.relation_facts("attendeePictures").is_empty());
    }

    /// Derived facts received for an extensional relation persist (monotone
    /// insertion updates) and ignore retractions.
    #[test]
    fn derived_into_extensional_is_monotone() {
        let mut p = peer("inbox");
        p.declare("email", 1, RelationKind::Extensional).unwrap();
        let f = WFact::new("email", "inbox", vec![Value::from("hello")]);
        p.enqueue(Message::new(
            Symbol::intern("x"),
            Symbol::intern("inbox"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![f.clone()],
                retractions: vec![],
            },
        ));
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("email").len(), 1);
        p.enqueue(Message::new(
            Symbol::intern("x"),
            Symbol::intern("inbox"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![],
                retractions: vec![f],
            },
        ));
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("email").len(), 1, "retraction ignored");
    }

    /// Facts addressed to the wrong peer are rejected.
    #[test]
    fn misaddressed_facts_rejected() {
        let mut p = peer("right");
        p.enqueue(Message::new(
            Symbol::intern("x"),
            Symbol::intern("right"),
            Payload::Facts {
                kind: FactKind::Persistent,
                additions: vec![WFact::new("r", "WRONG", vec![Value::from(1)])],
                retractions: vec![],
            },
        ));
        let out = p.run_stage().unwrap();
        assert_eq!(out.stats.rejected, 1);
    }

    /// ACL queueing: untrusted delegation waits; approval installs it.
    #[test]
    fn untrusted_delegation_queues_until_approved() {
        let mut p = Peer::new("jules"); // default policy: queue
        p.declare("attendeePictures", 4, RelationKind::Intensional)
            .unwrap();
        let d = Delegation::new(
            Symbol::intern("julia"),
            Symbol::intern("jules"),
            WRule::new(
                WAtom::at(
                    "attendeePictures",
                    "jules",
                    vec![
                        Term::var("a"),
                        Term::var("b"),
                        Term::var("c"),
                        Term::var("d"),
                    ],
                ),
                vec![WAtom::at(
                    "pictures",
                    "jules",
                    vec![
                        Term::var("a"),
                        Term::var("b"),
                        Term::var("c"),
                        Term::var("d"),
                    ],
                )
                .into()],
            ),
        );
        let id = d.id;
        p.enqueue(Message::new(
            Symbol::intern("julia"),
            Symbol::intern("jules"),
            Payload::Delegate(vec![d]),
        ));
        p.insert_local(
            "pictures",
            vec![
                Value::from(1),
                Value::from("x.jpg"),
                Value::from("julia"),
                Value::bytes(&[1]),
            ],
        )
        .unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.pending_delegations().len(), 1);
        assert!(p.relation_facts("attendeePictures").is_empty());
        p.approve_delegation(id).unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.installed_delegations().len(), 1);
        assert_eq!(p.relation_facts("attendeePictures").len(), 1);
    }

    /// Unsafe delegated rules are rejected at ingestion.
    #[test]
    fn unsafe_delegation_rejected() {
        let mut p = peer("t");
        let bad_rule = WRule::new(WAtom::at("out", "t", vec![Term::var("x")]), vec![]);
        let d = Delegation::new(Symbol::intern("o"), Symbol::intern("t"), bad_rule);
        p.enqueue(Message::new(
            Symbol::intern("o"),
            Symbol::intern("t"),
            Payload::Delegate(vec![d]),
        ));
        let out = p.run_stage().unwrap();
        assert_eq!(out.stats.rejected, 1);
        assert!(p.installed_delegations().is_empty());
    }

    /// Revoking removes installed delegations.
    #[test]
    fn revoke_removes_installed() {
        let mut p = peer("t");
        let d = Delegation::new(
            Symbol::intern("o"),
            Symbol::intern("t"),
            WRule::new(
                WAtom::at("v", "o", vec![Term::var("x")]),
                vec![WAtom::at("r", "t", vec![Term::var("x")]).into()],
            ),
        );
        let id = d.id;
        p.enqueue(Message::new(
            Symbol::intern("o"),
            Symbol::intern("t"),
            Payload::Delegate(vec![d]),
        ));
        p.run_stage().unwrap();
        assert_eq!(p.installed_delegations().len(), 1);
        p.enqueue(Message::new(
            Symbol::intern("o"),
            Symbol::intern("t"),
            Payload::Revoke(vec![id]),
        ));
        p.run_stage().unwrap();
        assert!(p.installed_delegations().is_empty());
    }

    /// Head with variable relation name: the paper's protocol-dispatch rule.
    #[test]
    fn variable_relation_head_dispatches() {
        let mut p = peer("jules");
        // $protocol@jules($n) :- communicate@jules($protocol), sel@jules($n)
        p.add_rule(WRule::new(
            WAtom::new(
                NameTerm::var("protocol"),
                NameTerm::name("jules"),
                vec![Term::var("n")],
            ),
            vec![
                WAtom::at("communicate", "jules", vec![Term::var("protocol")]).into(),
                WAtom::at("sel", "jules", vec![Term::var("n")]).into(),
            ],
        ))
        .unwrap();
        p.declare("email", 1, RelationKind::Intensional).unwrap();
        p.insert_local("communicate", vec![Value::from("email")])
            .unwrap();
        p.insert_local("sel", vec![Value::from("pic1")]).unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("email").len(), 1);
    }

    /// Recursive local rules reach a fixpoint within one stage.
    #[test]
    fn recursive_local_fixpoint() {
        let mut p = peer("g");
        p.declare("path", 2, RelationKind::Intensional).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            p.insert_local("edge", vec![Value::from(a), Value::from(b)])
                .unwrap();
        }
        p.add_rule(WRule::new(
            WAtom::at("path", "g", vec![Term::var("x"), Term::var("y")]),
            vec![WAtom::at("edge", "g", vec![Term::var("x"), Term::var("y")]).into()],
        ))
        .unwrap();
        p.add_rule(WRule::new(
            WAtom::at("path", "g", vec![Term::var("x"), Term::var("z")]),
            vec![
                WAtom::at("edge", "g", vec![Term::var("x"), Term::var("y")]).into(),
                WAtom::at("path", "g", vec![Term::var("y"), Term::var("z")]).into(),
            ],
        ))
        .unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("path").len(), 6);
    }

    /// Fully local rules are compiled into a maintained materialization;
    /// deletions between stages are maintained incrementally and reach the
    /// same state as recomputation.
    #[test]
    fn compiled_view_maintains_deletions_across_stages() {
        let mut p = peer("inc");
        p.declare("visible", 1, RelationKind::Intensional).unwrap();
        p.add_rule(WRule::new(
            WAtom::at("visible", "inc", vec![Term::var("x")]),
            vec![
                WAtom::at("item", "inc", vec![Term::var("x")]).into(),
                WBodyItem::not_atom(WAtom::at("hidden", "inc", vec![Term::var("x")])),
            ],
        ))
        .unwrap();
        for i in 0..10 {
            p.insert_local("item", vec![Value::from(i)]).unwrap();
        }
        p.insert_local("hidden", vec![Value::from(3)]).unwrap();
        p.run_stage().unwrap();
        assert!(p.incr.is_some(), "fully local rule must compile");
        assert_eq!(p.relation_facts("visible").len(), 9);

        // A deletion is maintained, not recomputed: the view survives.
        p.delete_local("item", vec![Value::from(5)]).unwrap();
        let out = p.run_stage().unwrap();
        assert!(out.changed);
        assert_eq!(p.relation_facts("visible").len(), 8);
        assert!(p.incr.is_some());

        // Un-hiding via deletion from a negated relation *adds* facts.
        p.delete_local("hidden", vec![Value::from(3)]).unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("visible").len(), 9);

        // Quiescent stage after the churn reports no change.
        let quiet = p.run_stage().unwrap();
        assert!(!quiet.changed);
    }

    /// Recursive local rules stay correct under incremental deletion (the
    /// DRed path of the maintained view).
    #[test]
    fn compiled_view_maintains_recursion() {
        let mut p = peer("rec");
        p.declare("path", 2, RelationKind::Intensional).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            p.insert_local("edge", vec![Value::from(a), Value::from(b)])
                .unwrap();
        }
        p.add_rule(WRule::new(
            WAtom::at("path", "rec", vec![Term::var("x"), Term::var("y")]),
            vec![WAtom::at("edge", "rec", vec![Term::var("x"), Term::var("y")]).into()],
        ))
        .unwrap();
        p.add_rule(WRule::new(
            WAtom::at("path", "rec", vec![Term::var("x"), Term::var("z")]),
            vec![
                WAtom::at("edge", "rec", vec![Term::var("x"), Term::var("y")]).into(),
                WAtom::at("path", "rec", vec![Term::var("y"), Term::var("z")]).into(),
            ],
        ))
        .unwrap();
        p.run_stage().unwrap();
        assert!(p.incr.is_some());
        assert_eq!(p.relation_facts("path").len(), 6);

        p.delete_local("edge", vec![Value::from(2), Value::from(3)])
            .unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("path").len(), 2);

        p.insert_local("edge", vec![Value::from(2), Value::from(3)])
            .unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("path").len(), 6);
    }

    /// Adding or removing a rule invalidates the compiled view (epoch
    /// bump) and the rebuilt materialization is correct.
    #[test]
    fn rule_changes_rebuild_compiled_view() {
        let mut p = peer("rb");
        p.declare("a", 1, RelationKind::Intensional).unwrap();
        p.insert_local("base", vec![Value::from(1)]).unwrap();
        let id = p
            .add_rule(WRule::new(
                WAtom::at("a", "rb", vec![Term::var("x")]),
                vec![WAtom::at("base", "rb", vec![Term::var("x")]).into()],
            ))
            .unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("a").len(), 1);

        p.declare("b", 1, RelationKind::Intensional).unwrap();
        p.add_rule(WRule::new(
            WAtom::at("b", "rb", vec![Term::var("x")]),
            vec![WAtom::at("a", "rb", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("b").len(), 1);

        p.remove_rule(id).unwrap();
        p.run_stage().unwrap();
        assert!(p.relation_facts("a").is_empty());
        assert!(p.relation_facts("b").is_empty());
    }

    /// Dynamic-layer derivations (here: a delegated rule) feed the
    /// compiled layer as external support and retract when their own
    /// support disappears.
    #[test]
    fn dynamic_layer_feeds_compiled_layer() {
        let mut p = peer("mix");
        p.declare("feed", 1, RelationKind::Intensional).unwrap();
        p.declare("echo", 1, RelationKind::Intensional).unwrap();
        // Compiled: echo(x) :- feed(x).
        p.add_rule(WRule::new(
            WAtom::at("echo", "mix", vec![Term::var("x")]),
            vec![WAtom::at("feed", "mix", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        // Dynamic (delegated): feed(x) :- src(x).
        let d = Delegation::new(
            Symbol::intern("origin"),
            Symbol::intern("mix"),
            WRule::new(
                WAtom::at("feed", "mix", vec![Term::var("x")]),
                vec![WAtom::at("src", "mix", vec![Term::var("x")]).into()],
            ),
        );
        p.install_delegation(d);
        p.insert_local("src", vec![Value::from(7)]).unwrap();
        p.run_stage().unwrap();
        assert!(p.incr.is_some());
        assert_eq!(p.relation_facts("feed").len(), 1);
        assert_eq!(p.relation_facts("echo").len(), 1);

        // Remove the dynamic rule's support: both layers retract.
        p.delete_local("src", vec![Value::from(7)]).unwrap();
        p.run_stage().unwrap();
        assert!(p.relation_facts("feed").is_empty());
        assert!(p.relation_facts("echo").is_empty());
    }

    /// A fact can carry external support from a remote contribution *and*
    /// the dynamic layer at once; losing the dynamic share must not retract
    /// it while the contribution still stands (and vice versa).
    #[test]
    fn dual_support_contribution_outlives_dynamic_share() {
        let mut p = peer("dual");
        p.declare("feed", 1, RelationKind::Intensional).unwrap();
        p.declare("echo", 1, RelationKind::Intensional).unwrap();
        // Compiled consumer of feed.
        p.add_rule(WRule::new(
            WAtom::at("echo", "dual", vec![Term::var("x")]),
            vec![WAtom::at("feed", "dual", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        // Dynamic (delegated) producer of feed.
        p.install_delegation(Delegation::new(
            Symbol::intern("origin"),
            Symbol::intern("dual"),
            WRule::new(
                WAtom::at("feed", "dual", vec![Term::var("x")]),
                vec![WAtom::at("src", "dual", vec![Term::var("x")]).into()],
            ),
        ));
        p.insert_local("src", vec![Value::from(7)]).unwrap();
        // Remote contribution asserting the same fact.
        p.enqueue(Message::new(
            Symbol::intern("remote"),
            Symbol::intern("dual"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![WFact::new("feed", "dual", vec![Value::from(7)])],
                retractions: vec![],
            },
        ));
        p.run_stage().unwrap();
        assert!(p.incr.is_some());
        assert_eq!(p.relation_facts("feed").len(), 1);
        assert_eq!(p.relation_facts("echo").len(), 1);

        // Dynamic support disappears; the contribution still stands.
        p.delete_local("src", vec![Value::from(7)]).unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("feed").len(), 1, "contribution holds");
        assert_eq!(p.relation_facts("echo").len(), 1);

        // Contribution retracts too: now the fact (and its consequence) go.
        p.enqueue(Message::new(
            Symbol::intern("remote"),
            Symbol::intern("dual"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![],
                retractions: vec![WFact::new("feed", "dual", vec![Value::from(7)])],
            },
        ));
        p.run_stage().unwrap();
        assert!(p.relation_facts("feed").is_empty());
        assert!(p.relation_facts("echo").is_empty());
    }

    /// The mirror ordering: contribution arrives first, dynamic share
    /// second, then the contribution retracts — the dynamic share must
    /// keep the fact alive.
    #[test]
    fn dual_support_dynamic_share_outlives_contribution() {
        let mut p = peer("dual2");
        p.declare("feed", 1, RelationKind::Intensional).unwrap();
        p.add_rule(WRule::new(
            WAtom::at("keep", "dual2", vec![Term::var("x")]),
            vec![WAtom::at("feed", "dual2", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        p.declare("keep", 1, RelationKind::Intensional).unwrap();
        p.enqueue(Message::new(
            Symbol::intern("remote"),
            Symbol::intern("dual2"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![WFact::new("feed", "dual2", vec![Value::from(1)])],
                retractions: vec![],
            },
        ));
        p.run_stage().unwrap();
        p.install_delegation(Delegation::new(
            Symbol::intern("origin"),
            Symbol::intern("dual2"),
            WRule::new(
                WAtom::at("feed", "dual2", vec![Term::var("x")]),
                vec![WAtom::at("src", "dual2", vec![Term::var("x")]).into()],
            ),
        ));
        p.insert_local("src", vec![Value::from(1)]).unwrap();
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("feed").len(), 1);

        // Contribution retracts; the dynamic derivation still supports it.
        p.enqueue(Message::new(
            Symbol::intern("remote"),
            Symbol::intern("dual2"),
            Payload::Facts {
                kind: FactKind::Derived,
                additions: vec![],
                retractions: vec![WFact::new("feed", "dual2", vec![Value::from(1)])],
            },
        ));
        p.run_stage().unwrap();
        assert_eq!(p.relation_facts("feed").len(), 1, "dynamic share holds");
        assert_eq!(p.relation_facts("keep").len(), 1);

        // And when the dynamic share goes too, everything retracts.
        p.delete_local("src", vec![Value::from(1)]).unwrap();
        p.run_stage().unwrap();
        assert!(p.relation_facts("feed").is_empty());
        assert!(p.relation_facts("keep").is_empty());
    }

    /// Retractions propagate peer to peer: when the source peer's
    /// derivation stops holding, the target peer's maintained view drops
    /// the fact at its next stage (delete_remote flowing just like
    /// insertions).
    #[test]
    fn retraction_propagates_through_maintained_views() {
        let mut source = peer("src-p");
        // Remote-head rule (dynamic layer): ships derived facts to tgt-p.
        source
            .add_rule(WRule::new(
                WAtom::at("mirror", "tgt-p", vec![Term::var("x")]),
                vec![WAtom::at("local", "src-p", vec![Term::var("x")]).into()],
            ))
            .unwrap();
        source.insert_local("local", vec![Value::from(1)]).unwrap();

        let mut target = peer("tgt-p");
        target
            .declare("mirror", 1, RelationKind::Intensional)
            .unwrap();
        target
            .declare("twice", 1, RelationKind::Intensional)
            .unwrap();
        // Compiled rule downstream of the remote contribution.
        target
            .add_rule(WRule::new(
                WAtom::at("twice", "tgt-p", vec![Term::var("x")]),
                vec![WAtom::at("mirror", "tgt-p", vec![Term::var("x")]).into()],
            ))
            .unwrap();

        let out = source.run_stage().unwrap();
        for m in out.messages {
            target.enqueue(m);
        }
        target.run_stage().unwrap();
        assert_eq!(target.relation_facts("mirror").len(), 1);
        assert_eq!(target.relation_facts("twice").len(), 1);

        // Source-side deletion → retraction message → target's maintained
        // view drops both the contribution and its consequence.
        source.delete_local("local", vec![Value::from(1)]).unwrap();
        let out = source.run_stage().unwrap();
        let retractions: usize = out
            .messages
            .iter()
            .filter_map(|m| match &m.payload {
                Payload::Facts { retractions, .. } => Some(retractions.len()),
                _ => None,
            })
            .sum();
        assert_eq!(retractions, 1, "source emits the retraction");
        for m in out.messages {
            target.enqueue(m);
        }
        target.run_stage().unwrap();
        assert!(target.relation_facts("mirror").is_empty());
        assert!(target.relation_facts("twice").is_empty());
    }

    /// The join-order optimizer runs when fully local rules compile: the
    /// compiled body is reordered against live cardinalities (smaller
    /// relation first) and derives exactly the same facts as the written
    /// order.
    #[test]
    fn compile_applies_join_order_optimizer() {
        let body = |me: &str| {
            vec![
                WAtom::at("r", me, vec![Term::var("x"), Term::var("y")]).into(),
                WAtom::at("s", me, vec![Term::var("x"), Term::var("y")]).into(),
            ]
        };
        let load = |p: &mut Peer| {
            for i in 0..50 {
                p.insert_local("r", vec![Value::from(i), Value::from(i)])
                    .unwrap();
            }
            p.insert_local("s", vec![Value::from(1), Value::from(1)])
                .unwrap();
            p.insert_local("s", vec![Value::from(999), Value::from(999)])
                .unwrap();
        };

        let mut p = peer("opt");
        p.declare("both", 2, RelationKind::Intensional).unwrap();
        load(&mut p);
        p.add_rule(WRule::new(
            WAtom::at("both", "opt", vec![Term::var("x"), Term::var("y")]),
            body("opt"),
        ))
        .unwrap();
        p.run_stage().unwrap();

        // The compiled body leads with the *small* relation even though the
        // rule was written big-first.
        let state = p.incr.as_ref().expect("fully local rule compiles");
        let first = state.view.program().rules()[0].body[0]
            .as_positive_atom()
            .expect("positive atom leads");
        assert_eq!(first.pred.as_str(), "s@opt");

        // Identical substitutions to the written order: evaluate the
        // original body as an ad-hoc query and compare.
        let via_query = p.query(&body("opt")).unwrap();
        let facts = p.relation_facts("both");
        assert_eq!(facts.len(), via_query.len());
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0][0], Value::from(1));
    }

    /// A mid-stage view invalidation (the maintained state vanishing
    /// between `ensure_view` and evaluation) is a recoverable error, not a
    /// panic: `fixpoint_incremental` reports `ViewInvalidated`, and the
    /// `fixpoint_maintained` wrapper completes the stage through the full
    /// recompute path with correct results.
    #[test]
    fn view_invalidation_mid_stage_recovers() {
        let mut p = peer("inv");
        p.declare("v", 1, RelationKind::Intensional).unwrap();
        p.add_rule(WRule::new(
            WAtom::at("v", "inv", vec![Term::var("x")]),
            vec![WAtom::at("b", "inv", vec![Term::var("x")]).into()],
        ))
        .unwrap();
        p.insert_local("b", vec![Value::from(1)]).unwrap();
        p.run_stage().unwrap();
        assert!(p.incr.is_some(), "rule compiles into a maintained view");
        assert_eq!(p.relation_facts("v").len(), 1);

        // Simulate the invalidation: the view is gone but the epoch says
        // otherwise, so `ensure_view` would report `Current`.
        p.insert_local("b", vec![Value::from(2)]).unwrap();
        p.incr = None;
        assert!(matches!(
            p.fixpoint_incremental(false),
            Err(WdlError::ViewInvalidated(_))
        ));

        // The recovery wrapper completes the (recomputed) fixpoint.
        p.incr = None;
        let (outcome, _, changed) = p.fixpoint_maintained(false).unwrap();
        assert!(changed);
        assert_eq!(outcome.derivations, 2 * 2, "2 facts x 2 naive rounds");
        assert_eq!(p.relation_facts("v").len(), 2);

        // And a fresh full stage afterwards rebuilds the view and agrees.
        let out = p.run_stage().unwrap();
        assert!(p.incr.is_some(), "next stage rebuilds the view");
        assert!(!out.changed);
        assert_eq!(p.relation_facts("v").len(), 2);
    }

    /// The classified-plan cache follows grants changes: restricting a
    /// relation after a delegated rule compiled must re-hoist the ACL read
    /// gate (blocked reads appear), and the compiled path counts them like
    /// the interpreter.
    #[test]
    fn grants_change_invalidates_hoisted_read_gate() {
        let build = || {
            let mut p = peer("gate");
            p.declare("feed", 1, RelationKind::Intensional).unwrap();
            p.insert_local("secret", vec![Value::from(7)]).unwrap();
            p.install_delegation(Delegation::new(
                Symbol::intern("spy"),
                Symbol::intern("gate"),
                WRule::new(
                    WAtom::at("feed", "gate", vec![Term::var("x")]),
                    vec![WAtom::at("secret", "gate", vec![Term::var("x")]).into()],
                ),
            ));
            p
        };
        for compiled in [true, false] {
            let mut p = build();
            p.set_compiled_stage(compiled);
            let out = p.run_stage().unwrap();
            assert_eq!(out.stats.reads_blocked, 0, "compiled={compiled}");
            assert_eq!(p.relation_facts("feed").len(), 1);

            // Restrict reads: the next stage must block the delegated read
            // (and retract the derivation) on both engines.
            p.grants_mut().restrict_read("secret");
            let out = p.run_stage().unwrap();
            assert_eq!(out.stats.reads_blocked, 1, "compiled={compiled}");
            assert!(p.relation_facts("feed").is_empty());
        }
    }

    /// The classifier actually compiles (it must not silently fall back to
    /// the interpreter for the shapes the fast path exists for), and picks
    /// the expected cut per body shape.
    #[test]
    fn classifier_compiles_expected_cut_shapes() {
        use crate::stage_plan::{classify, Cut, StageRulePlan};
        let me = Symbol::intern("shape");
        let grants = crate::RelationGrants::new();
        let vb = HashMap::new();
        let item = |peer: &str| WAtom::at("item", peer, vec![Term::var("x")]);

        // Fully local body → Cut::Head.
        let fully_local = WRule::new(
            WAtom::at("v", "shape", vec![Term::var("x")]),
            vec![
                item("shape").into(),
                WBodyItem::not_atom(WAtom::at("blocked", "shape", vec![Term::var("x")])),
            ],
        );
        let StageRulePlan::Compiled(c) = classify(&fully_local, me, None, &grants, &vb) else {
            panic!("fully local rule must compile");
        };
        assert!(matches!(c.cut, Cut::Head(_)));

        // Constant remote peer at position 1 → Cut::Delegate at 1.
        let remote = WRule::new(
            WAtom::at("v", "shape", vec![Term::var("x")]),
            vec![item("shape").into(), item("elsewhere").into()],
        );
        let StageRulePlan::Compiled(c) = classify(&remote, me, None, &grants, &vb) else {
            panic!("split rule must compile");
        };
        assert!(matches!(c.cut, Cut::Delegate { idx: 1, .. }));

        // Variable peer at position 1 → Cut::Resume at 1.
        let varpeer = WRule::new(
            WAtom::at("v", "shape", vec![Term::var("x")]),
            vec![
                WAtom::at("sel", "shape", vec![Term::var("p")]).into(),
                WAtom::new(
                    NameTerm::name("item"),
                    NameTerm::var("p"),
                    vec![Term::var("x")],
                )
                .into(),
            ],
        );
        let StageRulePlan::Compiled(c) = classify(&varpeer, me, None, &grants, &vb) else {
            panic!("variable-peer rule must compile its prefix");
        };
        assert!(matches!(c.cut, Cut::Resume { idx: 1, .. }));

        // Delegated rule reading a restricted relation → Cut::Blocked.
        let mut restricted = crate::RelationGrants::new();
        restricted.restrict_read("item");
        let gated = WRule::new(
            WAtom::at("v", "origin", vec![Term::var("x")]),
            vec![item("shape").into()],
        );
        let StageRulePlan::Compiled(c) =
            classify(&gated, me, Some(Symbol::intern("origin")), &restricted, &vb)
        else {
            panic!("gated rule must compile");
        };
        assert!(matches!(c.cut, Cut::Blocked));

        // A stage evaluation populates the cache with compiled entries.
        let mut p = peer("shape");
        p.declare("v", 1, RelationKind::Intensional).unwrap();
        p.insert_local("item", vec![Value::from(1)]).unwrap();
        p.add_rule(remote).unwrap();
        p.run_stage().unwrap();
        assert!(
            p.stage_plans
                .own
                .values()
                .any(|srp| matches!(srp, StageRulePlan::Compiled(_))),
            "stage evaluation caches compiled plans"
        );
    }

    /// Local negation within a stage.
    #[test]
    fn local_negation() {
        let mut p = peer("n");
        p.declare("keep", 1, RelationKind::Intensional).unwrap();
        p.insert_local("item", vec![Value::from(1)]).unwrap();
        p.insert_local("item", vec![Value::from(2)]).unwrap();
        p.insert_local("blocked", vec![Value::from(2)]).unwrap();
        p.add_rule(WRule::new(
            WAtom::at("keep", "n", vec![Term::var("x")]),
            vec![
                WAtom::at("item", "n", vec![Term::var("x")]).into(),
                WBodyItem::not_atom(WAtom::at("blocked", "n", vec![Term::var("x")])),
            ],
        ))
        .unwrap();
        p.run_stage().unwrap();
        let facts = p.relation_facts("keep");
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0][0], Value::from(1));
    }

    /// The recompute path's working-database cache computes stages
    /// identical to a scratch rebuild — driven through a delegated
    /// (uncompilable) rule set with inserts, deletes, and contribution
    /// churn across stages.
    #[test]
    fn recompute_cache_matches_scratch_rebuild() {
        let build = || {
            let mut p = peer("rcache");
            p.declare("view", 1, RelationKind::Intensional).unwrap();
            // Remote-head rule: uncompilable, forces the recompute path.
            p.add_rule(WRule::new(
                WAtom::at("mirror", "elsewhere", vec![Term::var("x")]),
                vec![WAtom::at("item", "rcache", vec![Term::var("x")]).into()],
            ))
            .unwrap();
            // Delegated rule deriving locally, also dynamic.
            p.install_delegation(Delegation::new(
                Symbol::intern("origin"),
                Symbol::intern("rcache"),
                WRule::new(
                    WAtom::at("view", "rcache", vec![Term::var("x")]),
                    vec![WAtom::at("item", "rcache", vec![Term::var("x")]).into()],
                ),
            ));
            p
        };
        let mut cached = build();
        let mut scratch = build();
        scratch.set_recompute_cache(false);
        assert!(cached.recompute_cache() && !scratch.recompute_cache());

        let contrib = |v: i64, add: bool| {
            Message::new(
                Symbol::intern("origin"),
                Symbol::intern("rcache"),
                Payload::Facts {
                    kind: FactKind::Derived,
                    additions: if add {
                        vec![WFact::new("view", "rcache", vec![Value::from(v)])]
                    } else {
                        vec![]
                    },
                    retractions: if add {
                        vec![]
                    } else {
                        vec![WFact::new("view", "rcache", vec![Value::from(v)])]
                    },
                },
            )
        };
        for round in 0..6 {
            for p in [&mut cached, &mut scratch] {
                match round {
                    0 => {
                        p.insert_local("item", vec![Value::from(1)]).unwrap();
                        p.insert_local("item", vec![Value::from(2)]).unwrap();
                    }
                    1 => {
                        p.delete_local("item", vec![Value::from(1)]).unwrap();
                        p.enqueue(contrib(77, true));
                    }
                    2 => {
                        // Insert and delete the same fact within a stage
                        // window: last operation wins in the replay.
                        p.insert_local("item", vec![Value::from(9)]).unwrap();
                        p.delete_local("item", vec![Value::from(9)]).unwrap();
                        // Base-insert a fact the rules also derive.
                        p.insert_local("item", vec![Value::from(2)]).ok();
                    }
                    3 => {
                        p.enqueue(contrib(77, false));
                    }
                    4 => {
                        p.insert_local("item", vec![Value::from(1)]).unwrap();
                    }
                    _ => {}
                }
            }
            let a = cached.run_stage().unwrap();
            let b = scratch.run_stage().unwrap();
            assert_eq!(a.changed, b.changed, "round {round}");
            assert_eq!(a.stats, b.stats, "round {round}");
            // Canonicalize within-payload fact order: additions /
            // retractions are set-semantic (built from hash-set diffs), so
            // their order varies per peer instance.
            let canon = |msgs: &[Message]| -> Vec<String> {
                msgs.iter()
                    .map(|m| {
                        let mut s = format!("{}->{} ", m.from, m.to);
                        if let Payload::Facts {
                            kind,
                            additions,
                            retractions,
                        } = &m.payload
                        {
                            let mut adds: Vec<String> =
                                additions.iter().map(|f| f.to_string()).collect();
                            let mut rets: Vec<String> =
                                retractions.iter().map(|f| f.to_string()).collect();
                            adds.sort();
                            rets.sort();
                            s.push_str(&format!("{kind:?} +{adds:?} -{rets:?}"));
                        } else {
                            s.push_str(&format!("{:?}", m.payload));
                        }
                        s
                    })
                    .collect()
            };
            assert_eq!(canon(&a.messages), canon(&b.messages), "round {round}");
            let mut va = cached.relation_facts("view");
            let mut vb = scratch.relation_facts("view");
            va.sort();
            vb.sort();
            assert_eq!(va, vb, "round {round}");
        }
        assert!(cached.working.is_some(), "cache retained across stages");
        assert!(scratch.working.is_none(), "knob keeps the baseline clean");
    }
}
